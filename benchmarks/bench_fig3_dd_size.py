"""Figure 3: decision-diagram compactness (experiment F3 in DESIGN.md).

The paper's Fig. 3 contrasts the compact DD of the GHZ system matrix
(Fig. 3a) with the linear-size identity DD (Fig. 3b).  These benchmarks
measure construction time and assert the size relations: the GHZ DD stays
polynomially small while the dense matrix grows as ``4^n``, and the
identity DD is exactly ``n`` nodes.
"""

import pytest

from repro.bench import algorithms
from repro.dd import DDPackage, matrix_dd_size
from repro.dd.gates import circuit_dd

SIZES = [4, 8, 16, 32, 65]


@pytest.mark.parametrize("n", SIZES)
def test_identity_dd_linear(benchmark, n):
    def build():
        pkg = DDPackage()
        return matrix_dd_size(pkg.identity(n))

    size = benchmark(build)
    assert size == n  # Fig. 3b: linear in the number of qubits


@pytest.mark.parametrize("n", [3, 8, 16, 32])
def test_ghz_unitary_dd_compact(benchmark, n):
    def build():
        pkg = DDPackage()
        return matrix_dd_size(circuit_dd(pkg, algorithms.ghz_state(n)))

    size = benchmark(build)
    # Fig. 3a: the GHZ system matrix DD grows linearly, not as 4^n.
    assert size <= 3 * n


@pytest.mark.parametrize("n", [2, 4, 6])
def test_qft_unitary_dd(benchmark, n):
    """QFT matrices have structure too, but less sharing than GHZ."""

    def build():
        pkg = DDPackage()
        return matrix_dd_size(circuit_dd(pkg, algorithms.qft(n)))

    size = benchmark(build)
    assert size >= n  # sanity: at least one node per level
