"""Legacy-vs-incremental baseline for the ZX simplification engines.

Times ``full_reduce`` on the composed ``G' G†`` diagrams of the Table-1
"Optimized Circuits" pairs with the legacy rescan-to-fixpoint drivers
(the seed behaviour, ``incremental=False``) against the worklist-driven
incremental engine (:mod:`repro.zx.worklist`, the default), and records
the comparison in ``BENCH_zx_simplify.json`` at the repository root.

Both engines apply the same rule steps and match predicates — only the
scheduling differs — so each case asserts identical final spider and
edge counts; any speedup is pure match-scheduling, never a different
rewrite outcome.

Run:  PYTHONPATH=src python benchmarks/bench_zx_simplify.py

(The module intentionally defines no ``test_*``/pytest entry points; the
tier-1 smoke guard lives in ``tests/perf/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

try:
    from benchmarks.trajectory import with_trajectory
except ImportError:  # executed as a plain script: benchmarks/ is sys.path[0]
    from trajectory import with_trajectory
from repro.bench import algorithms, reversible
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.perf import PerfCounters
from repro.zx import circuit_to_zx, full_reduce

REPEATS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_zx_simplify.json"


def build_cases():
    """Table-1 'Optimized Circuits' (name, original, optimized) pairs."""
    originals = {
        "urf_5": reversible.synthesize(
            reversible.random_reversible_function(5, seed=1)
        ),
        "plus13mod64": reversible.synthesize(
            reversible.plus_constant_mod(6, 13)
        ),
        "hwb_5": reversible.synthesize(reversible.hidden_weighted_bit(5)),
        "grover_4": algorithms.grover(4),
        "qft_6": algorithms.qft(6),
        "randomwalk_3": algorithms.quantum_random_walk(3, steps=2),
    }
    return [
        (name, circuit, optimize_circuit(decompose_to_basis(circuit), level=2))
        for name, circuit in originals.items()
    ]


def composed_diagram(circuit1, circuit2):
    return circuit_to_zx(circuit1).adjoint().compose(circuit_to_zx(circuit2))


def timed_reduce(circuit1, circuit2, incremental):
    """Best-of-``REPEATS`` wall time plus the final diagram and counters."""
    best = math.inf
    diagram = None
    counters = None
    for _ in range(REPEATS):
        candidate = composed_diagram(circuit1, circuit2)
        perf = PerfCounters()
        start = time.perf_counter()
        full_reduce(candidate, incremental=incremental, counters=perf)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
        diagram = candidate
        counters = perf.counters
    return best, diagram, counters


def main() -> int:
    cases = []
    for name, circuit1, circuit2 in build_cases():
        initial = composed_diagram(circuit1, circuit2)
        legacy_time, legacy_diagram, _ = timed_reduce(
            circuit1, circuit2, incremental=False
        )
        new_time, new_diagram, new_counters = timed_reduce(
            circuit1, circuit2, incremental=True
        )
        counts_identical = (
            legacy_diagram.num_spiders == new_diagram.num_spiders
            and legacy_diagram.num_edges == new_diagram.num_edges
        )
        speedup = legacy_time / new_time if new_time else math.inf
        cases.append({
            "case": name,
            "num_qubits": max(circuit1.num_qubits, circuit2.num_qubits),
            "num_gates": [len(circuit1), len(circuit2)],
            "initial_spiders": initial.num_spiders,
            "seed_seconds": round(legacy_time, 6),
            "new_seconds": round(new_time, 6),
            "speedup": round(speedup, 3),
            "final_spiders": [
                legacy_diagram.num_spiders, new_diagram.num_spiders,
            ],
            "final_edges": [
                legacy_diagram.num_edges, new_diagram.num_edges,
            ],
            "counts_identical": counts_identical,
            "incremental_counters": dict(sorted(new_counters.items())),
        })
        print(
            f"{name:20s} seed {legacy_time:7.3f}s  new {new_time:7.3f}s  "
            f"{speedup:5.2f}x  counts_identical={counts_identical}"
        )
        assert counts_identical, f"{name}: engines reduced to different sizes"

    speedups = [case["speedup"] for case in cases]
    report = {
        "benchmark": "zx_simplify",
        "description": (
            "Incremental worklist-driven full_reduce vs the seed "
            "rescan-to-fixpoint drivers, composed G'Gdg diagrams of the "
            "Table-1 optimized-circuit pairs"
        ),
        "repeats": REPEATS,
        "python": platform.python_version(),
        "cases": cases,
        "summary": {
            "min_speedup": round(min(speedups), 3),
            "max_speedup": round(max(speedups), 3),
            "geomean_speedup": round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)),
                3,
            ),
            "all_counts_identical":
                all(case["counts_identical"] for case in cases),
        },
    }
    report = with_trajectory(report, OUTPUT)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        "geomean speedup "
        f"{report['summary']['geomean_speedup']}x, "
        f"max {report['summary']['max_speedup']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
