"""Table 1, "Optimized Circuits" block (experiment T1b in DESIGN.md).

Original-vs-optimized verification for RevLib-style reversible circuits
(urf-like random reversible functions, a modular constant adder, the
hidden-weighted-bit function) and quantum algorithms.

Run:  pytest benchmarks/bench_table1_optimized.py --benchmark-only
"""

import pytest

from benchmarks.conftest import error_variant, run_check
from repro.ec.results import Equivalence

BENCHMARKS = [
    "urf_5", "plus13mod64", "hwb_5", "grover_4", "qft_6", "randomwalk_3",
]

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
    Equivalence.PROBABLY_EQUIVALENT,
)

#: The ZX method is expected to time out on hwb (it does in our Table 1
#: runs, matching the paper's pattern of DDs dominating on reversible
#: functions); bound it so the harness stays fast.
_ZX_TIMEOUT = 60.0


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("method", ["dd", "zx"])
class TestTable1Optimized:
    def test_equivalent(self, benchmark, optimized_pairs, name, method):
        original, optimized = optimized_pairs[name]
        strategy = "combined" if method == "dd" else "zx"
        result = benchmark.pedantic(
            run_check,
            args=(original, optimized, strategy),
            kwargs={"timeout": _ZX_TIMEOUT},
            rounds=1,
        )
        if result.equivalence is not Equivalence.TIMEOUT:
            assert result.equivalence in POSITIVE

    def test_gate_missing(self, benchmark, optimized_pairs, name, method):
        original, optimized = optimized_pairs[name]
        broken = error_variant(optimized, "gate_missing")
        strategy = "combined" if method == "dd" else "zx"
        result = benchmark.pedantic(
            run_check,
            args=(original, broken, strategy),
            kwargs={"timeout": _ZX_TIMEOUT},
            rounds=1,
        )
        assert result.equivalence not in POSITIVE

    def test_flipped_cnot(self, benchmark, optimized_pairs, name, method):
        original, optimized = optimized_pairs[name]
        broken = error_variant(optimized, "flipped_cnot")
        strategy = "combined" if method == "dd" else "zx"
        result = benchmark.pedantic(
            run_check,
            args=(original, broken, strategy),
            kwargs={"timeout": _ZX_TIMEOUT},
            rounds=1,
        )
        assert result.equivalence not in POSITIVE
