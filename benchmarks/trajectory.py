"""Keep a perf trajectory across benchmark-report regenerations.

The checked-in ``BENCH_*.json`` reports are regenerated wholesale by
their scripts, which would silently discard the history of how the
numbers moved as the tree evolved.  :func:`with_trajectory` preserves
it: before a report is overwritten, the previous run's summary is
appended to a ``trajectory`` list carried forward inside the file, so
every regeneration adds one breadcrumb instead of erasing the past.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict


def with_trajectory(report: Dict[str, object], output: Path) -> Dict[str, object]:
    """Fold the previous report at ``output`` into ``report["trajectory"]``.

    The trajectory entry keeps just enough to read the trend — the
    interpreter version and the summary block — not the full case list.
    A missing or unreadable previous report simply starts a fresh
    trajectory.
    """
    trajectory = []
    if output.exists():
        try:
            prior = json.loads(output.read_text())
        except (OSError, ValueError):
            prior = None
        if isinstance(prior, dict) and "summary" in prior:
            trajectory = [
                entry for entry in prior.get("trajectory", ())
                if isinstance(entry, dict)
            ]
            trajectory.append({
                "python": prior.get("python"),
                "summary": prior.get("summary"),
            })
    if trajectory:
        report["trajectory"] = trajectory
    return report
