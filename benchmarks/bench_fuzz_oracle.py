"""Cost profile of the differential fuzzing oracle.

Times one full strategy-matrix pass (six checkers + dense ground truth)
per circuit family, so regressions in oracle throughput — the quantity
that bounds how many pairs a fuzz budget can afford — show up next to
the other paper benchmarks.
"""

import pytest

from repro.ec import Configuration
from repro.fuzz.generator import FAMILIES
from repro.fuzz.oracle import DifferentialOracle


@pytest.mark.parametrize("family", FAMILIES)
def test_oracle_matrix_cost(benchmark, fuzz_pairs, family):
    """Wall cost of the full verdict matrix over 5 labeled pairs."""
    oracle = DifferentialOracle(Configuration(timeout=20.0, seed=0))
    pairs = fuzz_pairs[family]

    def run():
        return [oracle.check(pair) for pair in pairs]

    reports = benchmark.pedantic(run, rounds=1)
    for report in reports:
        assert report.agreed, report.disagreements


def test_oracle_overhead_vs_single_strategy(benchmark, fuzz_pairs):
    """The matrix costs roughly the sum of its parts: no hidden
    re-preparation blowup in the per-strategy dispatch."""
    from repro.ec import EquivalenceCheckingManager

    pair = fuzz_pairs["clifford_t"][0]

    def single():
        config = Configuration(strategy="alternating", timeout=20.0, seed=0)
        return EquivalenceCheckingManager(
            pair.circuit1, pair.circuit2, config
        ).run()

    from repro.fuzz.mutators import LABEL_EQUIVALENT

    result = benchmark.pedantic(single, rounds=3)
    assert result.considered_equivalent == (pair.label == LABEL_EQUIVALENT)
