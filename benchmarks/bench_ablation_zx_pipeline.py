"""Ablation A2: stages of the ZX simplification pipeline.

The full pipeline (paper Section 5.1) stacks spider fusion, identity
removal, local complementation, pivoting (interior / boundary / gadget)
and phase-gadget fusion.  This ablation measures how far each prefix of
the pipeline gets on an equivalence-checking instance — in remaining
spiders (the completeness axis) and time (the cost axis).
"""

import pytest

from repro.bench import algorithms
from repro.compile import compile_circuit, line_architecture
from repro.ec.permutations import to_logical_form
from repro.zx import circuit_to_zx
from repro.zx.simplify import (
    clifford_simp,
    full_reduce,
    gadget_simp,
    id_simp,
    interior_clifford_simp,
    pivot_gadget_simp,
    to_graph_like,
)


def _fusion_only(diagram):
    to_graph_like(diagram)
    id_simp(diagram)


def _interior_clifford(diagram):
    interior_clifford_simp(diagram)


def _with_boundary(diagram):
    clifford_simp(diagram)


def _full(diagram):
    full_reduce(diagram)


PIPELINES = {
    "fusion_id": _fusion_only,
    "interior_clifford": _interior_clifford,
    "clifford_boundary": _with_boundary,
    "full_reduce": _full,
}


@pytest.fixture(scope="module")
def instances():
    out = {}
    for original in (
        algorithms.grover(4),
        algorithms.qft(6),
        algorithms.quantum_random_walk(3, steps=2),
    ):
        compiled = compile_circuit(
            original, line_architecture(original.num_qubits + 2)
        )
        width = max(original.num_qubits, compiled.num_qubits)
        logical1, _ = to_logical_form(original, width)
        logical2, _ = to_logical_form(compiled, width)
        out[original.name] = (logical1, logical2)
    return out


@pytest.mark.parametrize("name", ["grover_4", "qft_6", "randomwalk_3_2"])
@pytest.mark.parametrize("stage", list(PIPELINES))
def test_pipeline_stage(benchmark, instances, name, stage):
    logical1, logical2 = instances[name]

    def run():
        diagram = (
            circuit_to_zx(logical1).adjoint().compose(circuit_to_zx(logical2))
        )
        PIPELINES[stage](diagram)
        return diagram.num_spiders

    remaining = benchmark.pedantic(run, rounds=1)
    assert remaining >= 0


@pytest.mark.parametrize("name", ["grover_4", "qft_6"])
def test_stages_monotonically_reduce(instances, name):
    """Each richer pipeline prefix leaves at most as many spiders."""
    logical1, logical2 = instances[name]
    remaining = []
    for stage in PIPELINES.values():
        diagram = (
            circuit_to_zx(logical1).adjoint().compose(circuit_to_zx(logical2))
        )
        stage(diagram)
        remaining.append(diagram.num_spiders)
    assert remaining == sorted(remaining, reverse=True)
    assert remaining[-1] == 0  # full_reduce finishes the job here
