"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Expensive circuit construction is cached at
session scope; the equivalence checks themselves run under
``benchmark.pedantic`` with a single round, because a check is a one-shot
end-to-end measurement, not a microbenchmark.
"""

from __future__ import annotations

import pytest

from repro.bench import algorithms, reversible
from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.compile import compile_circuit, manhattan_architecture
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.ec import Configuration, EquivalenceCheckingManager


def run_check(circuit1, circuit2, strategy, **config_kwargs):
    """One equivalence check; returns the result (for sanity assertions)."""
    config = Configuration(strategy=strategy, seed=0, **config_kwargs)
    return EquivalenceCheckingManager(circuit1, circuit2, config).run()


@pytest.fixture(scope="session")
def manhattan():
    return manhattan_architecture()


@pytest.fixture(scope="session")
def compiled_pairs(manhattan):
    """(original, compiled) pairs — the 'Compiled Circuits' use-case."""
    originals = {
        "ghz_16": algorithms.ghz_state(16),
        "graphstate_12": algorithms.graph_state(12, seed=0),
        "qft_6": algorithms.qft(6),
        "qpe_exact_5": algorithms.qpe_exact(5),
        "grover_4": algorithms.grover(4),
        "randomwalk_3": algorithms.quantum_random_walk(3, steps=2),
    }
    return {
        name: (circuit, compile_circuit(circuit, manhattan))
        for name, circuit in originals.items()
    }


@pytest.fixture(scope="session")
def optimized_pairs():
    """(original, optimized) pairs — the 'Optimized Circuits' use-case."""
    originals = {
        "urf_5": reversible.synthesize(
            reversible.random_reversible_function(5, seed=1)
        ),
        "plus13mod64": reversible.synthesize(
            reversible.plus_constant_mod(6, 13)
        ),
        "hwb_5": reversible.synthesize(reversible.hidden_weighted_bit(5)),
        "grover_4": algorithms.grover(4),
        "qft_6": algorithms.qft(6),
        "randomwalk_3": algorithms.quantum_random_walk(3, steps=2),
    }
    return {
        name: (
            circuit,
            optimize_circuit(decompose_to_basis(circuit), level=2),
        )
        for name, circuit in originals.items()
    }


@pytest.fixture(scope="session")
def fuzz_pairs():
    """Labeled fuzz pairs per family (for oracle-cost benchmarks)."""
    from repro.fuzz.generator import FAMILIES, generate_instance
    from repro.fuzz.mutators import MutationNotApplicable

    pairs = {}
    for family in FAMILIES:
        collected = []
        seed = 0
        while len(collected) < 5:
            try:
                collected.append(generate_instance(seed, family)[1])
            except MutationNotApplicable:
                pass
            seed += 1
        pairs[family] = collected
    return pairs


def error_variant(circuit, kind: str, seed: int = 0):
    if kind == "gate_missing":
        return remove_random_gate(circuit, seed=seed)
    if kind == "flipped_cnot":
        return flip_random_cnot(circuit, seed=seed)
    raise ValueError(kind)
