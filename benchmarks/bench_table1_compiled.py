"""Table 1, "Compiled Circuits" block (experiment T1a in DESIGN.md).

One benchmark per (circuit, configuration, method) cell: verification of
compilation to the 65-qubit heavy-hex device, with the combined DD
strategy (QCEC stand-in) and the ZX strategy (PyZX stand-in), in the
equivalent / one-gate-missing / flipped-CNOT configurations.

Run:  pytest benchmarks/bench_table1_compiled.py --benchmark-only
Full table with the paper's row layout:  python -m repro.bench.study
"""

import pytest

from benchmarks.conftest import error_variant, run_check
from repro.ec.results import Equivalence

BENCHMARKS = [
    "ghz_16", "graphstate_12", "qft_6", "qpe_exact_5", "grover_4",
    "randomwalk_3",
]

POSITIVE = (
    Equivalence.EQUIVALENT,
    Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
    Equivalence.PROBABLY_EQUIVALENT,
)


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("method", ["dd", "zx"])
class TestTable1Compiled:
    def test_equivalent(self, benchmark, compiled_pairs, name, method):
        original, compiled = compiled_pairs[name]
        strategy = "combined" if method == "dd" else "zx"
        result = benchmark.pedantic(
            run_check, args=(original, compiled, strategy), rounds=1
        )
        assert result.equivalence in POSITIVE

    def test_gate_missing(self, benchmark, compiled_pairs, name, method):
        original, compiled = compiled_pairs[name]
        broken = error_variant(compiled, "gate_missing")
        strategy = "combined" if method == "dd" else "zx"
        result = benchmark.pedantic(
            run_check, args=(original, broken, strategy), rounds=1
        )
        if method == "dd":
            assert result.equivalence is Equivalence.NOT_EQUIVALENT
        else:
            assert result.equivalence not in POSITIVE

    def test_flipped_cnot(self, benchmark, compiled_pairs, name, method):
        original, compiled = compiled_pairs[name]
        broken = error_variant(compiled, "flipped_cnot")
        strategy = "combined" if method == "dd" else "zx"
        result = benchmark.pedantic(
            run_check, args=(original, broken, strategy), rounds=1
        )
        if method == "dd":
            assert result.equivalence is Equivalence.NOT_EQUIVALENT
        else:
            assert result.equivalence not in POSITIVE
