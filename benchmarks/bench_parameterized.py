"""Symbolic-first vs instantiate-only parameterized equivalence checking.

Runs seeded ``parameterized``-family ansatz pairs (the fuzz generator's
templates: shared free parameters, rational coefficients, CX/CZ
entangling ladders) through the ``parameterized`` strategy twice — once
with the symbolic phase-polynomial/ZX ladder enabled (the default) and
once instantiate-only (``parameterized_symbolic=False``, mqt-qcec's
baseline behaviour of checking a handful of concrete instantiations) —
and records the comparison in ``BENCH_parameterized.json`` at the
repository root.

Verdict agreement is judged by polarity: the symbolic paths *prove*
equivalence for all valuations where the instantiation fallback can only
report ``PROBABLY_EQUIVALENT``, so the enum values legitimately differ
while the answer is the same.

The headline claims this benchmark asserts:

* polarity never diverges between the two modes, and never against the
  generator's ground-truth label;
* every ``NOT_EQUIVALENT`` verdict carries a witness valuation;
* on equivalent pairs decided symbolically, symbolic-first beats the
  instantiate-only arm (which pays ``num_instantiations`` full concrete
  checks) on geometric-mean wall time.

Run:  PYTHONPATH=src python benchmarks/bench_parameterized.py

(The module intentionally defines no ``test_*``/pytest entry points; the
tier-1 smoke guard lives in ``tests/perf/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

try:
    from benchmarks.trajectory import with_trajectory
except ImportError:  # executed as a plain script: benchmarks/ is sys.path[0]
    from trajectory import with_trajectory
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.results import Equivalence
from repro.fuzz.generator import generate_instance

REPEATS = 3
TIMEOUT = 60.0
NUM_PAIRS = 14
NUM_INSTANTIATIONS = 8
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parameterized.json"


def polarity(verdict: Equivalence) -> str:
    if verdict in (
        Equivalence.EQUIVALENT,
        Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        Equivalence.PROBABLY_EQUIVALENT,
    ):
        return "equivalent"
    if verdict is Equivalence.NOT_EQUIVALENT:
        return "not_equivalent"
    return "undecided"


def timed_check(pair, symbolic: bool):
    config = Configuration(
        strategy="parameterized",
        parameterized_symbolic=symbolic,
        num_instantiations=NUM_INSTANTIATIONS,
        static_analysis=False,
        timeout=TIMEOUT,
        seed=0,
    )
    best = math.inf
    result = None
    for _ in range(REPEATS):
        manager = EquivalenceCheckingManager(
            pair.circuit1, pair.circuit2, config
        )
        start = time.perf_counter()
        result = manager.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    cases = []
    for seed in range(NUM_PAIRS):
        _, pair = generate_instance(seed, family="parameterized")
        sym_time, sym_result = timed_check(pair, symbolic=True)
        inst_time, inst_result = timed_check(pair, symbolic=False)
        sym_stats = sym_result.statistics.get("parameterized", {})
        inst_stats = inst_result.statistics.get("parameterized", {})
        speedup = inst_time / sym_time if sym_time else math.inf
        agree = polarity(sym_result.equivalence) == polarity(
            inst_result.equivalence
        )
        label_match = polarity(sym_result.equivalence) == pair.label
        case = {
            "case": f"seed_{seed}/{pair.recipe}",
            "label": pair.label,
            "num_qubits": pair.num_qubits,
            "num_gates": [len(pair.circuit1), len(pair.circuit2)],
            "symbolic_seconds": round(sym_time, 6),
            "instantiate_seconds": round(inst_time, 6),
            "speedup": round(speedup, 3),
            "symbolic_path": sym_stats.get("path"),
            "verdict_symbolic": sym_result.equivalence.value,
            "verdict_instantiate": inst_result.equivalence.value,
            "verdicts_agree": agree,
            "label_match": label_match,
        }
        for mode, stats in (("symbolic", sym_stats), ("instantiate", inst_stats)):
            if "witness_valuation" in stats:
                case[f"witness_{mode}"] = stats["witness_valuation"]
        cases.append(case)
        print(
            f"{case['case']:36s} sym {sym_time:7.4f}s  "
            f"inst {inst_time:7.4f}s  {speedup:6.2f}x  "
            f"path={case['symbolic_path']}  agree={agree}"
        )
        assert agree, f"{case['case']}: verdict polarity diverged"
        assert label_match, f"{case['case']}: verdict contradicts the label"
        if pair.label == "not_equivalent":
            assert "witness_symbolic" in case, (
                f"{case['case']}: NEQ verdict without a witness valuation"
            )

    eq_symbolic = [
        case for case in cases
        if case["label"] == "equivalent"
        and case["symbolic_path"] in ("phase_polynomial", "zx_symbolic")
    ]
    eq_speedups = [case["speedup"] for case in eq_symbolic]
    speedups = [case["speedup"] for case in cases]

    def geomean(values):
        return round(
            math.exp(sum(math.log(v) for v in values) / len(values)), 3
        ) if values else None

    report = {
        "benchmark": "parameterized",
        "description": (
            "Symbolic-first (phase polynomial + symbolic ZX, then "
            "instantiate) vs instantiate-only parameterized equivalence "
            "checking on seeded ansatz pairs from the fuzz generator"
        ),
        "repeats": REPEATS,
        "timeout": TIMEOUT,
        "num_instantiations": NUM_INSTANTIATIONS,
        "python": platform.python_version(),
        "cases": cases,
        "summary": {
            "pairs": len(cases),
            "equivalent_pairs_decided_symbolically": len(eq_symbolic),
            "geomean_speedup_all": geomean(speedups),
            "geomean_speedup_symbolic_eq": geomean(eq_speedups),
            "all_verdicts_agree":
                all(case["verdicts_agree"] for case in cases),
            "all_labels_match": all(case["label_match"] for case in cases),
            "neq_with_witness": sum(
                1 for case in cases if "witness_symbolic" in case
            ),
        },
    }
    assert eq_symbolic, "no equivalent pair was decided symbolically"
    assert report["summary"]["geomean_speedup_symbolic_eq"] > 1.0, (
        "symbolic-first did not beat instantiate-only on symbolically "
        "decided equivalent pairs"
    )
    report = with_trajectory(report, OUTPUT)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        f"{len(eq_symbolic)} pair(s) decided symbolically; geomean "
        f"speedup on those "
        f"{report['summary']['geomean_speedup_symbolic_eq']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
