"""Ablation A4: random-stimuli families (reference [45] of the paper).

QCEC's simulation runs default to classical basis states; reference [45]
shows quantum stimuli detect strictly more error classes per run.  This
ablation measures cost per stimulus family and asserts the detectability
hierarchy on a phase-style error that classical stimuli provably miss.
"""

import pytest

from repro.bench import algorithms
from repro.bench.errors import remove_random_gate
from repro.circuit import QuantumCircuit
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, simulation_check
from repro.ec.results import Equivalence
from repro.ec.stimuli import STIMULI_TYPES


@pytest.fixture(scope="module")
def broken_pair():
    original = algorithms.grover(4)
    compiled = compile_circuit(original, line_architecture(6))
    return original, remove_random_gate(compiled, seed=2)


@pytest.fixture(scope="module")
def equivalent_pair():
    original = algorithms.qft(5)
    compiled = compile_circuit(original, line_architecture(7))
    return original, compiled


@pytest.mark.parametrize("kind", STIMULI_TYPES)
def test_stimuli_cost_on_equivalent(benchmark, equivalent_pair, kind):
    """Cost of a full 16-run pass per stimuli family."""
    original, compiled = equivalent_pair

    def run():
        return simulation_check(
            original,
            compiled,
            Configuration(stimuli_type=kind, seed=0),
        )

    result = benchmark.pedantic(run, rounds=1)
    assert result.equivalence is Equivalence.PROBABLY_EQUIVALENT


@pytest.mark.parametrize("kind", STIMULI_TYPES)
def test_stimuli_detection_speed(benchmark, broken_pair, kind):
    """Runs-to-detection per stimuli family on a broken instance."""
    original, broken = broken_pair

    def run():
        return simulation_check(
            original, broken, Configuration(stimuli_type=kind, seed=0)
        )

    result = benchmark.pedantic(run, rounds=1)
    assert result.equivalence is Equivalence.NOT_EQUIVALENT


def test_detectability_hierarchy():
    """The [45] hierarchy on a diagonal error: classical stimuli are
    blind, quantum stimuli catch it."""
    clean = QuantumCircuit(2).cx(0, 1)
    phase_broken = QuantumCircuit(2).cx(0, 1).z(0)
    classical = simulation_check(
        clean, phase_broken, Configuration(stimuli_type="classical", seed=0)
    )
    assert classical.equivalence is Equivalence.PROBABLY_EQUIVALENT
    for kind in ("local_quantum", "global_quantum"):
        quantum = simulation_check(
            clean, phase_broken, Configuration(stimuli_type=kind, seed=0)
        )
        assert quantum.equivalence is Equivalence.NOT_EQUIVALENT, kind
