"""Ablation A3: routing strategy of the compilation substrate.

The compiled circuits the case study verifies are produced by SWAP
routing; the router's quality changes |G'| and therefore both checkers'
workload.  This ablation compares the basic BFS-path router against the
SABRE-flavoured lookahead router on the benchmark algorithms, measuring
routing time and asserting the SWAP-count relation, then measures the
knock-on effect on equivalence-checking time.
"""

import pytest

from benchmarks.conftest import run_check
from repro.bench import algorithms
from repro.compile import compile_circuit, line_architecture, manhattan_architecture
from repro.compile.decompose import decompose_to_basis
from repro.compile.routing import route_circuit

ROUTERS = ["basic", "lookahead"]


@pytest.fixture(scope="module")
def lowered_benchmarks():
    return {
        "qft_6": decompose_to_basis(algorithms.qft(6)),
        "grover_4": decompose_to_basis(algorithms.grover(4)),
        "ghz_16": decompose_to_basis(algorithms.ghz_state(16)),
    }


@pytest.mark.parametrize("name", ["qft_6", "grover_4", "ghz_16"])
@pytest.mark.parametrize("router", ROUTERS)
def test_routing_time(benchmark, lowered_benchmarks, name, router, manhattan):
    lowered = lowered_benchmarks[name]

    def run():
        return route_circuit(
            lowered, manhattan, decompose_swaps=False, routing_method=router
        )

    routed = benchmark.pedantic(run, rounds=1)
    assert routed.num_qubits == 65


@pytest.mark.parametrize("name", ["qft_6", "grover_4"])
def test_lookahead_uses_fewer_or_equal_swaps(lowered_benchmarks, name):
    lowered = lowered_benchmarks[name]
    device = line_architecture(lowered.num_qubits + 2)
    swaps = {}
    for router in ROUTERS:
        routed = route_circuit(
            lowered, device, decompose_swaps=False, routing_method=router
        )
        swaps[router] = routed.count_ops().get("swap", 0)
    assert swaps["lookahead"] <= swaps["basic"]


@pytest.mark.parametrize("router", ROUTERS)
def test_ec_time_after_routing(benchmark, router):
    """Knock-on effect: smaller routed circuits check faster."""
    original = algorithms.qft(5)
    compiled = compile_circuit(
        original, line_architecture(7), routing_method=router
    )

    def run():
        return run_check(original, compiled, "alternating")

    result = benchmark.pedantic(run, rounds=1)
    assert result.considered_equivalent
