"""Section 6.2 discussion, part 1 (experiment D1 in DESIGN.md).

"Decision diagrams show significant benefits for circuits containing large
reversible parts [...].  The sensibility of decision diagrams to numerical
imprecision makes them hard to use on quantum algorithms that cannot be
exactly represented using floating points" — while "ZX-diagrams are not as
sensitive to the structure of the underlying system matrix".

These benchmarks measure the two engines on the two circuit classes and
assert the structural claims: reversible MCT circuits keep DDs small;
perturbed rotation angles degrade DD node sharing but never increase the
ZX spider count.
"""

import random

import pytest

from repro.bench import algorithms, reversible
from repro.circuit import QuantumCircuit
from repro.compile.decompose import decompose_to_basis
from repro.dd import DDPackage, matrix_dd_size
from repro.dd.gates import circuit_dd
from repro.zx import circuit_to_zx, full_reduce


def _perturb(circuit: QuantumCircuit, magnitude: float, seed: int = 0):
    rng = random.Random(seed)
    noisy = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_noisy")
    for op in circuit:
        params = tuple(
            p + rng.uniform(-magnitude, magnitude) for p in op.params
        )
        noisy.add(op.name, op.targets, op.controls, params)
    return noisy


@pytest.mark.parametrize(
    "make",
    [
        lambda: reversible.plus_constant_adder_circuit(8, 63),
        lambda: reversible.synthesize(reversible.hidden_weighted_bit(5)),
    ],
    ids=["adder_8", "hwb_5"],
)
def test_dd_on_reversible_structure(benchmark, make):
    """Reversible circuits: the DD of the full function stays compact."""
    circuit = make()

    def build():
        pkg = DDPackage()
        return matrix_dd_size(circuit_dd(pkg, circuit))

    size = benchmark.pedantic(build, rounds=1)
    # A reversible function's DD is at worst O(2^n) nodes (hwb famously
    # approaches it), far below the 4^n entries of the dense matrix.
    assert size < 2 ** (circuit.num_qubits + 1)


@pytest.mark.parametrize("noise", [0.0, 1e-9, 1e-6], ids=lambda x: f"noise{x:g}")
def test_dd_under_angle_noise(benchmark, noise):
    """Perturbed rotation angles break node sharing (DD grows)."""
    base = decompose_to_basis(algorithms.qft(6))
    noisy = _perturb(base, noise)

    def build():
        pkg = DDPackage()
        return matrix_dd_size(circuit_dd(pkg, noisy))

    benchmark.pedantic(build, rounds=1)


def test_noise_grows_dd_but_not_zx():
    """The discussion's core contrast, asserted head-to-head."""
    base = decompose_to_basis(algorithms.qft(6))
    clean_pkg, noisy_pkg = DDPackage(), DDPackage()
    clean_size = matrix_dd_size(circuit_dd(clean_pkg, base))
    noisy = _perturb(base, 1e-6)
    noisy_size = matrix_dd_size(circuit_dd(noisy_pkg, noisy))
    assert noisy_size >= clean_size  # sharing degrades (or stays equal)

    clean_diagram = circuit_to_zx(base)
    noisy_diagram = circuit_to_zx(noisy)
    assert noisy_diagram.num_spiders == clean_diagram.num_spiders
    before = noisy_diagram.num_spiders
    full_reduce(noisy_diagram)
    assert noisy_diagram.num_spiders <= before  # never increases


@pytest.mark.parametrize("noise", [0.0, 1e-6], ids=lambda x: f"noise{x:g}")
def test_zx_under_angle_noise(benchmark, noise):
    """ZX reduction cost is insensitive to angle noise."""
    base = decompose_to_basis(algorithms.qft(6))
    noisy = _perturb(base, noise)

    def reduce():
        diagram = circuit_to_zx(noisy)
        full_reduce(diagram)
        return diagram.num_spiders

    benchmark.pedantic(reduce, rounds=1)
