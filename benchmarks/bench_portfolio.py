"""Sequential combined schedule vs the concurrent strategy portfolio.

Runs Table-1-style verification cells (compiled-circuit instances,
equivalent and flipped-CNOT variants) through the ``combined`` strategy
twice — once as the sequential schedule (simulation then alternating,
the seed behaviour) and once as the concurrent portfolio race
(``Configuration.portfolio``) — and records the comparison in
``BENCH_portfolio.json`` at the repository root.

Both arms run with ``static_analysis=False`` so the comparison measures
the check engines themselves, not the analyzer short-circuit (which
fires identically in front of either arm).

Verdict agreement is judged by *polarity* (proven/considered equivalent
vs proven non-equivalent): racing paradigms legitimately prove at
different granularity — ZX's ``full_reduce`` proves equivalence up to
global phase where the alternating scheme proves exact equivalence —
so the enum values may differ while the answer is the same.

The headline claim this benchmark asserts: on at least three cells where
the sequential schedule's *first* strategy is not the strategy that
actually decides the pair, the portfolio cuts wall-clock time by >= 2x —
and no cell ever changes its verdict polarity.

Run:  PYTHONPATH=src python benchmarks/bench_portfolio.py

(The module intentionally defines no ``test_*``/pytest entry points; the
tier-1 smoke guard lives in ``tests/perf/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

try:
    from benchmarks.trajectory import with_trajectory
except ImportError:  # executed as a plain script: benchmarks/ is sys.path[0]
    from trajectory import with_trajectory
from repro.bench.suite import compiled_benchmarks
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.portfolio import portfolio_winner
from repro.ec.results import Equivalence

REPEATS = 2
TIMEOUT = 60.0
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_portfolio.json"

#: The compiled-use-case instances of the small-scale Table 1.
INSTANCES = (
    "ghz_16",
    "graphstate_12",
    "qft_6",
    "grover_4",
    "qpe_exact_5",
    "randomwalk_3_2",
)
VARIANTS = ("equivalent", "flipped_cnot")


def polarity(verdict: Equivalence) -> str:
    """Collapse a verdict to its answer polarity."""
    if verdict in (
        Equivalence.EQUIVALENT,
        Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        Equivalence.PROBABLY_EQUIVALENT,
    ):
        return "equivalent"
    if verdict is Equivalence.NOT_EQUIVALENT:
        return "not_equivalent"
    return "undecided"


def timed_check(circuit1, circuit2, portfolio: bool):
    """Best-of-``REPEATS`` wall time plus the last result."""
    config = Configuration(
        strategy="combined",
        portfolio=portfolio,
        static_analysis=False,
        timeout=TIMEOUT,
        seed=0,
    )
    best = math.inf
    result = None
    for _ in range(REPEATS):
        manager = EquivalenceCheckingManager(circuit1, circuit2, config)
        start = time.perf_counter()
        result = manager.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    instances = {
        inst.name: inst
        for inst in compiled_benchmarks(scale="small", seed=0)
    }
    cases = []
    for name in INSTANCES:
        instance = instances[name]
        for variant in VARIANTS:
            seq_time, seq_result = timed_check(
                instance.original, instance.variants[variant], portfolio=False
            )
            pf_time, pf_result = timed_check(
                instance.original, instance.variants[variant], portfolio=True
            )
            schedule = seq_result.statistics.get(
                "combined_schedule", ["simulation", "alternating"]
            )
            winner = portfolio_winner(pf_result)
            pf_block = pf_result.statistics.get("portfolio", {})
            speedup = seq_time / pf_time if pf_time else math.inf
            agree = polarity(seq_result.equivalence) == polarity(
                pf_result.equivalence
            )
            off_schedule_win = winner is not None and winner != schedule[0]
            cases.append({
                "case": f"{name}/{variant}",
                "num_qubits": instance.num_qubits,
                "num_gates": [
                    instance.size_original, len(instance.variants[variant]),
                ],
                "sequential_seconds": round(seq_time, 6),
                "portfolio_seconds": round(pf_time, 6),
                "speedup": round(speedup, 3),
                "sequential_schedule": list(schedule),
                "winner": winner,
                "winner_sound": bool(pf_block.get("sound")),
                "off_schedule_win": off_schedule_win,
                "kills": pf_block.get("kills", {}),
                "all_reaped": bool(pf_block.get("all_reaped")),
                "verdict_sequential": seq_result.equivalence.value,
                "verdict_portfolio": pf_result.equivalence.value,
                "verdicts_agree": agree,
            })
            print(
                f"{name + '/' + variant:32s} seq {seq_time:7.3f}s  "
                f"pf {pf_time:7.3f}s  {speedup:5.2f}x  winner={winner}  "
                f"agree={agree}"
            )
            assert agree, f"{name}/{variant}: verdict polarity diverged"
            assert pf_block.get("all_reaped", False), (
                f"{name}/{variant}: leaked child processes"
            )

    decisive = [
        case for case in cases
        if case["off_schedule_win"] and case["speedup"] >= 2.0
    ]
    speedups = [case["speedup"] for case in cases]
    report = {
        "benchmark": "portfolio",
        "description": (
            "Sequential combined schedule vs the concurrent strategy "
            "portfolio (race sandboxed checkers, first sound verdict "
            "wins) on Table-1-style compiled cells"
        ),
        "repeats": REPEATS,
        "timeout": TIMEOUT,
        "python": platform.python_version(),
        "cases": cases,
        "summary": {
            "cells": len(cases),
            "min_speedup": round(min(speedups), 3),
            "max_speedup": round(max(speedups), 3),
            "geomean_speedup": round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)),
                3,
            ),
            "decisive_cells": [case["case"] for case in decisive],
            "all_verdicts_agree":
                all(case["verdicts_agree"] for case in cases),
            "all_reaped": all(case["all_reaped"] for case in cases),
        },
    }
    assert len(decisive) >= 3, (
        f"only {len(decisive)} cell(s) with >=2x speedup and an "
        "off-schedule winner; expected at least 3"
    )
    report = with_trajectory(report, OUTPUT)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        f"{len(decisive)} decisive cell(s) (>=2x, off-schedule winner); "
        f"geomean speedup {report['summary']['geomean_speedup']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
