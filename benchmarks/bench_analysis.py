"""Overhead and short-circuit baseline for the static analysis pre-pass.

Two claims are measured and recorded in ``BENCH_analysis.json``:

1. **Overhead** — on equivalent pairs that the pre-pass cannot decide
   (entangled, single-fragment), running with ``static_analysis=True``
   costs less than 5% extra wall time over ``static_analysis=False``.
2. **Short-circuit** — on pairs the analyzer decides soundly (idle-wire,
   fragment and phase-polynomial witnesses), the verdict arrives without
   constructing a single decision diagram or ZX-diagram, and far faster
   than the full checker would have been.

Run:  PYTHONPATH=src python benchmarks/bench_analysis.py

(The module intentionally defines no ``test_*``/pytest entry points; the
tier-1 smoke guard lives in ``tests/analysis/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import tempfile
import time
from pathlib import Path

from repro.bench import algorithms
from repro.compile import compile_circuit, line_architecture, manhattan_architecture
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.fuzz.generator import FAMILIES
from repro.fuzz.runner import FuzzSettings, run_fuzz

REPEATS = 5
CAMPAIGN_PAIRS_PER_FAMILY = 75
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"

# Statistics keys only ever written by the DD / simulation / ZX backends.
_BACKEND_KEYS = (
    "max_dd_size",
    "simulations_run",
    "zx_rounds",
    "stabilizer_rounds",
)


def overhead_cases():
    """Equivalent pairs the pre-pass analyses but cannot decide."""
    manhattan = manhattan_architecture()
    ghz = algorithms.ghz_state(12)
    graphstate = algorithms.graph_state(10, seed=0)
    qft = algorithms.qft(5)
    return [
        ("ghz_12_compiled", ghz, compile_circuit(ghz, manhattan)),
        (
            "graphstate_10_compiled",
            graphstate,
            compile_circuit(graphstate, manhattan),
        ),
        ("qft_5_routed", qft, compile_circuit(qft, line_architecture(5))),
    ]


def _wide_ghz(active, total):
    """GHZ on the first ``active`` wires of a ``total``-wire register."""
    from repro.circuit.circuit import QuantumCircuit

    ghz = algorithms.ghz_state(active)
    return QuantumCircuit(total, operations=ghz.operations)


def _fragment_pair():
    """Three disjoint entangled blocks; the last one broken in b."""
    from repro.circuit.circuit import QuantumCircuit

    pair = []
    for broken in (False, True):
        circuit = QuantumCircuit(12)
        circuit.h(0)
        for q in range(5):
            circuit.cx(q, q + 1)
        for base in (6, 9):
            circuit.h(base)
            circuit.cx(base, base + 1)
            circuit.cx(base + 1, base + 2)
        if broken:
            circuit.z(11)  # breaks the {9,10,11} fragment only
        pair.append(circuit)
    return tuple(pair)


def _phase_poly_pair():
    """A {CNOT, T, Rz} ladder with one planted rotation mismatch."""
    from repro.circuit.circuit import QuantumCircuit

    pair = []
    for broken in (False, True):
        circuit = QuantumCircuit(8)
        for q in range(7):
            circuit.cx(q, q + 1)
            circuit.t(q + 1)
        for q in range(7, 0, -1):
            circuit.cx(q - 1, q)
            circuit.rz(0.25, q - 1)
        if broken:
            circuit.rz(0.125, 7)  # phase-polynomial term mismatch
        pair.append(circuit)
    return tuple(pair)


def short_circuit_cases():
    """Non-equivalent pairs each analysis pass decides statically."""
    idle_a = _wide_ghz(11, 12)
    idle_b = _wide_ghz(11, 12)
    idle_b.x(11)  # planted error on the idle wire
    return [
        ("idle_wire_witness", (idle_a, idle_b)),
        ("fragment_witness", _fragment_pair()),
        ("phase_poly_witness", _phase_poly_pair()),
    ]


def timed_run(circuit1, circuit2, static):
    config = Configuration(strategy="combined", seed=0, static_analysis=static)
    best = math.inf
    result = None
    for _ in range(REPEATS):
        manager = EquivalenceCheckingManager(circuit1, circuit2, config)
        start = time.perf_counter()
        result = manager.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> int:
    overhead = []
    for name, circuit1, circuit2 in overhead_cases():
        off_time, off_result = timed_run(circuit1, circuit2, static=False)
        on_time, on_result = timed_run(circuit1, circuit2, static=True)
        overhead_pct = 100.0 * (on_time - off_time) / off_time
        overhead.append({
            "case": name,
            "num_qubits": max(circuit1.num_qubits, circuit2.num_qubits),
            "num_gates": [len(circuit1), len(circuit2)],
            "off_seconds": round(off_time, 6),
            "on_seconds": round(on_time, 6),
            "overhead_pct": round(overhead_pct, 3),
            "verdict_off": off_result.equivalence.value,
            "verdict_on": on_result.equivalence.value,
            "verdicts_agree":
                off_result.equivalence == on_result.equivalence,
        })
        print(
            f"{name:28s} off {off_time:7.4f}s  on {on_time:7.4f}s  "
            f"overhead {overhead_pct:+6.2f}%"
        )
        assert overhead[-1]["verdicts_agree"], f"{name}: verdicts diverged"

    shorts = []
    for name, (circuit1, circuit2) in short_circuit_cases():
        off_time, off_result = timed_run(circuit1, circuit2, static=False)
        on_time, on_result = timed_run(circuit1, circuit2, static=True)
        stats = on_result.statistics
        backend_untouched = not any(key in stats for key in _BACKEND_KEYS)
        speedup = off_time / on_time if on_time else math.inf
        shorts.append({
            "case": name,
            "num_qubits": max(circuit1.num_qubits, circuit2.num_qubits),
            "num_gates": [len(circuit1), len(circuit2)],
            "checker_seconds": round(off_time, 6),
            "prepass_seconds": round(on_time, 6),
            "speedup": round(speedup, 3),
            "witness_kind": stats["analysis"]["witness"]["kind"],
            "verdict_off": off_result.equivalence.value,
            "verdict_on": on_result.equivalence.value,
            "backend_untouched": backend_untouched,
        })
        print(
            f"{name:28s} checker {off_time:7.4f}s  prepass {on_time:7.4f}s  "
            f"{speedup:6.1f}x  witness={shorts[-1]['witness_kind']}"
        )
        assert on_result.equivalence.value == "not_equivalent", name
        assert off_result.equivalence.value == "not_equivalent", name
        assert backend_untouched, (
            f"{name}: short-circuit still constructed a backend object"
        )

    campaigns = []
    with tempfile.TemporaryDirectory() as corpus:
        for family in FAMILIES:
            outcome = run_fuzz(FuzzSettings(
                seed=20260806,
                budget=CAMPAIGN_PAIRS_PER_FAMILY,
                family=family,
                corpus_dir=corpus,
            ))
            campaigns.append({
                "family": family,
                "pairs_run": outcome.pairs_run,
                "labels": dict(sorted(outcome.label_counts.items())),
                "disagreements": len(outcome.disagreements),
                "seconds": round(outcome.seconds, 3),
            })
            print(
                f"fuzz {family:16s} {outcome.pairs_run:3d} pairs  "
                f"{len(outcome.disagreements)} disagreements  "
                f"{outcome.seconds:6.1f}s"
            )
            assert not outcome.disagreements, (
                f"{family}: analyzer participant disagreed with a checker"
            )

    max_overhead = max(case["overhead_pct"] for case in overhead)
    report = {
        "benchmark": "analysis",
        "description": (
            "Static pre-pass overhead on undecidable equivalent pairs and "
            "short-circuit speedups on statically decidable NEQ pairs"
        ),
        "repeats": REPEATS,
        "python": platform.python_version(),
        "overhead_cases": overhead,
        "short_circuit_cases": shorts,
        "fuzz_campaign": {
            "participants": 7,
            "pairs_per_family": CAMPAIGN_PAIRS_PER_FAMILY,
            "families": campaigns,
            "total_pairs": sum(c["pairs_run"] for c in campaigns),
            "total_disagreements":
                sum(c["disagreements"] for c in campaigns),
        },
        "summary": {
            "max_overhead_pct": round(max_overhead, 3),
            "overhead_within_budget": max_overhead < 5.0,
            "min_short_circuit_speedup":
                round(min(case["speedup"] for case in shorts), 3),
            "all_short_circuits_skip_backends":
                all(case["backend_untouched"] for case in shorts),
            "fuzz_pairs_clean":
                sum(c["pairs_run"] for c in campaigns),
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        f"max overhead {report['summary']['max_overhead_pct']}%, "
        "min short-circuit speedup "
        f"{report['summary']['min_short_circuit_speedup']}x"
    )
    assert report["summary"]["overhead_within_budget"], (
        "pre-pass overhead exceeded the 5% budget"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
