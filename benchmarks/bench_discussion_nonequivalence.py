"""Section 6.2 discussion, part 2 (experiment D2 in DESIGN.md).

"QCEC resorts to simulations of the circuit with random inputs which [...]
are expected to show the non-equivalence within a few simulations", while
the ZX rewriting "is not a proof of non-equivalence, but [...] gives a
strong indication" by terminating prematurely.

The benchmarks time both falsification paths and assert the behavioural
claims: few simulations suffice, and the stuck ZX reduction never wrongly
accepts.
"""

import pytest

from benchmarks.conftest import error_variant, run_check
from repro.bench import algorithms
from repro.compile import compile_circuit, line_architecture
from repro.ec import Configuration, simulation_check, zx_check
from repro.ec.results import Equivalence


@pytest.fixture(scope="module")
def broken_pairs():
    pairs = {}
    for original in (
        algorithms.grover(4),
        algorithms.qft(6),
        algorithms.ghz_state(8),
    ):
        compiled = compile_circuit(
            original, line_architecture(original.num_qubits + 2)
        )
        for kind in ("gate_missing", "flipped_cnot"):
            pairs[f"{original.name}/{kind}"] = (
                original,
                error_variant(compiled, kind),
            )
    return pairs


_CASES = [
    "grover_4/gate_missing", "grover_4/flipped_cnot",
    "qft_6/gate_missing", "qft_6/flipped_cnot",
    "ghz_8/gate_missing", "ghz_8/flipped_cnot",
]


@pytest.mark.parametrize("case", _CASES)
def test_simulation_falsification(benchmark, broken_pairs, case):
    original, broken = broken_pairs[case]

    def run():
        return simulation_check(original, broken, Configuration(seed=0))

    result = benchmark.pedantic(run, rounds=1)
    assert result.equivalence is Equivalence.NOT_EQUIVALENT
    # the paper's expectation: a handful of stimuli expose the error
    assert result.statistics["simulations_run"] <= 16


@pytest.mark.parametrize("case", _CASES)
def test_zx_indication(benchmark, broken_pairs, case):
    original, broken = broken_pairs[case]

    def run():
        return zx_check(original, broken, Configuration())

    result = benchmark.pedantic(run, rounds=1)
    # never a wrong acceptance; usually NO_INFORMATION (stuck reduction)
    assert result.equivalence in (
        Equivalence.NO_INFORMATION,
        Equivalence.NOT_EQUIVALENT,
    )


def test_simulation_run_distribution(broken_pairs):
    """Across all broken instances, the median detection needs few runs."""
    runs = []
    for original, broken in broken_pairs.values():
        result = simulation_check(original, broken, Configuration(seed=3))
        if result.equivalence is Equivalence.NOT_EQUIVALENT:
            runs.append(result.statistics["simulations_run"])
    assert runs, "no instance was falsified"
    runs.sort()
    assert runs[len(runs) // 2] <= 4
