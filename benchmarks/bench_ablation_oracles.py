"""Ablation A1: the alternating scheme's gate-selection oracle.

Section 4.1: "The strategy when to choose gates from which circuit is
dictated by an oracle.  If more information about the relation between G
and G' is known, a more sophisticated oracle can be employed."

This ablation compares the three oracles on compiled pairs where the gate
counts differ substantially (|G'| >> |G|):

* ``naive`` 1:1 alternation lets the product drift away from the identity,
* ``proportional`` alternation (QCEC's default for compilation flows)
  keeps the sides in sync,
* ``lookahead`` greedily minimizes the DD after every step at the price of
  trying both sides.
"""

import pytest

from repro.bench import algorithms
from repro.compile import compile_circuit, line_architecture
from repro.ec import AlternatingChecker, Configuration

ORACLES = ["naive", "proportional", "lookahead", "compilation_flow"]


@pytest.fixture(scope="module")
def pairs():
    out = {}
    for original in (
        algorithms.ghz_state(8),
        algorithms.qft(5),
        algorithms.grover(4),
    ):
        compiled = compile_circuit(
            original, line_architecture(original.num_qubits + 3)
        )
        out[original.name] = (original, compiled)
    return out


@pytest.mark.parametrize("name", ["ghz_8", "qft_5", "grover_4"])
@pytest.mark.parametrize("oracle", ORACLES)
def test_oracle_runtime(benchmark, pairs, name, oracle):
    original, compiled = pairs[name]
    config = Configuration(
        strategy="alternating", oracle=oracle, trace_sizes=True
    )

    def run():
        return AlternatingChecker(original, compiled, config).run()

    result = benchmark.pedantic(run, rounds=1)
    assert result.considered_equivalent


@pytest.mark.parametrize("name", ["ghz_8", "qft_5"])
def test_proportional_tracks_identity_better_than_naive(pairs, name):
    """With |G'| >> |G|, naive 1:1 alternation exhausts G early and then
    multiplies G' into an already-drifted product; proportional keeps the
    intermediate DD at least as small."""
    original, compiled = pairs[name]
    sizes = {}
    for oracle in ("naive", "proportional"):
        config = Configuration(
            strategy="alternating", oracle=oracle, trace_sizes=True
        )
        result = AlternatingChecker(original, compiled, config).run()
        sizes[oracle] = result.statistics["max_dd_size"]
    assert sizes["proportional"] <= sizes["naive"]
