"""Kernel baselines for the DD engines on Table-1-style instances.

Two stacked comparisons, recorded in ``BENCH_dd_kernels.json`` at the
repository root:

* **seed vs direct** (``cases``): the legacy kernels (full-height gate DD
  + full-depth multiply, the seed behaviour) against the
  direct-application fast path, both on the object engine — the original
  baseline, kept so the trajectory stays comparable across runs;
* **object vs array** (``array_cases``): the object engine against the
  array-native engine (struct-of-arrays node store, packed integer
  edges, batched stimuli), both on the direct fast path — the
  *additional* speedup the array kernels deliver on top of the first
  comparison.  Simulation-strategy cases exercise the batched column
  path and additionally assert the stimulus digest is byte-identical
  across engines.

Alongside the timings, each case re-derives both circuits' DDs with both
code paths over *shared* canonical weights and asserts bit-identity —
the faster path must return the very same canonical root, so any speedup
is pure bookkeeping, never a numerical shortcut.  (For the cross-engine
comparison this uses canonical signature trees over one shared complex
table, since handles and node objects cannot be compared directly.)

Run:  PYTHONPATH=src python benchmarks/bench_dd_kernels.py

(The module intentionally defines no ``test_*``/pytest entry points; the
tier-1 smoke guard lives in ``tests/perf/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

try:
    from benchmarks.trajectory import with_trajectory
except ImportError:  # executed as a plain script: benchmarks/ is sys.path[0]
    from trajectory import with_trajectory
from repro.bench import algorithms
from repro.compile import compile_circuit, manhattan_architecture
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.dd import ArrayDDPackage, ComplexTable, DDPackage, matrix_signature
from repro.dd.gates import circuit_dd
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.permutations import to_logical_form
from repro.ec.sim_checker import simulation_check

REPEATS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dd_kernels.json"


def build_cases():
    """Table-1-style (name, circuit1, circuit2, strategy) instances."""
    manhattan = manhattan_architecture()
    ghz = algorithms.ghz_state(16)
    graphstate = algorithms.graph_state(12, seed=0)
    qft = algorithms.qft(6)
    ghz_compiled = compile_circuit(ghz, manhattan)
    graphstate_compiled = compile_circuit(graphstate, manhattan)
    qft_optimized = optimize_circuit(decompose_to_basis(qft), level=2)
    return [
        ("ghz_16_compiled/alternating", ghz, ghz_compiled, "alternating"),
        ("ghz_16_compiled/simulation", ghz, ghz_compiled, "simulation"),
        (
            "graphstate_12_compiled/alternating",
            graphstate, graphstate_compiled, "alternating",
        ),
        (
            "graphstate_12_compiled/simulation",
            graphstate, graphstate_compiled, "simulation",
        ),
        ("qft_6_optimized/alternating", qft, qft_optimized, "alternating"),
    ]


def timed_check(circuit1, circuit2, strategy, direct, array_dd=False):
    """Best-of-``REPEATS`` wall time plus the last verdict."""
    config = Configuration(
        strategy=strategy, seed=0, direct_application=direct,
        num_simulations=8, array_dd=array_dd,
    )
    best = math.inf
    result = None
    for _ in range(REPEATS):
        manager = EquivalenceCheckingManager(circuit1, circuit2, config)
        start = time.perf_counter()
        result = manager.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def roots_identical(circuit1, circuit2):
    """Direct and legacy construction agree node-for-node in one package."""
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    pkg = DDPackage()
    for circuit in (circuit1, circuit2):
        logical, _ = to_logical_form(circuit, num_qubits)
        direct = circuit_dd(pkg, logical, direct=True)
        legacy = circuit_dd(pkg, logical, direct=False)
        if direct.node is not legacy.node or direct.weight != legacy.weight:
            return False
    return True


def array_roots_identical(circuit1, circuit2):
    """Object and array engines build bit-identical circuit DDs.

    Both packages intern weights in one shared complex table, so equal
    canonical signature trees mean the same structure with the very same
    complex values — the cross-engine analogue of node identity.
    """
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    table = ComplexTable()
    obj_pkg = DDPackage(complex_table=table)
    arr_pkg = ArrayDDPackage(complex_table=table)
    for circuit in (circuit1, circuit2):
        logical, _ = to_logical_form(circuit, num_qubits)
        obj_root = circuit_dd(obj_pkg, logical, direct=True)
        arr_root = circuit_dd(arr_pkg, logical, direct=True)
        if matrix_signature(obj_root) != matrix_signature(arr_root, arr_pkg):
            return False
    return True


def stimuli_digest_identical(circuit1, circuit2):
    """Batched and per-stimulus simulation consume the same stimuli."""
    digests = []
    for array_dd in (False, True):
        config = Configuration(
            strategy="simulation", seed=0, num_simulations=8,
            array_dd=array_dd,
        )
        result = simulation_check(circuit1, circuit2, config)
        digests.append(result.statistics["stimuli_digest"])
    return digests[0] == digests[1]


def main() -> int:
    cases = []
    for name, circuit1, circuit2, strategy in build_cases():
        seed_time, seed_result = timed_check(
            circuit1, circuit2, strategy, direct=False
        )
        new_time, new_result = timed_check(
            circuit1, circuit2, strategy, direct=True
        )
        identical = roots_identical(circuit1, circuit2)
        speedup = seed_time / new_time if new_time else math.inf
        cases.append({
            "case": name,
            "strategy": strategy,
            "num_qubits": max(circuit1.num_qubits, circuit2.num_qubits),
            "num_gates": [len(circuit1), len(circuit2)],
            "seed_seconds": round(seed_time, 6),
            "new_seconds": round(new_time, 6),
            "speedup": round(speedup, 3),
            "verdict_seed": seed_result.equivalence.value,
            "verdict_new": new_result.equivalence.value,
            "verdicts_agree":
                seed_result.equivalence == new_result.equivalence,
            "roots_identical": identical,
        })
        print(
            f"{name:40s} seed {seed_time:7.3f}s  new {new_time:7.3f}s  "
            f"{speedup:5.2f}x  roots_identical={identical}"
        )
        assert identical, f"{name}: fast path diverged from legacy"
        assert cases[-1]["verdicts_agree"], f"{name}: verdicts diverged"

    print()
    array_cases = []
    for name, circuit1, circuit2, strategy in build_cases():
        object_time, object_result = timed_check(
            circuit1, circuit2, strategy, direct=True, array_dd=False
        )
        array_time, array_result = timed_check(
            circuit1, circuit2, strategy, direct=True, array_dd=True
        )
        identical = array_roots_identical(circuit1, circuit2)
        speedup = object_time / array_time if array_time else math.inf
        case = {
            "case": name,
            "strategy": strategy,
            "batched_simulation": strategy == "simulation",
            "object_seconds": round(object_time, 6),
            "array_seconds": round(array_time, 6),
            "speedup": round(speedup, 3),
            "verdict_object": object_result.equivalence.value,
            "verdict_array": array_result.equivalence.value,
            "verdicts_agree":
                object_result.equivalence == array_result.equivalence,
            "roots_identical": identical,
        }
        if strategy == "simulation":
            case["stimuli_digest_identical"] = stimuli_digest_identical(
                circuit1, circuit2
            )
            assert case["stimuli_digest_identical"], (
                f"{name}: batched stimuli diverged from per-stimulus loop"
            )
        array_cases.append(case)
        print(
            f"{name:40s} obj  {object_time:7.3f}s  arr {array_time:7.3f}s  "
            f"{speedup:5.2f}x  roots_identical={identical}"
        )
        assert identical, f"{name}: array engine diverged from object engine"
        assert case["verdicts_agree"], f"{name}: verdicts diverged"

    speedups = [case["speedup"] for case in cases]
    array_speedups = [case["speedup"] for case in array_cases]
    report = {
        "benchmark": "dd_kernels",
        "description": (
            "Direct gate application + bounded compute tables vs the seed "
            "layered_kron/multiply path, DD checkers on Table-1-style pairs"
        ),
        "repeats": REPEATS,
        "python": platform.python_version(),
        "cases": cases,
        "array_cases": array_cases,
        "summary": {
            "min_speedup": round(min(speedups), 3),
            "max_speedup": round(max(speedups), 3),
            "geomean_speedup": round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)),
                3,
            ),
            "all_roots_identical":
                all(case["roots_identical"] for case in cases),
            "all_verdicts_agree":
                all(case["verdicts_agree"] for case in cases),
            "array_min_speedup": round(min(array_speedups), 3),
            "array_max_speedup": round(max(array_speedups), 3),
            "array_geomean_speedup": round(
                math.exp(
                    sum(math.log(s) for s in array_speedups)
                    / len(array_speedups)
                ),
                3,
            ),
            "array_all_roots_identical":
                all(case["roots_identical"] for case in array_cases),
            "array_all_verdicts_agree":
                all(case["verdicts_agree"] for case in array_cases),
        },
    }
    report = with_trajectory(report, OUTPUT)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        "seed->direct geomean speedup "
        f"{report['summary']['geomean_speedup']}x, "
        f"min {report['summary']['min_speedup']}x"
    )
    print(
        "object->array geomean speedup "
        f"{report['summary']['array_geomean_speedup']}x, "
        f"min {report['summary']['array_min_speedup']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
