"""Seed-vs-fast-path baseline for the direct DD gate-application kernels.

Times the DD-based checkers on Table-1-style verification instances with
the legacy kernels (full-height gate DD + full-depth multiply, the seed
behaviour) against the direct-application fast path, and records the
comparison in ``BENCH_dd_kernels.json`` at the repository root.

Alongside the timings, each case re-derives both circuits' DDs with both
kernel paths *in one shared package* and asserts bit-identity — the fast
path must return the very same canonical root node and weight, so any
speedup is pure bookkeeping, never a numerical shortcut.

Run:  PYTHONPATH=src python benchmarks/bench_dd_kernels.py

(The module intentionally defines no ``test_*``/pytest entry points; the
tier-1 smoke guard lives in ``tests/perf/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

try:
    from benchmarks.trajectory import with_trajectory
except ImportError:  # executed as a plain script: benchmarks/ is sys.path[0]
    from trajectory import with_trajectory
from repro.bench import algorithms
from repro.compile import compile_circuit, manhattan_architecture
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit
from repro.dd import DDPackage
from repro.dd.gates import circuit_dd
from repro.ec import Configuration, EquivalenceCheckingManager
from repro.ec.permutations import to_logical_form

REPEATS = 3
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_dd_kernels.json"


def build_cases():
    """Table-1-style (name, circuit1, circuit2, strategy) instances."""
    manhattan = manhattan_architecture()
    ghz = algorithms.ghz_state(16)
    graphstate = algorithms.graph_state(12, seed=0)
    qft = algorithms.qft(6)
    ghz_compiled = compile_circuit(ghz, manhattan)
    graphstate_compiled = compile_circuit(graphstate, manhattan)
    qft_optimized = optimize_circuit(decompose_to_basis(qft), level=2)
    return [
        ("ghz_16_compiled/alternating", ghz, ghz_compiled, "alternating"),
        ("ghz_16_compiled/simulation", ghz, ghz_compiled, "simulation"),
        (
            "graphstate_12_compiled/alternating",
            graphstate, graphstate_compiled, "alternating",
        ),
        (
            "graphstate_12_compiled/simulation",
            graphstate, graphstate_compiled, "simulation",
        ),
        ("qft_6_optimized/alternating", qft, qft_optimized, "alternating"),
    ]


def timed_check(circuit1, circuit2, strategy, direct):
    """Best-of-``REPEATS`` wall time plus the last verdict."""
    config = Configuration(
        strategy=strategy, seed=0, direct_application=direct,
        num_simulations=8,
    )
    best = math.inf
    result = None
    for _ in range(REPEATS):
        manager = EquivalenceCheckingManager(circuit1, circuit2, config)
        start = time.perf_counter()
        result = manager.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def roots_identical(circuit1, circuit2):
    """Direct and legacy construction agree node-for-node in one package."""
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    pkg = DDPackage()
    for circuit in (circuit1, circuit2):
        logical, _ = to_logical_form(circuit, num_qubits)
        direct = circuit_dd(pkg, logical, direct=True)
        legacy = circuit_dd(pkg, logical, direct=False)
        if direct.node is not legacy.node or direct.weight != legacy.weight:
            return False
    return True


def main() -> int:
    cases = []
    for name, circuit1, circuit2, strategy in build_cases():
        seed_time, seed_result = timed_check(
            circuit1, circuit2, strategy, direct=False
        )
        new_time, new_result = timed_check(
            circuit1, circuit2, strategy, direct=True
        )
        identical = roots_identical(circuit1, circuit2)
        speedup = seed_time / new_time if new_time else math.inf
        cases.append({
            "case": name,
            "strategy": strategy,
            "num_qubits": max(circuit1.num_qubits, circuit2.num_qubits),
            "num_gates": [len(circuit1), len(circuit2)],
            "seed_seconds": round(seed_time, 6),
            "new_seconds": round(new_time, 6),
            "speedup": round(speedup, 3),
            "verdict_seed": seed_result.equivalence.value,
            "verdict_new": new_result.equivalence.value,
            "verdicts_agree":
                seed_result.equivalence == new_result.equivalence,
            "roots_identical": identical,
        })
        print(
            f"{name:40s} seed {seed_time:7.3f}s  new {new_time:7.3f}s  "
            f"{speedup:5.2f}x  roots_identical={identical}"
        )
        assert identical, f"{name}: fast path diverged from legacy"
        assert cases[-1]["verdicts_agree"], f"{name}: verdicts diverged"

    speedups = [case["speedup"] for case in cases]
    report = {
        "benchmark": "dd_kernels",
        "description": (
            "Direct gate application + bounded compute tables vs the seed "
            "layered_kron/multiply path, DD checkers on Table-1-style pairs"
        ),
        "repeats": REPEATS,
        "python": platform.python_version(),
        "cases": cases,
        "summary": {
            "min_speedup": round(min(speedups), 3),
            "max_speedup": round(max(speedups), 3),
            "geomean_speedup": round(
                math.exp(sum(math.log(s) for s in speedups) / len(speedups)),
                3,
            ),
            "all_roots_identical":
                all(case["roots_identical"] for case in cases),
            "all_verdicts_agree":
                all(case["verdicts_agree"] for case in cases),
        },
    }
    report = with_trajectory(report, OUTPUT)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        "geomean speedup "
        f"{report['summary']['geomean_speedup']}x, "
        f"min {report['summary']['min_speedup']}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
