"""Per-job fork sandbox vs the supervised worker pool vs the verdict cache.

Pushes a batch of seeded fuzz pairs through three execution regimes —
one forked sandbox per check (``run_check(isolate=True)``, the seed
containment model), a :class:`~repro.service.pool.WorkerPool` of
long-lived forked workers, and a second pooled batch answered entirely
from the :class:`~repro.service.cache.VerdictCache` — and records the
comparison in ``BENCH_service.json`` at the repository root.

The headline claims this benchmark asserts: amortizing the fork across
a worker's lifetime makes the pooled batch at least 1.5x faster than
per-job forking, a full-cache replay is at least 5x faster again, every
regime returns the identical verdict on every pair, the replay is
answered with zero new checks, and the pool reaps every process it
ever spawned.

Run:  PYTHONPATH=src python benchmarks/bench_service.py

(The module intentionally defines no ``test_*``/pytest entry points;
the tier-1 smoke guard lives in ``tests/perf/test_bench_smoke.py``.)
"""

from __future__ import annotations

import json
import math
import platform
import time
from pathlib import Path

try:
    from benchmarks.trajectory import with_trajectory
except ImportError:  # executed as a plain script: benchmarks/ is sys.path[0]
    from trajectory import with_trajectory
from repro.ec.configuration import Configuration
from repro.fuzz.generator import generate_instance
from repro.harness import run_check
from repro.service import PoolConfig, VerdictCache, WorkerPool

REPEATS = 2
JOBS = 24
WORKERS = 2
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _pairs():
    """Seeded fuzz pairs: many small jobs, where per-job overhead shows."""
    pairs = []
    seed = 9000
    while len(pairs) < JOBS:
        _instance, pair = generate_instance(seed, family="clifford_t")
        seed += 1
        pairs.append((pair.circuit1, pair.circuit2))
    return pairs


def _configuration():
    return Configuration(timeout=10.0, seed=0)


def main() -> int:
    pairs = _pairs()
    configuration = _configuration()

    # Arm 1 — the seed model: one forked sandbox per check.
    sandbox_best = math.inf
    sandbox_results = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        sandbox_results = [
            run_check(circuit1, circuit2, configuration, isolate=True)
            for circuit1, circuit2 in pairs
        ]
        sandbox_best = min(sandbox_best, time.perf_counter() - start)

    # Arm 2 — the supervised pool, no cache: long-lived forked workers.
    pool_best = math.inf
    pooled_results = None
    with WorkerPool(PoolConfig(workers=WORKERS)) as pool:
        for _ in range(REPEATS):
            start = time.perf_counter()
            pooled_results = pool.run_batch(pairs, configuration, timeout=300.0)
            pool_best = min(pool_best, time.perf_counter() - start)
    pool_audit = pool.audit()

    # Arm 3 — the pool fronted by the verdict cache: populate once
    # (untimed), then time full-cache replays.
    cache = VerdictCache()
    replay_best = math.inf
    replay_results = None
    with WorkerPool(PoolConfig(workers=WORKERS), cache=cache) as cached_pool:
        cached_pool.run_batch(pairs, configuration, timeout=300.0)
        # ``cache.store`` only moves when a *fresh* worker execution
        # lands a verdict, so a frozen store count proves the replays
        # re-executed nothing.
        stores_before = cached_pool.counters.counters.get("cache.store", 0)
        hits_before = cached_pool.counters.counters.get("cache.hit", 0)
        for _ in range(REPEATS):
            start = time.perf_counter()
            replay_results = cached_pool.run_batch(
                pairs, configuration, timeout=300.0
            )
            replay_best = min(replay_best, time.perf_counter() - start)
        new_stores = (
            cached_pool.counters.counters.get("cache.store", 0)
            - stores_before
        )
        cache_hits = (
            cached_pool.counters.counters.get("cache.hit", 0) - hits_before
        )
    cached_audit = cached_pool.audit()

    cases = []
    for index, ((circuit1, circuit2), sandboxed, pooled, replayed) in enumerate(
        zip(pairs, sandbox_results, pooled_results, replay_results)
    ):
        agree = (
            sandboxed.equivalence
            is pooled.equivalence
            is replayed.equivalence
        )
        cases.append({
            "job": index,
            "num_gates": [len(circuit1), len(circuit2)],
            "verdict": pooled.equivalence.value,
            "verdicts_agree": agree,
        })
        assert agree, f"job {index}: verdicts diverged across regimes"

    pool_speedup = sandbox_best / pool_best if pool_best else math.inf
    replay_speedup = pool_best / replay_best if replay_best else math.inf
    report = {
        "benchmark": "service",
        "description": (
            "Per-job fork sandbox vs long-lived supervised worker pool "
            "vs full verdict-cache replay on a batch of seeded fuzz "
            "pairs"
        ),
        "repeats": REPEATS,
        "jobs": JOBS,
        "workers": WORKERS,
        "python": platform.python_version(),
        "cases": cases,
        "summary": {
            "sandbox_seconds": round(sandbox_best, 6),
            "pool_seconds": round(pool_best, 6),
            "replay_seconds": round(replay_best, 6),
            "pool_vs_sandbox_speedup": round(pool_speedup, 3),
            "replay_vs_pool_speedup": round(replay_speedup, 3),
            "replay_new_checks": new_stores,
            "replay_cache_hits": cache_hits,
            "all_verdicts_agree":
                all(case["verdicts_agree"] for case in cases),
            "leaked_processes":
                pool_audit["leaked"] + cached_audit["leaked"],
        },
    }
    print(
        f"sandbox {sandbox_best:6.3f}s  pool {pool_best:6.3f}s "
        f"({pool_speedup:.2f}x)  replay {replay_best:6.3f}s "
        f"({replay_speedup:.2f}x over pool)"
    )
    assert pool_speedup >= 1.5, (
        f"pooled batch only {pool_speedup:.2f}x over per-job forking; "
        "expected >= 1.5x"
    )
    assert replay_speedup >= 5.0, (
        f"cache replay only {replay_speedup:.2f}x over the cold pooled "
        "batch; expected >= 5x"
    )
    assert new_stores == 0, "cache replay re-executed checks"
    assert cache_hits == JOBS * REPEATS, (
        f"expected {JOBS * REPEATS} cache hits, got {cache_hits}"
    )
    assert pool_audit["leaked"] == 0 and cached_audit["leaked"] == 0
    report = with_trajectory(report, OUTPUT)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT}")
    print(
        f"pool {pool_speedup:.2f}x over per-job fork, cache replay "
        f"{replay_speedup:.2f}x over the cold pool, 0 leaked processes"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
