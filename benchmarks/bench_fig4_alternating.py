"""Figure 4: the alternating scheme stays near the identity (experiment F4).

The paper's Fig. 4 walks through verifying the GHZ compilation by applying
gates alternately from ``G†`` and ``G'`` so the intermediate DD never
departs far from the identity.  These benchmarks measure both the paper's
scheme and the naive construction baseline and assert the size relation
that motivates the whole approach.
"""

import pytest

from benchmarks.conftest import run_check
from repro.bench import algorithms
from repro.compile import compile_circuit, line_architecture
from repro.ec import AlternatingChecker, Configuration, ConstructionChecker


@pytest.fixture(scope="module")
def ghz_pair():
    original = algorithms.ghz_state(8)
    compiled = compile_circuit(original, line_architecture(10))
    return original, compiled


@pytest.fixture(scope="module")
def qft_pair():
    original = algorithms.qft(5)
    compiled = compile_circuit(original, line_architecture(7))
    return original, compiled


@pytest.mark.parametrize("pair_fixture", ["ghz_pair", "qft_pair"])
def test_alternating_scheme(benchmark, pair_fixture, request):
    original, compiled = request.getfixturevalue(pair_fixture)
    config = Configuration(strategy="alternating", trace_sizes=True)

    def run():
        return AlternatingChecker(original, compiled, config).run()

    result = benchmark.pedantic(run, rounds=1)
    assert result.considered_equivalent
    # Fig. 4's property: the intermediate DD stays near the identity.
    assert result.statistics["max_dd_size"] <= 4 * compiled.num_qubits


@pytest.mark.parametrize("pair_fixture", ["ghz_pair", "qft_pair"])
def test_construction_baseline(benchmark, pair_fixture, request):
    original, compiled = request.getfixturevalue(pair_fixture)
    config = Configuration(strategy="construction", trace_sizes=True)

    def run():
        return ConstructionChecker(original, compiled, config).run()

    result = benchmark.pedantic(run, rounds=1)
    assert result.considered_equivalent


def test_alternating_beats_construction_on_size(ghz_pair):
    """The headline claim behind Fig. 4, asserted directly."""
    original, compiled = ghz_pair
    config = Configuration(trace_sizes=True)
    alternating = AlternatingChecker(original, compiled, config).run()
    construction = ConstructionChecker(original, compiled, config).run()
    assert (
        alternating.statistics["max_dd_size"]
        <= construction.statistics["max_dd_size"]
    )
