"""Clifford tableau: symplectic representation of Clifford unitaries.

A Clifford unitary is determined (up to an unobservable global phase) by
its conjugation action on the Pauli generators ``X_i`` and ``Z_i``.  The
tableau stores that action as ``2n`` rows of ``(x | z | r)`` bits following
Aaronson & Gottesman's CHP conventions: row ``i`` is the image of ``X_i``,
row ``n + i`` the image of ``Z_i``, and ``r`` the sign bit.

Gates update rows in ``O(n)``:

* ``CNOT a->b``: ``r ^= x_a z_b (x_b ^ z_a ^ 1)``, ``x_b ^= x_a``,
  ``z_a ^= z_b``
* ``H a``: ``r ^= x_a z_a``, swap ``x_a`` / ``z_a``
* ``S a``: ``r ^= x_a z_a``, ``z_a ^= x_a``

Everything else Clifford is a composition of those three.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation

_HALF_PI = math.pi / 2.0
_SNAP = 1e-9


class NonCliffordGateError(ValueError):
    """Raised when a gate outside the Clifford group is applied."""


def _half_pi_multiple(angle: float) -> int:
    """The integer k with angle ~ k*pi/2 (mod 2pi), or raise."""
    k = round(angle / _HALF_PI)
    if abs(angle - k * _HALF_PI) > _SNAP:
        raise NonCliffordGateError(
            f"rotation angle {angle} is not a multiple of pi/2"
        )
    return k % 4


#: Parameter-free single-qubit gates as (h/s composition) strings.
_SINGLE_QUBIT_SEQUENCES = {
    "id": "",
    "h": "h",
    "s": "s",
    "sdg": "sss",
    "z": "ss",
    "x": "hssh",
    "y": "hsshss",  # conjugation by Y == conjugation by Z X
    "sx": "hsh",
    "sxdg": "hsssh",
}


class CliffordTableau:
    """The conjugation action of a Clifford circuit on Pauli generators."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits
        n = num_qubits
        self.x = np.zeros((2 * n, n), dtype=bool)
        self.z = np.zeros((2 * n, n), dtype=bool)
        self.r = np.zeros(2 * n, dtype=bool)
        for i in range(n):
            self.x[i, i] = True  # row i:      X_i
            self.z[n + i, i] = True  # row n+i: Z_i

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "CliffordTableau":
        """Build the tableau of a whole circuit.

        Raises:
            NonCliffordGateError: on any non-Clifford operation.
        """
        tableau = cls(circuit.num_qubits)
        for op in circuit:
            tableau.apply_operation(op)
        return tableau

    def copy(self) -> "CliffordTableau":
        out = CliffordTableau(self.num_qubits)
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out

    # ------------------------------------------------------------------
    # primitive gates
    # ------------------------------------------------------------------
    def apply_h(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = (
            self.z[:, a].copy(),
            self.x[:, a].copy(),
        )

    def apply_s(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def apply_cx(self, a: int, b: int) -> None:
        self.r ^= (
            self.x[:, a]
            & self.z[:, b]
            & (self.x[:, b] ^ self.z[:, a] ^ True)
        )
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    # ------------------------------------------------------------------
    # general operations
    # ------------------------------------------------------------------
    def _apply_sequence(self, sequence: str, qubit: int) -> None:
        for gate in sequence:
            if gate == "h":
                self.apply_h(qubit)
            else:
                self.apply_s(qubit)

    def apply_operation(self, op: Operation) -> None:
        """Apply one circuit operation; raises on non-Clifford gates."""
        name = op.name
        if not op.controls:
            if len(op.targets) == 1:
                (target,) = op.targets
                if name in _SINGLE_QUBIT_SEQUENCES:
                    self._apply_sequence(
                        _SINGLE_QUBIT_SEQUENCES[name], target
                    )
                    return
                if name in ("t", "tdg"):
                    raise NonCliffordGateError(f"{name} is not Clifford")
                if name in ("rz", "p"):
                    self._apply_sequence(
                        "s" * _half_pi_multiple(op.params[0]), target
                    )
                    return
                if name == "rx":
                    k = _half_pi_multiple(op.params[0])
                    self._apply_sequence("h" + "s" * k + "h", target)
                    return
                if name == "ry":
                    # RY(k pi/2) = S . RX(k pi/2) . Sdg (up to phase)
                    k = _half_pi_multiple(op.params[0])
                    self._apply_sequence(
                        "sss" + "h" + "s" * k + "h" + "s", target
                    )
                    return
                if name in ("u2", "u3"):
                    raise NonCliffordGateError(
                        f"{name} gates are not resolved to Clifford form"
                    )
            elif name == "swap":
                a, b = op.targets
                self.apply_cx(a, b)
                self.apply_cx(b, a)
                self.apply_cx(a, b)
                return
            elif name == "iswap":
                a, b = op.targets
                # iSWAP = (S (x) S) . CZ . SWAP
                self.apply_operation(Operation("swap", (a, b)))
                self.apply_operation(Operation("z", (b,), (a,)))
                self.apply_s(a)
                self.apply_s(b)
                return
            elif name == "rzz":
                k = _half_pi_multiple(op.params[0])
                a, b = op.targets
                self.apply_cx(a, b)
                self._apply_sequence("s" * k, b)
                self.apply_cx(a, b)
                return
        elif len(op.controls) == 1:
            control = op.controls[0]
            (target,) = op.targets
            if name == "x":
                self.apply_cx(control, target)
                return
            if name == "z":
                self.apply_h(target)
                self.apply_cx(control, target)
                self.apply_h(target)
                return
            if name == "y":
                self._apply_sequence("sss", target)
                self.apply_cx(control, target)
                self.apply_s(target)
                return
        raise NonCliffordGateError(f"operation {op} is not Clifford")

    def apply_circuit(self, circuit: QuantumCircuit) -> None:
        for op in circuit:
            self.apply_operation(op)

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and np.array_equal(self.x, other.x)
            and np.array_equal(self.z, other.z)
            and np.array_equal(self.r, other.r)
        )

    def __hash__(self) -> int:  # tableaus are mutable; identity hash
        return id(self)

    def is_identity(self) -> bool:
        """True if the tableau is the identity map (phases included)."""
        return self == CliffordTableau(self.num_qubits)

    # ------------------------------------------------------------------
    # stabilizer states
    # ------------------------------------------------------------------
    def stabilizer_generators(self) -> List[str]:
        """The stabilizer generators of ``U |0...0>`` as Pauli strings.

        Row ``n + i`` holds the image of ``Z_i``; since ``Z_i`` stabilizes
        ``|0...0>``, those images generate the stabilizer group of the
        output state.  Strings read qubit 0 first, with a leading sign.
        """
        n = self.num_qubits
        out = []
        for i in range(n):
            row = n + i
            sign = "-" if self.r[row] else "+"
            letters = []
            for q in range(n):
                xq, zq = self.x[row, q], self.z[row, q]
                letters.append(
                    "Y" if xq and zq else "X" if xq else "Z" if zq else "I"
                )
            out.append(sign + "".join(letters))
        return out

    def canonical_stabilizer_generators(self) -> Tuple[str, ...]:
        """Gaussian-eliminated stabilizer generators (state fingerprint).

        Two Clifford circuits produce the same state from ``|0...0>`` iff
        these canonical generator sets coincide (global phase excluded by
        construction — stabilizers carry only signs).
        """
        n = self.num_qubits
        x = self.x[n:].copy()
        z = self.z[n:].copy()
        r = self.r[n:].copy()

        def rowsum(target: int, source: int) -> None:
            """target *= source with exact sign tracking (CHP g-function)."""
            phase = 2 * int(r[target]) + 2 * int(r[source])
            for q in range(n):
                phase += _g(
                    int(x[source, q]), int(z[source, q]),
                    int(x[target, q]), int(z[target, q]),
                )
            phase %= 4
            r[target] = bool(phase // 2)
            x[target] ^= x[source]
            z[target] ^= z[source]

        def swap_rows(a: int, b: int) -> None:
            x[[a, b]] = x[[b, a]]
            z[[a, b]] = z[[b, a]]
            r[[a, b]] = r[[b, a]]

        # Standard canonicalization: eliminate the X block column by
        # column, then the Z block on the remaining rows.
        pivot_row = 0
        for block in (x, z):
            for column in range(n):
                pivot = next(
                    (
                        row
                        for row in range(pivot_row, n)
                        if block[row, column]
                    ),
                    None,
                )
                if pivot is None:
                    continue
                if pivot != pivot_row:
                    swap_rows(pivot, pivot_row)
                for row in range(n):
                    if row != pivot_row and block[row, column]:
                        rowsum(row, pivot_row)
                pivot_row += 1
        generators = []
        for i in range(n):
            sign = "-" if r[i] else "+"
            letters = []
            for q in range(n):
                xq, zq = x[i, q], z[i, q]
                letters.append(
                    "Y" if xq and zq else "X" if xq else "Z" if zq else "I"
                )
            generators.append(sign + "".join(letters))
        return tuple(sorted(generators))

    def same_state(self, other: "CliffordTableau") -> bool:
        """Do both circuits map ``|0...0>`` to the same state?"""
        return (
            self.canonical_stabilizer_generators()
            == other.canonical_stabilizer_generators()
        )


def _g(x1: int, z1: int, x2: int, z2: int) -> int:
    """CHP's g-function: the exponent of i when multiplying Paulis."""
    if not x1 and not z1:
        return 0
    if x1 and z1:  # Y
        return z2 - x2
    if x1:  # X
        return z2 * (2 * x2 - 1)
    return x2 * (1 - 2 * z2)  # Z
