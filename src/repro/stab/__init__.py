"""Stabilizer-tableau substrate (Aaronson-Gottesman style).

An independent, exact engine for *Clifford* circuits: gates act on a
binary symplectic tableau in ``O(n)`` per gate, so Clifford equivalence
checking is polynomial — in contrast to the general QMA-complete problem
the paper studies.  Inside the reproduction it serves two roles:

* a third ground truth (besides dense matrices and the DD package) that
  the test suite cross-validates the DD and ZX engines against on random
  Clifford circuits, and
* a fast exact pre-check for the Clifford fragment
  (:func:`repro.ec.stab_checker.stabilizer_check`), complementing the two
  paradigms of the case study.
"""

from repro.stab.tableau import CliffordTableau, NonCliffordGateError

__all__ = ["CliffordTableau", "NonCliffordGateError"]
