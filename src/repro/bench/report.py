"""Markdown report generation for case-study runs.

Turns the rows produced by :func:`repro.bench.study.run_table` into a
self-contained Markdown report in the layout of the paper's Table 1, with
a verdict-correctness summary — the file EXPERIMENTS.md embeds was
produced this way.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.bench.study import CONFIGURATIONS, TableRow

_CONFIG_TITLES = {
    "equivalent": "Equivalent",
    "gate_missing": "1 Gate Missing",
    "flipped_cnot": "Flipped CNOT",
}


def rows_to_markdown(
    rows: List[TableRow], timeout: Optional[float], title: str = "Table 1"
) -> str:
    """Render study rows as a Markdown table with a correctness summary."""
    header_cells = ["Benchmark", "n", "|G|", "|G'|"]
    for config in CONFIGURATIONS:
        header_cells.append(f"{_CONFIG_TITLES[config]} t_dd")
        header_cells.append("t_zx")
    lines = [
        f"## {title}",
        "",
        "| " + " | ".join(header_cells) + " |",
        "|" + "---|" * len(header_cells),
    ]
    wrong = 0
    unknown = 0
    timeouts = 0
    total = 0
    for row in rows:
        cells = [
            row.name,
            str(row.num_qubits),
            str(row.size_original),
            str(row.size_variant),
        ]
        for config in CONFIGURATIONS:
            for method in ("dd", "zx"):
                cell = row.cells[f"{config}/{method}"]
                cells.append(cell.render(timeout))
                total += 1
                if cell.timed_out:
                    timeouts += 1
                elif cell.correct is False:
                    wrong += 1
                elif cell.correct is None:
                    unknown += 1
        lines.append("| " + " | ".join(cells) + " |")
    lines += [
        "",
        f"Cells: seconds per check ({total} checks total); "
        f"`>T` timeout ({timeouts}), `!` wrong verdict ({wrong}), "
        f"`?` no information ({unknown}).",
    ]
    return "\n".join(lines) + "\n"


def write_report(
    path,
    rows_by_use_case,
    timeout: Optional[float],
    preamble: str = "",
) -> Path:
    """Write a full multi-use-case Markdown report to ``path``."""
    sections = []
    if preamble:
        sections.append(preamble.rstrip() + "\n")
    for use_case, rows in rows_by_use_case.items():
        sections.append(
            rows_to_markdown(
                rows, timeout, title=f"{use_case.capitalize()} Circuits"
            )
        )
    output = Path(path)
    output.write_text("\n".join(sections))
    return output
