"""Benchmark-instance construction for the two case-study use-cases.

Builds exactly the instance grid of the paper's Table 1: each benchmark
contributes an original circuit ``G`` and a derived circuit ``G'``
(compiled or optimized), in three configurations — *equivalent*, *one gate
missing* and *flipped CNOT* (errors injected into ``G'``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bench import algorithms, reversible
from repro.bench.errors import flip_random_cnot, remove_random_gate
from repro.circuit.circuit import QuantumCircuit
from repro.compile.architectures import CouplingMap, manhattan_architecture
from repro.compile.compiler import compile_circuit
from repro.compile.decompose import decompose_to_basis
from repro.compile.optimize import optimize_circuit

#: The three configurations of Table 1.
CONFIGURATIONS = ("equivalent", "gate_missing", "flipped_cnot")


@dataclass
class BenchmarkInstance:
    """One row of Table 1: an original circuit and its derived variants."""

    name: str
    use_case: str  # "compiled" or "optimized"
    original: QuantumCircuit
    variants: Dict[str, QuantumCircuit] = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        return self.variants["equivalent"].num_qubits

    @property
    def size_original(self) -> int:
        return len(self.original)

    @property
    def size_variant(self) -> int:
        return len(self.variants["equivalent"])


def _with_error_variants(
    name: str,
    use_case: str,
    original: QuantumCircuit,
    derived: QuantumCircuit,
    seed: int,
) -> BenchmarkInstance:
    variants = {
        "equivalent": derived,
        "gate_missing": remove_random_gate(derived, seed=seed),
        "flipped_cnot": flip_random_cnot(derived, seed=seed),
    }
    return BenchmarkInstance(name, use_case, original, variants)


# ---------------------------------------------------------------------------
# use-case 1: compiled circuits
# ---------------------------------------------------------------------------
def compiled_benchmarks(
    scale: str = "small",
    device: Optional[CouplingMap] = None,
    seed: int = 0,
) -> List[BenchmarkInstance]:
    """The "Compiled Circuits" block of Table 1 at reproduction scale.

    ``scale="small"`` finishes in seconds (CI-friendly); ``scale="paper"``
    pushes sizes towards the paper's (still bounded by pure-Python speed).
    """
    if device is None:
        device = manhattan_architecture()
    generators: List[Callable[[], QuantumCircuit]] = []
    if scale == "small":
        generators = [
            lambda: algorithms.grover(4),
            lambda: algorithms.qft(6),
            lambda: algorithms.quantum_random_walk(3, steps=2),
            lambda: algorithms.qpe_exact(5),
            lambda: algorithms.ghz_state(16),
            lambda: algorithms.graph_state(12, seed=seed),
        ]
    elif scale == "paper":
        generators = [
            lambda: algorithms.grover(5),
            lambda: algorithms.grover(6),
            lambda: algorithms.qft(8),
            lambda: algorithms.qft(10),
            lambda: algorithms.quantum_random_walk(4, steps=3),
            lambda: algorithms.quantum_random_walk(5, steps=3),
            lambda: algorithms.qpe_exact(7),
            lambda: algorithms.ghz_state(65),
            lambda: algorithms.graph_state(62, seed=seed),
        ]
    else:
        raise ValueError(f"unknown scale {scale!r}")
    instances = []
    for generator in generators:
        original = generator()
        compiled = compile_circuit(original, device)
        instances.append(
            _with_error_variants(
                original.name, "compiled", original, compiled, seed
            )
        )
    return instances


# ---------------------------------------------------------------------------
# use-case 2: optimized circuits
# ---------------------------------------------------------------------------
def optimized_benchmarks(
    scale: str = "small", seed: int = 0
) -> List[BenchmarkInstance]:
    """The "Optimized Circuits" block of Table 1 at reproduction scale.

    Originals are high-level circuits (reversible MCT netlists stay MCT —
    the DD engine consumes multi-controlled gates natively, just like
    QCEC); the derived circuits are decomposed to the device basis and
    optimized, mirroring the original-vs-optimized comparison.
    """
    if scale == "small":
        sources: List[QuantumCircuit] = [
            reversible.synthesize(
                reversible.random_reversible_function(5, seed=seed + 1)
            ),
            reversible.synthesize(reversible.plus_constant_mod(6, 13)),
            reversible.synthesize(reversible.hidden_weighted_bit(5)),
            algorithms.grover(4),
            algorithms.qft(6),
            algorithms.quantum_random_walk(3, steps=2),
        ]
    elif scale == "paper":
        sources = [
            reversible.synthesize(
                reversible.random_reversible_function(7, seed=seed + 1)
            ),
            reversible.synthesize(reversible.plus_constant_mod(8, 63)),
            reversible.synthesize(reversible.hidden_weighted_bit(7)),
            algorithms.grover(5),
            algorithms.grover(6),
            algorithms.qft(8),
            algorithms.qft(10),
            algorithms.quantum_random_walk(4, steps=3),
        ]
    else:
        raise ValueError(f"unknown scale {scale!r}")
    instances = []
    for original in sources:
        lowered = decompose_to_basis(original)
        optimized = optimize_circuit(lowered, level=2)
        instances.append(
            _with_error_variants(
                original.name, "optimized", original, optimized, seed
            )
        )
    return instances
