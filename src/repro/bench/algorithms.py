"""Generators for the quantum-algorithm benchmarks of the case study.

These are the "selection of common quantum circuits" of Section 6.1:
GHZ state preparation, graph states, the Quantum Fourier Transform,
(exact) Quantum Phase Estimation, Grover's algorithm and the quantum
random walk — plus a few standard extras (W state, Bernstein-Vazirani,
a Cuccaro ripple-carry adder) used by the wider test and example suite.

All generators return plain :class:`~repro.circuit.circuit.QuantumCircuit`
objects at parameterizable sizes; the case-study harness instantiates them
at sizes scaled to pure-Python engine speed (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit

_PI = math.pi


def ghz_state(num_qubits: int, linear: bool = True) -> QuantumCircuit:
    """GHZ state preparation (paper Fig. 1a generalized).

    ``linear=True`` chains the CNOTs (``cx(i, i+1)``), which routes well;
    ``linear=False`` fans out from qubit 0 as in Fig. 1a.
    """
    if num_qubits < 1:
        raise ValueError("GHZ needs at least one qubit")
    circuit = QuantumCircuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for q in range(1, num_qubits):
        circuit.cx(q - 1 if linear else 0, q)
    return circuit


def graph_state(
    num_qubits: int,
    edges: Optional[Iterable[Tuple[int, int]]] = None,
    seed: Optional[int] = None,
    degree: int = 3,
) -> QuantumCircuit:
    """Graph-state preparation: H on every qubit, CZ per graph edge.

    Without explicit ``edges`` a random ``degree``-regular-ish graph is
    generated (a ring plus random chords), seeded for reproducibility.
    """
    circuit = QuantumCircuit(num_qubits, name=f"graphstate_{num_qubits}")
    for q in range(num_qubits):
        circuit.h(q)
    if edges is None:
        rng = random.Random(seed)
        edge_set = {(q, (q + 1) % num_qubits) for q in range(num_qubits)}
        target_edges = max(num_qubits, num_qubits * degree // 2)
        attempts = 0
        while len(edge_set) < target_edges and attempts < 10 * target_edges:
            a, b = rng.sample(range(num_qubits), 2)
            edge_set.add((min(a, b), max(a, b)))
            attempts += 1
        edges = sorted(
            (min(a, b), max(a, b)) for a, b in edge_set if a != b
        )
    for a, b in edges:
        circuit.cz(a, b)
    return circuit


def qft(num_qubits: int, with_swaps: bool = True) -> QuantumCircuit:
    """The Quantum Fourier Transform with controlled-phase cascades."""
    circuit = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for k, control in enumerate(reversed(range(target)), start=2):
            circuit.cp(2 * _PI / (1 << k), control, target)
    if with_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit


def inverse_qft(num_qubits: int, with_swaps: bool = True) -> QuantumCircuit:
    """The inverse QFT (used by phase estimation)."""
    circuit = qft(num_qubits, with_swaps).inverse()
    circuit.name = f"iqft_{num_qubits}"
    return circuit


def qpe_exact(
    precision_qubits: int, phase: Optional[float] = None
) -> QuantumCircuit:
    """Quantum Phase Estimation of a phase gate with an *exact* phase.

    The estimated phase has an exact ``precision_qubits``-bit binary
    expansion (default ``1 / 2^n + 1 / 2``), so the counting register ends
    in a computational basis state — the QPE-Exact configuration of the
    paper's Table 1.  The eigenstate qubit is the last one, prepared in
    ``|1>``.
    """
    n = precision_qubits
    if phase is None:
        phase = 0.5 + 1.0 / (1 << n)
    circuit = QuantumCircuit(n + 1, name=f"qpe_exact_{n}")
    eigen = n
    circuit.x(eigen)
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        # counting qubit q controls U^(2^q) with U = P(2 pi phase)
        circuit.cp(2 * _PI * phase * (1 << q), q, eigen)
    for op in inverse_qft(n):
        circuit.append(op)  # acts on the counting register 0..n-1
    return circuit


def grover(
    search_qubits: int,
    marked: Optional[int] = None,
    iterations: Optional[int] = None,
) -> QuantumCircuit:
    """Grover's search with a phase oracle marking one basis state.

    The oracle is a multi-controlled Z on the bit pattern of ``marked``
    (default: the all-ones state); the diffusion operator is the standard
    ``H X (MCZ) X H`` construction — both are the "large reversible parts"
    the paper credits for the DD advantage on Grover instances.
    """
    n = search_qubits
    if marked is None:
        marked = (1 << n) - 1
    if not 0 <= marked < (1 << n):
        raise ValueError("marked state out of range")
    if iterations is None:
        iterations = max(1, int(round(_PI / 4 * math.sqrt(2**n))))
    circuit = QuantumCircuit(n, name=f"grover_{n}")
    for q in range(n):
        circuit.h(q)
    for _ in range(iterations):
        _append_phase_oracle(circuit, n, marked)
        # diffusion
        for q in range(n):
            circuit.h(q)
        for q in range(n):
            circuit.x(q)
        circuit.mcz(list(range(n - 1)), n - 1)
        for q in range(n):
            circuit.x(q)
        for q in range(n):
            circuit.h(q)
    return circuit


def _append_phase_oracle(
    circuit: QuantumCircuit, n: int, marked: int
) -> None:
    """Phase-flip the basis state ``marked`` via X-conjugated MCZ."""
    zeros = [q for q in range(n) if not (marked >> q) & 1]
    for q in zeros:
        circuit.x(q)
    circuit.mcz(list(range(n - 1)), n - 1)
    for q in zeros:
        circuit.x(q)


def quantum_random_walk(
    position_qubits: int, steps: int = 4
) -> QuantumCircuit:
    """Discrete-time quantum random walk on a cycle of ``2^p`` nodes.

    One coin qubit (index ``p``) drives controlled increment / decrement
    cascades of multi-controlled Toffolis on the position register — the
    circuit family of the paper's Random-Walk rows, dominated by large
    reversible parts.
    """
    p = position_qubits
    coin = p
    circuit = QuantumCircuit(p + 1, name=f"randomwalk_{p}_{steps}")
    for _ in range(steps):
        circuit.h(coin)
        # coin = 1: increment position
        for bit in reversed(range(1, p)):
            circuit.mcx([coin] + list(range(bit)), bit)
        circuit.cx(coin, 0)
        # coin = 0: decrement position (conjugate increment with X's)
        circuit.x(coin)
        for q in range(p):
            circuit.x(q)
        for bit in reversed(range(1, p)):
            circuit.mcx([coin] + list(range(bit)), bit)
        circuit.cx(coin, 0)
        for q in range(p):
            circuit.x(q)
        circuit.x(coin)
    return circuit


def w_state(num_qubits: int) -> QuantumCircuit:
    """W-state preparation via cascaded controlled rotations."""
    n = num_qubits
    if n < 1:
        raise ValueError("W state needs at least one qubit")
    circuit = QuantumCircuit(n, name=f"w_{n}")
    circuit.x(0)
    for k in range(1, n):
        theta = 2 * math.acos(math.sqrt(1.0 / (n - k + 1)))
        circuit.cry(theta, 0 if k == 1 else k - 1, k)
        circuit.cx(k, k - 1)
    return circuit


def bernstein_vazirani(secret: int, num_qubits: int) -> QuantumCircuit:
    """Bernstein-Vazirani for an ``num_qubits``-bit secret string."""
    if not 0 <= secret < (1 << num_qubits):
        raise ValueError("secret out of range")
    circuit = QuantumCircuit(num_qubits + 1, name=f"bv_{num_qubits}")
    target = num_qubits
    circuit.x(target)
    circuit.h(target)
    for q in range(num_qubits):
        circuit.h(q)
    for q in range(num_qubits):
        if (secret >> q) & 1:
            circuit.cx(q, target)
    for q in range(num_qubits):
        circuit.h(q)
    circuit.h(target)
    circuit.x(target)
    return circuit


def cuccaro_adder(bits: int) -> QuantumCircuit:
    """Cuccaro ripple-carry adder: ``|a>|b> -> |a>|a+b>`` (mod ``2^bits``).

    Layout: qubits ``0..bits-1`` hold ``a``, ``bits..2*bits-1`` hold ``b``,
    and the last qubit is the carry ancilla.  A classic "oracle/adder"
    reversible building block (paper Section 7 names adders explicitly).
    """
    n = bits
    a = list(range(n))
    b = list(range(n, 2 * n))
    carry = 2 * n
    circuit = QuantumCircuit(2 * n + 1, name=f"adder_{n}")

    def maj(x, y, z):
        circuit.cx(z, y)
        circuit.cx(z, x)
        circuit.ccx(x, y, z)

    def uma(x, y, z):
        circuit.ccx(x, y, z)
        circuit.cx(z, x)
        circuit.cx(x, y)

    maj(carry, b[0], a[0])
    for i in range(1, n):
        maj(a[i - 1], b[i], a[i])
    for i in reversed(range(1, n)):
        uma(a[i - 1], b[i], a[i])
    uma(carry, b[0], a[0])
    return circuit


def deutsch_jozsa(
    num_qubits: int, balanced: bool = True, seed: Optional[int] = None
) -> QuantumCircuit:
    """Deutsch-Jozsa with a constant or (random linear) balanced oracle.

    The balanced oracle is a random parity function ``f(x) = a.x`` with
    ``a != 0``; the constant oracle is ``f(x) = 0``.
    """
    circuit = QuantumCircuit(
        num_qubits + 1,
        name=f"dj_{'balanced' if balanced else 'constant'}_{num_qubits}",
    )
    target = num_qubits
    circuit.x(target)
    circuit.h(target)
    for q in range(num_qubits):
        circuit.h(q)
    if balanced:
        rng = random.Random(seed)
        mask = rng.randrange(1, 1 << num_qubits)
        for q in range(num_qubits):
            if (mask >> q) & 1:
                circuit.cx(q, target)
    for q in range(num_qubits):
        circuit.h(q)
    circuit.h(target)
    circuit.x(target)
    return circuit


def simon(secret: int, num_bits: int) -> QuantumCircuit:
    """One Simon iteration for a hidden XOR mask ``secret != 0``.

    Uses ``2 * num_bits`` qubits: the data register (0..n-1) and the
    function register (n..2n-1) computing ``f(x) = x XOR (x_k ? secret : 0)``
    with ``k`` the lowest set bit of ``secret`` — a standard two-to-one
    function with period ``secret``.
    """
    if not 0 < secret < (1 << num_bits):
        raise ValueError("secret must be a non-zero n-bit value")
    n = num_bits
    circuit = QuantumCircuit(2 * n, name=f"simon_{num_bits}")
    for q in range(n):
        circuit.h(q)
    # copy x into the function register
    for q in range(n):
        circuit.cx(q, n + q)
    # conditionally XOR the secret, controlled on the pivot bit
    pivot = (secret & -secret).bit_length() - 1
    for q in range(n):
        if (secret >> q) & 1:
            circuit.cx(pivot, n + q)
    for q in range(n):
        circuit.h(q)
    return circuit


def vqe_ansatz(
    num_qubits: int, layers: int = 2, seed: Optional[int] = None
) -> QuantumCircuit:
    """A hardware-efficient variational ansatz (RY/RZ + CX ladder).

    The variational-algorithm workload the paper's introduction motivates
    ("optimization problems, the simulation of molecules"): many arbitrary
    rotation angles, little reversible structure — the circuit family
    where the DD representation suffers and ZX shines (Section 6.2).
    """
    rng = random.Random(seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"vqe_{num_qubits}_{layers}"
    )
    for _ in range(layers):
        for q in range(num_qubits):
            circuit.ry(rng.uniform(0, 2 * _PI), q)
            circuit.rz(rng.uniform(0, 2 * _PI), q)
        for q in range(num_qubits - 1):
            circuit.cx(q, q + 1)
    for q in range(num_qubits):
        circuit.ry(rng.uniform(0, 2 * _PI), q)
    return circuit


def random_clifford_t(
    num_qubits: int,
    num_gates: int,
    t_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """Random Clifford+T circuit with a controlled T-gate density.

    The knob behind the paper's observation that the number of
    non-Clifford phases decides which paradigm profits: sweep
    ``t_fraction`` to interpolate between pure Clifford (fully reducible
    by the ZX Clifford ruleset) and T-heavy circuits.
    """
    rng = random.Random(seed)
    circuit = QuantumCircuit(
        num_qubits, name=f"cliffordt_{num_qubits}_{num_gates}"
    )
    clifford_gates = ["h", "s", "sdg", "x", "z", "cx", "cz"]
    for _ in range(num_gates):
        if rng.random() < t_fraction:
            circuit.add(rng.choice(["t", "tdg"]), [rng.randrange(num_qubits)])
        else:
            name = rng.choice(clifford_gates)
            if name in ("cx", "cz") and num_qubits >= 2:
                a, b = rng.sample(range(num_qubits), 2)
                getattr(circuit, name)(a, b)
            elif name not in ("cx", "cz"):
                circuit.add(name, [rng.randrange(num_qubits)])
    return circuit
