"""Benchmarks and the case-study harness.

* :mod:`repro.bench.algorithms` — the quantum-algorithm circuits of the
  paper's Table 1 (GHZ, graph states, QFT, QPE, Grover, quantum random
  walk) plus supporting generators,
* :mod:`repro.bench.reversible` — the RevLib-style reversible-circuit
  substrate: truth-table functions synthesized to multi-controlled-Toffoli
  netlists via transformation-based synthesis,
* :mod:`repro.bench.errors` — the error-injection models ("one with a
  random gate removed and one where the control and target of one CNOT
  gate has been swapped"),
* :mod:`repro.bench.suite` — benchmark-instance construction for both
  use-cases (compiled / optimized),
* :mod:`repro.bench.study` — the harness regenerating Table 1.
"""

from repro.bench.algorithms import (
    bernstein_vazirani,
    cuccaro_adder,
    deutsch_jozsa,
    ghz_state,
    graph_state,
    grover,
    qft,
    qpe_exact,
    quantum_random_walk,
    random_clifford_t,
    simon,
    vqe_ansatz,
    w_state,
)
from repro.bench.artifacts import export_benchmarks, load_benchmark_pair
from repro.bench.reversible import (
    ReversibleFunction,
    hidden_weighted_bit,
    plus_constant_mod,
    random_reversible_function,
    synthesize,
)
from repro.bench.errors import flip_random_cnot, remove_random_gate

__all__ = [
    "ReversibleFunction",
    "bernstein_vazirani",
    "cuccaro_adder",
    "deutsch_jozsa",
    "export_benchmarks",
    "load_benchmark_pair",
    "random_clifford_t",
    "simon",
    "vqe_ansatz",
    "flip_random_cnot",
    "ghz_state",
    "graph_state",
    "grover",
    "hidden_weighted_bit",
    "plus_constant_mod",
    "qft",
    "qpe_exact",
    "quantum_random_walk",
    "random_reversible_function",
    "remove_random_gate",
    "synthesize",
    "w_state",
]
