"""RevLib-style reversible-circuit substrate.

The paper's first benchmark group is "a benchmark set of reversible
circuits (from [RevLib])" — large multi-controlled-Toffoli netlists with a
known Boolean function.  RevLib is an external artifact archive, so this
module rebuilds the same *function classes* from scratch:

* :class:`ReversibleFunction` — a permutation of ``{0,1}^n`` as truth
  table,
* :func:`synthesize` — the classic transformation-based synthesis
  algorithm of Miller, Maslov & Dueck (DAC 2003), producing an MCT circuit
  realizing any given reversible function,
* generators for the Table 1 stand-ins: ``urf``-like unstructured random
  reversible functions, ``plusKmod2^n`` modular-constant adders and the
  hidden-weighted-bit function.

The synthesized circuits play the "original circuit" role of the paper's
optimized-circuits use-case; their optimized counterparts come from
:func:`repro.compile.optimize.optimize_circuit`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation


class ReversibleFunction:
    """A bijection on ``{0, ..., 2^n - 1}`` given as a truth table."""

    def __init__(self, num_bits: int, table: Sequence[int], name: str = "rev") -> None:
        size = 1 << num_bits
        if len(table) != size or sorted(table) != list(range(size)):
            raise ValueError("table is not a permutation of {0..2^n-1}")
        self.num_bits = num_bits
        self.table = list(table)
        self.name = name

    def __call__(self, value: int) -> int:
        return self.table[value]

    def inverse(self) -> "ReversibleFunction":
        inverse_table = [0] * len(self.table)
        for source, image in enumerate(self.table):
            inverse_table[image] = source
        return ReversibleFunction(
            self.num_bits, inverse_table, f"{self.name}_inv"
        )

    @classmethod
    def from_callable(cls, num_bits: int, function, name: str = "rev") -> "ReversibleFunction":
        """Build a truth table from a Python callable on integers."""
        return cls(num_bits, [function(x) for x in range(1 << num_bits)], name)


def synthesize(function: ReversibleFunction) -> QuantumCircuit:
    """Transformation-based synthesis (Miller-Maslov-Dueck, DAC 2003).

    Scans inputs in increasing order and appends multi-controlled Toffolis
    that map each output back to its input without disturbing already-fixed
    rows; the collected gates, reversed, realize the function.  Produces
    ``O(n 2^n)`` MCT gates — the same netlist flavour as the RevLib ``urf``
    benchmarks.
    """
    n = function.num_bits
    outputs = list(function.table)
    gates: List[Operation] = []

    def apply_mct(controls: int, target_bit: int) -> None:
        """Record an MCT and apply it to the in-progress output table."""
        control_bits = tuple(b for b in range(n) if (controls >> b) & 1)
        gates.append(
            Operation("x", (target_bit,), control_bits)
        )
        mask = 1 << target_bit
        for index, value in enumerate(outputs):
            if value & controls == controls:
                outputs[index] = value ^ mask

    # Fix f(0) = 0 with uncontrolled NOTs.
    for bit in range(n):
        if (outputs[0] >> bit) & 1:
            apply_mct(0, bit)
    for i in range(1, 1 << n):
        y = outputs[i]
        if y == i:
            continue
        # Turn on bits of i missing in y; controls on the 1-bits of y keep
        # all already-fixed rows j < i <= y untouched.
        missing = i & ~y
        for bit in range(n):
            if (missing >> bit) & 1:
                apply_mct(outputs[i], bit)
        # Turn off surplus bits of y; controls on the 1-bits of i.
        surplus = outputs[i] & ~i
        for bit in range(n):
            if (surplus >> bit) & 1:
                apply_mct(i, bit)
        assert outputs[i] == i
    circuit = QuantumCircuit(n, name=f"{function.name}_{n}")
    for gate in reversed(gates):
        circuit.append(gate)
    return circuit


def circuit_truth_table(circuit: QuantumCircuit) -> List[int]:
    """Evaluate an MCT-only circuit classically on every basis state."""
    n = circuit.num_qubits
    table = []
    for value in range(1 << n):
        state = value
        for op in circuit:
            if op.name != "x" or len(op.targets) != 1:
                raise ValueError("circuit contains non-MCT gates")
            if all((state >> c) & 1 for c in op.controls):
                state ^= 1 << op.targets[0]
        table.append(state)
    return table


# ---------------------------------------------------------------------------
# benchmark function families
# ---------------------------------------------------------------------------
def random_reversible_function(
    num_bits: int, seed: Optional[int] = None
) -> ReversibleFunction:
    """An unstructured random reversible function — the ``urf`` stand-in."""
    rng = random.Random(seed)
    table = list(range(1 << num_bits))
    rng.shuffle(table)
    return ReversibleFunction(num_bits, table, name=f"urf_s{seed}")


def plus_constant_mod(num_bits: int, constant: int) -> ReversibleFunction:
    """``x -> (x + constant) mod 2^n`` — the ``plus63mod4096`` stand-in."""
    size = 1 << num_bits
    constant %= size
    return ReversibleFunction(
        num_bits,
        [(x + constant) % size for x in range(size)],
        name=f"plus{constant}mod{size}",
    )


def hidden_weighted_bit(num_bits: int) -> ReversibleFunction:
    """The hidden-weighted-bit function: rotate the input by its weight.

    A classic hard benchmark for decision diagrams (our ``example2``-class
    stand-in: a structured but non-trivial arithmetic-style function).
    """
    n = num_bits

    def rotate(x: int) -> int:
        weight = bin(x).count("1")
        shift = weight % n if n else 0
        return ((x >> shift) | (x << (n - shift))) & ((1 << n) - 1) if shift else x

    return ReversibleFunction.from_callable(n, rotate, name=f"hwb{n}")


def plus_constant_adder_circuit(num_bits: int, constant: int) -> QuantumCircuit:
    """Direct (synthesis-free) constant adder built from MCT increments.

    Adding ``2^k`` is an increment cascade on the top ``n - k`` bits; the
    full constant is the composition over its set bits.  This yields the
    structurally regular variant of :func:`plus_constant_mod` (both compute
    the same function — a fact the test suite checks via truth tables).
    """
    n = num_bits
    circuit = QuantumCircuit(
        n, name=f"plus{constant % (1 << n)}mod{1 << n}_ripple"
    )
    for k in range(n):
        if not (constant >> k) & 1:
            continue
        # increment on bits k..n-1
        for target in reversed(range(k + 1, n)):
            circuit.mcx(list(range(k, target)), target)
        circuit.x(k)
    return circuit
