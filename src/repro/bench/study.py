"""The case-study harness: regenerate the paper's Table 1.

For every benchmark instance and every configuration (equivalent / one
gate missing / flipped CNOT) the harness runs both checkers —

* ``t_dd``: the combined DD strategy (alternating scheme + 16 random
  simulations), standing in for QCEC,
* ``t_zx``: the ZX ``full_reduce`` strategy, standing in for PyZX —

under a hard per-run timeout, and prints the same row layout as the
paper's Table 1.  Runtimes are not comparable in absolute terms (pure
Python vs. optimized C++/compiled Python on the authors' machine); the
reproduced signal is the *relative* behaviour across benchmark families
and configurations (see EXPERIMENTS.md).

Run it as a module::

    python -m repro.bench.study --use-case compiled --scale small
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.suite import (
    BenchmarkInstance,
    CONFIGURATIONS,
    compiled_benchmarks,
    optimized_benchmarks,
)
from repro.ec.configuration import Configuration
from repro.ec.manager import EquivalenceCheckingManager
from repro.ec.results import Equivalence

#: Expected verdict polarity per configuration.
_EXPECTED = {
    "equivalent": True,
    "gate_missing": False,
    "flipped_cnot": False,
}


@dataclass
class CellResult:
    """One method on one instance/configuration."""

    seconds: float
    verdict: Equivalence
    timed_out: bool
    correct: Optional[bool]  # None when the method yields no information

    def render(self, timeout: Optional[float]) -> str:
        if self.timed_out:
            return f">{timeout:g}"
        mark = ""
        if self.correct is False:
            mark = "!"
        elif self.correct is None:
            mark = "?"
        return f"{self.seconds:.2f}{mark}"


@dataclass
class TableRow:
    """One benchmark row of Table 1."""

    name: str
    use_case: str
    num_qubits: int
    size_original: int
    size_variant: int
    cells: Dict[str, CellResult]  # keyed by f"{config}/{method}"


def _judge(verdict: Equivalence, expect_equivalent: bool) -> Optional[bool]:
    if verdict in (Equivalence.NO_INFORMATION, Equivalence.TIMEOUT):
        return None
    positive = verdict in (
        Equivalence.EQUIVALENT,
        Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        Equivalence.PROBABLY_EQUIVALENT,
    )
    return positive == expect_equivalent


def run_instance(
    instance: BenchmarkInstance,
    timeout: Optional[float] = 60.0,
    seed: int = 0,
) -> TableRow:
    """Run both methods on all three configurations of one instance."""
    cells: Dict[str, CellResult] = {}
    for config_name in CONFIGURATIONS:
        variant = instance.variants[config_name]
        for method, strategy in (("dd", "combined"), ("zx", "zx")):
            configuration = Configuration(
                strategy=strategy, timeout=timeout, seed=seed
            )
            manager = EquivalenceCheckingManager(
                instance.original, variant, configuration
            )
            start = time.monotonic()
            result = manager.run()
            elapsed = time.monotonic() - start
            timed_out = result.equivalence is Equivalence.TIMEOUT
            cells[f"{config_name}/{method}"] = CellResult(
                elapsed,
                result.equivalence,
                timed_out,
                _judge(result.equivalence, _EXPECTED[config_name]),
            )
    return TableRow(
        instance.name,
        instance.use_case,
        instance.num_qubits,
        instance.size_original,
        instance.size_variant,
        cells,
    )


def run_table(
    use_case: str = "compiled",
    scale: str = "small",
    timeout: Optional[float] = 60.0,
    seed: int = 0,
    verbose: bool = True,
) -> List[TableRow]:
    """Build the benchmark suite and run the full table."""
    if use_case == "compiled":
        instances = compiled_benchmarks(scale=scale, seed=seed)
    elif use_case == "optimized":
        instances = optimized_benchmarks(scale=scale, seed=seed)
    else:
        raise ValueError(f"unknown use case {use_case!r}")
    rows = []
    for instance in instances:
        row = run_instance(instance, timeout=timeout, seed=seed)
        rows.append(row)
        if verbose:
            print(format_row(row, timeout), flush=True)
    return rows


_HEADER = (
    f"{'Benchmark':24} {'n':>3} {'|G|':>7} {'|G`|':>7} "
    f"{'Equivalent':>15} {'1 Gate Missing':>15} {'Flipped CNOT':>15}"
)
_SUBHEADER = (
    f"{'':24} {'':>3} {'':>7} {'':>7} "
    f"{'t_dd':>7} {'t_zx':>7} {'t_dd':>7} {'t_zx':>7} {'t_dd':>7} {'t_zx':>7}"
)


def format_row(row: TableRow, timeout: Optional[float]) -> str:
    cells = []
    for config_name in CONFIGURATIONS:
        for method in ("dd", "zx"):
            cells.append(
                f"{row.cells[f'{config_name}/{method}'].render(timeout):>7}"
            )
    return (
        f"{row.name:24} {row.num_qubits:>3} {row.size_original:>7} "
        f"{row.size_variant:>7} " + " ".join(cells)
    )


def print_table(rows: List[TableRow], timeout: Optional[float]) -> None:
    print(_HEADER)
    print(_SUBHEADER)
    for row in rows:
        print(format_row(row, timeout))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the case study's Table 1."
    )
    parser.add_argument(
        "--use-case",
        choices=("compiled", "optimized", "both"),
        default="both",
    )
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="additionally write the results as a Markdown report",
    )
    args = parser.parse_args(argv)

    use_cases = (
        ["compiled", "optimized"] if args.use_case == "both" else [args.use_case]
    )
    rows_by_use_case = {}
    for use_case in use_cases:
        print(f"\n=== {use_case.capitalize()} Circuits ===")
        print(_HEADER)
        print(_SUBHEADER)
        rows_by_use_case[use_case] = run_table(
            use_case=use_case,
            scale=args.scale,
            timeout=args.timeout,
            seed=args.seed,
            verbose=True,
        )
    if args.report:
        from repro.bench.report import write_report

        path = write_report(
            args.report,
            rows_by_use_case,
            args.timeout,
            preamble=(
                f"# Case-study run (scale={args.scale}, "
                f"timeout={args.timeout:g}s, seed={args.seed})"
            ),
        )
        print(f"\nreport written to {path}")
    print(
        "\nCells: seconds per check; '>T' timeout, '!' wrong verdict, "
        "'?' no information (ZX cannot prove non-equivalence)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
