"""The case-study harness: regenerate the paper's Table 1.

For every benchmark instance and every configuration (equivalent / one
gate missing / flipped CNOT) the harness runs both checkers —

* ``t_dd``: the combined DD strategy (alternating scheme + 16 random
  simulations), standing in for QCEC,
* ``t_zx``: the ZX ``full_reduce`` strategy, standing in for PyZX —

under a hard per-run timeout, and prints the same row layout as the
paper's Table 1.  Runtimes are not comparable in absolute terms (pure
Python vs. optimized C++/compiled Python on the authors' machine); the
reproduced signal is the *relative* behaviour across benchmark families
and configurations (see EXPERIMENTS.md).

Robustness (see docs/architecture.md, "Robustness architecture"):
``--isolate`` runs every cell in a sandboxed subprocess with a hard
SIGKILL timeout and optional ``--memory-limit``, so a non-cooperative
hang, memory balloon or crash in one cell cannot take down the batch;
``--journal PATH`` checkpoints every completed cell to a JSONL file and
``--resume`` restarts an interrupted run from the last completed cell.

Run it as a module::

    python -m repro.bench.study --use-case compiled --scale small \
        --isolate --journal table1.jsonl

    # after a crash / kill:
    python -m repro.bench.study --use-case compiled --scale small \
        --isolate --journal table1.jsonl --resume
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.suite import (
    BenchmarkInstance,
    CONFIGURATIONS,
    compiled_benchmarks,
    optimized_benchmarks,
)
from repro.ec.configuration import Configuration
from repro.ec.manager import EquivalenceCheckingManager
from repro.ec.results import Equivalence
from repro.harness.journal import Journal

#: Expected verdict polarity per configuration.
_EXPECTED = {
    "equivalent": True,
    "gate_missing": False,
    "flipped_cnot": False,
}

#: Compact cell codes for degraded (non-timeout) failures.
_FAILURE_CODES = {
    "out_of_memory": "oom",
    "crashed": "crash",
    "worker_lost": "lost",
    "invalid_input": "inval",
    "check_error": "err",
}


@dataclass
class CellResult:
    """One method on one instance/configuration.

    ``timed_out`` is a ``TIMEOUT`` verdict; ``overrun`` flags the silent
    variant — the check *returned* a verdict but its wall time exceeded
    the budget (a cooperative deadline that fired late, or isolation
    overhead).  Both render as ``>T``: a cell that blew its budget must
    never masquerade as a normal runtime.  ``failure`` is the
    :mod:`repro.errors` taxonomy kind for degraded cells, ``cached``
    marks cells restored from a resume journal.  Portfolio cells
    additionally carry the winning lane name (``winner``) and the
    per-lane kill codes of the losers (``kills``) so a journaled study
    records *which* paradigm decided every cell and what happened to
    the rest of the race.
    """

    seconds: float
    verdict: Equivalence
    timed_out: bool
    correct: Optional[bool]  # None when the method yields no information
    overrun: bool = False
    failure: Optional[str] = None
    cached: bool = False
    winner: Optional[str] = None
    kills: Optional[Dict[str, str]] = None

    def render(self, timeout: Optional[float]) -> str:
        if self.timed_out or self.overrun:
            return f">{timeout:g}" if timeout is not None else "hung"
        if self.failure is not None:
            return _FAILURE_CODES.get(self.failure, "err")
        mark = ""
        if self.correct is False:
            mark = "!"
        elif self.correct is None:
            mark = "?"
        return f"{self.seconds:.2f}{mark}"

    def to_record(self) -> Dict[str, object]:
        """JSONL journal payload for this cell."""
        record: Dict[str, object] = {
            "seconds": self.seconds,
            "verdict": self.verdict.value,
            "timed_out": self.timed_out,
            "correct": self.correct,
            "overrun": self.overrun,
            "failure": self.failure,
        }
        if self.winner is not None:
            record["winner"] = self.winner
        if self.kills:
            record["kills"] = dict(self.kills)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "CellResult":
        """Rebuild a cell checkpointed with :meth:`to_record`."""
        correct = record.get("correct")
        failure = record.get("failure")
        winner = record.get("winner")
        kills = record.get("kills")
        return cls(
            float(record.get("seconds", 0.0)),
            Equivalence(record["verdict"]),
            bool(record.get("timed_out")),
            None if correct is None else bool(correct),
            overrun=bool(record.get("overrun")),
            failure=None if failure is None else str(failure),
            cached=True,
            winner=None if winner is None else str(winner),
            kills=None if not isinstance(kills, dict) else {
                str(k): str(v) for k, v in kills.items()
            },
        )


@dataclass
class TableRow:
    """One benchmark row of Table 1."""

    name: str
    use_case: str
    num_qubits: int
    size_original: int
    size_variant: int
    cells: Dict[str, CellResult]  # keyed by f"{config}/{method}"


def _judge(verdict: Equivalence, expect_equivalent: bool) -> Optional[bool]:
    if verdict in (Equivalence.NO_INFORMATION, Equivalence.TIMEOUT):
        return None
    positive = verdict in (
        Equivalence.EQUIVALENT,
        Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE,
        Equivalence.PROBABLY_EQUIVALENT,
    )
    return positive == expect_equivalent


def _cell_key(instance: BenchmarkInstance, config_name: str, method: str) -> str:
    """Stable journal key of one Table-1 cell."""
    return f"{instance.use_case}:{instance.name}:{config_name}:{method}"


def run_instance(
    instance: BenchmarkInstance,
    timeout: Optional[float] = 60.0,
    seed: int = 0,
    *,
    isolate: bool = False,
    memory_limit_mb: Optional[int] = None,
    retries: int = 1,
    journal: Optional[Journal] = None,
    portfolio: bool = False,
) -> TableRow:
    """Run both methods on all three configurations of one instance.

    With ``isolate`` every cell runs in a sandboxed subprocess via
    :func:`repro.harness.run_check` (hard SIGKILL timeout, optional
    address-space limit, transient-failure retries); otherwise the check
    runs in-process under the manager's graceful-degradation path.
    Either way a failing cell yields a degraded :class:`CellResult`, and
    the remaining cells still run.  With ``journal``, completed cells
    are checkpointed immediately and previously journaled cells are
    restored instead of re-run.  With ``portfolio`` the ``t_dd`` cells
    race all applicable strategies concurrently (the ``t_zx`` column is
    unchanged — it remains the standalone PyZX stand-in).
    """
    cells: Dict[str, CellResult] = {}
    for config_name in CONFIGURATIONS:
        variant = instance.variants[config_name]
        for method, strategy in (("dd", "combined"), ("zx", "zx")):
            key = _cell_key(instance, config_name, method)
            if journal is not None:
                record = journal.get(key)
                if record is not None:
                    cells[f"{config_name}/{method}"] = CellResult.from_record(
                        record
                    )
                    continue
            configuration = Configuration(
                strategy=strategy,
                portfolio=portfolio and strategy == "combined",
                timeout=timeout,
                seed=seed,
                memory_limit_mb=memory_limit_mb,
                max_retries=retries,
            )
            start = time.monotonic()
            if isolate:
                from repro.harness import run_check

                result = run_check(
                    instance.original, variant, configuration, isolate=True
                )
            else:
                result = EquivalenceCheckingManager(
                    instance.original, variant, configuration
                ).run()
            elapsed = time.monotonic() - start
            timed_out = result.equivalence is Equivalence.TIMEOUT
            # A check that cooperatively missed its deadline (or burned
            # the budget in isolation overhead) must not render as a
            # normal runtime: flag any wall time beyond the budget.
            overrun = (
                not timed_out
                and timeout is not None
                and elapsed > timeout
            )
            failure = result.failure
            from repro.ec.portfolio import loser_kill_codes, portfolio_winner

            kills = loser_kill_codes(result)
            cell = CellResult(
                elapsed,
                result.equivalence,
                timed_out,
                _judge(result.equivalence, _EXPECTED[config_name]),
                overrun=overrun,
                failure=None if failure is None else str(failure.get("kind")),
                winner=portfolio_winner(result),
                kills=kills or None,
            )
            cells[f"{config_name}/{method}"] = cell
            if journal is not None:
                journal.record(key, cell.to_record())
    return TableRow(
        instance.name,
        instance.use_case,
        instance.num_qubits,
        instance.size_original,
        instance.size_variant,
        cells,
    )


def run_table(
    use_case: str = "compiled",
    scale: str = "small",
    timeout: Optional[float] = 60.0,
    seed: int = 0,
    verbose: bool = True,
    *,
    isolate: bool = False,
    memory_limit_mb: Optional[int] = None,
    retries: int = 1,
    journal: Optional[Journal] = None,
    portfolio: bool = False,
) -> List[TableRow]:
    """Build the benchmark suite and run the full table.

    ``journal`` (a :class:`repro.harness.Journal`) makes the run
    resumable: completed cells are checkpointed as JSONL and restored
    instead of re-run when the journal already holds them.
    """
    if use_case == "compiled":
        instances = compiled_benchmarks(scale=scale, seed=seed)
    elif use_case == "optimized":
        instances = optimized_benchmarks(scale=scale, seed=seed)
    else:
        raise ValueError(f"unknown use case {use_case!r}")
    rows = []
    for instance in instances:
        row = run_instance(
            instance,
            timeout=timeout,
            seed=seed,
            isolate=isolate,
            memory_limit_mb=memory_limit_mb,
            retries=retries,
            journal=journal,
            portfolio=portfolio,
        )
        rows.append(row)
        if verbose:
            print(format_row(row, timeout), flush=True)
    return rows


_HEADER = (
    f"{'Benchmark':24} {'n':>3} {'|G|':>7} {'|G`|':>7} "
    f"{'Equivalent':>15} {'1 Gate Missing':>15} {'Flipped CNOT':>15}"
)
_SUBHEADER = (
    f"{'':24} {'':>3} {'':>7} {'':>7} "
    f"{'t_dd':>7} {'t_zx':>7} {'t_dd':>7} {'t_zx':>7} {'t_dd':>7} {'t_zx':>7}"
)


def format_row(row: TableRow, timeout: Optional[float]) -> str:
    cells = []
    for config_name in CONFIGURATIONS:
        for method in ("dd", "zx"):
            cells.append(
                f"{row.cells[f'{config_name}/{method}'].render(timeout):>7}"
            )
    return (
        f"{row.name:24} {row.num_qubits:>3} {row.size_original:>7} "
        f"{row.size_variant:>7} " + " ".join(cells)
    )


def print_table(rows: List[TableRow], timeout: Optional[float]) -> None:
    print(_HEADER)
    print(_SUBHEADER)
    for row in rows:
        print(format_row(row, timeout))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the case study's Table 1."
    )
    parser.add_argument(
        "--use-case",
        choices=("compiled", "optimized", "both"),
        default="both",
    )
    parser.add_argument("--scale", choices=("small", "paper"), default="small")
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="additionally write the results as a Markdown report",
    )
    parser.add_argument(
        "--portfolio", action="store_true",
        help="run the t_dd cells as a concurrent strategy portfolio: "
        "race sandboxed checkers, first sound verdict wins",
    )
    parser.add_argument(
        "--isolate", action="store_true",
        help="run every cell in a sandboxed subprocess with a hard "
        "(SIGKILL) timeout, so hangs/crashes cannot take down the run",
    )
    parser.add_argument(
        "--memory-limit", type=int, default=None, metavar="MB",
        help="address-space headroom per isolated cell, in MiB",
    )
    parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="bounded retries of transient (crash/worker-lost) failures",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint every completed cell to a JSONL journal",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore completed cells from --journal instead of re-running",
    )
    args = parser.parse_args(argv)
    if args.resume and not args.journal:
        parser.error("--resume requires --journal PATH")

    journal = None
    if args.journal:
        journal = Journal(
            args.journal,
            metadata={
                "use_case": args.use_case,
                "scale": args.scale,
                "timeout": args.timeout,
                "seed": args.seed,
                # A sequential journal must not silently resume a
                # portfolio run (and vice versa): the flag participates
                # in the Journal's metadata-mismatch rejection.
                "portfolio": args.portfolio,
            },
            resume=args.resume,
        )
        if args.resume and len(journal):
            print(f"resuming: {len(journal)} cells restored from {args.journal}")

    use_cases = (
        ["compiled", "optimized"] if args.use_case == "both" else [args.use_case]
    )
    rows_by_use_case = {}
    try:
        for use_case in use_cases:
            print(f"\n=== {use_case.capitalize()} Circuits ===")
            print(_HEADER)
            print(_SUBHEADER)
            rows_by_use_case[use_case] = run_table(
                use_case=use_case,
                scale=args.scale,
                timeout=args.timeout,
                seed=args.seed,
                verbose=True,
                isolate=args.isolate,
                memory_limit_mb=args.memory_limit,
                retries=args.retries,
                journal=journal,
                portfolio=args.portfolio,
            )
    finally:
        if journal is not None:
            journal.close()
    if args.report:
        from repro.bench.report import write_report

        path = write_report(
            args.report,
            rows_by_use_case,
            args.timeout,
            preamble=(
                f"# Case-study run (scale={args.scale}, "
                f"timeout={args.timeout:g}s, seed={args.seed})"
            ),
        )
        print(f"\nreport written to {path}")
    print(
        "\nCells: seconds per check; '>T' timeout or budget overrun, "
        "'!' wrong verdict, '?' no information (ZX cannot prove "
        "non-equivalence); 'oom'/'crash'/'lost'/'inval' degraded failures."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
