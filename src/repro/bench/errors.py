"""Error injection for the non-equivalent benchmark configurations.

Section 6.1: "two instances are created where errors are injected into one
of the circuits — one with a random gate removed and one where the control
and target of one CNOT gate has been swapped."
"""

from __future__ import annotations

import random
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation


def remove_random_gate(
    circuit: QuantumCircuit, seed: Optional[int] = None
) -> QuantumCircuit:
    """Return a copy with one randomly chosen gate removed."""
    if not len(circuit):
        raise ValueError("cannot remove a gate from an empty circuit")
    rng = random.Random(seed)
    index = rng.randrange(len(circuit))
    operations = list(circuit.operations)
    del operations[index]
    return QuantumCircuit(
        circuit.num_qubits,
        name=f"{circuit.name}_gate_missing",
        operations=operations,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )


def flip_random_cnot(
    circuit: QuantumCircuit, seed: Optional[int] = None
) -> QuantumCircuit:
    """Return a copy with one CNOT's control and target exchanged."""
    cnot_indices = [
        i
        for i, op in enumerate(circuit)
        if op.name == "x" and len(op.controls) == 1
    ]
    if not cnot_indices:
        raise ValueError("circuit contains no CNOT gate to flip")
    rng = random.Random(seed)
    index = rng.choice(cnot_indices)
    operations = list(circuit.operations)
    op = operations[index]
    operations[index] = Operation("x", op.controls, op.targets)
    return QuantumCircuit(
        circuit.num_qubits,
        name=f"{circuit.name}_flipped_cnot",
        operations=operations,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )
