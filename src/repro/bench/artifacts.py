"""Export / import of the benchmark set as OpenQASM files.

The paper's full benchmark set is published as an archive of QASM files
("All benchmarks are provided in the form of QASM files"); this module
reproduces that artifact: :func:`export_benchmarks` materializes the
case-study instances as ``<name>/<config>.qasm`` files with JSON layout
sidecars and a manifest, and :func:`load_benchmark_pair` reads a pair back
for checking — so the study can be re-run from disk by any OpenQASM
consumer, exactly like the original artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.bench.suite import (
    BenchmarkInstance,
    CONFIGURATIONS,
    compiled_benchmarks,
    optimized_benchmarks,
)
from repro.circuit import circuit_from_qasm, circuit_to_qasm
from repro.circuit.circuit import QuantumCircuit

MANIFEST_NAME = "MANIFEST.json"


def _write_circuit(path: Path, circuit: QuantumCircuit) -> None:
    path.write_text(circuit_to_qasm(circuit))
    if circuit.initial_layout or circuit.output_permutation:
        sidecar = path.with_suffix(path.suffix + ".layout.json")
        sidecar.write_text(
            json.dumps(
                {
                    "initial_layout": circuit.initial_layout,
                    "output_permutation": circuit.output_permutation,
                },
                indent=2,
            )
        )


def _read_circuit(path: Path) -> QuantumCircuit:
    circuit = circuit_from_qasm(path.read_text(), name=path.stem)
    sidecar = path.with_suffix(path.suffix + ".layout.json")
    if sidecar.exists():
        metadata = json.loads(sidecar.read_text())
        circuit.initial_layout = {
            int(k): v for k, v in metadata["initial_layout"].items()
        }
        circuit.output_permutation = {
            int(k): v for k, v in metadata["output_permutation"].items()
        }
    return circuit


def export_benchmarks(
    directory, scale: str = "small", seed: int = 0,
    use_cases: Tuple[str, ...] = ("compiled", "optimized"),
) -> Dict[str, List[str]]:
    """Write the benchmark suite as QASM files; returns the manifest.

    Layout on disk::

        <directory>/<use_case>/<benchmark>/original.qasm
        <directory>/<use_case>/<benchmark>/equivalent.qasm (+ sidecar)
        <directory>/<use_case>/<benchmark>/gate_missing.qasm ...
        <directory>/MANIFEST.json
    """
    root = Path(directory)
    manifest: Dict[str, List[str]] = {}
    for use_case in use_cases:
        instances = (
            compiled_benchmarks(scale=scale, seed=seed)
            if use_case == "compiled"
            else optimized_benchmarks(scale=scale, seed=seed)
        )
        manifest[use_case] = []
        for instance in instances:
            folder = root / use_case / instance.name
            folder.mkdir(parents=True, exist_ok=True)
            _write_circuit(folder / "original.qasm", instance.original)
            for config, variant in instance.variants.items():
                _write_circuit(folder / f"{config}.qasm", variant)
            manifest[use_case].append(instance.name)
    (root / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return manifest


def load_benchmark_pair(
    directory, use_case: str, name: str, config: str = "equivalent"
) -> Tuple[QuantumCircuit, QuantumCircuit]:
    """Read one ``(original, variant)`` pair back from an exported set."""
    if config not in CONFIGURATIONS:
        raise ValueError(f"unknown configuration {config!r}")
    folder = Path(directory) / use_case / name
    if not folder.is_dir():
        raise FileNotFoundError(f"no exported benchmark at {folder}")
    return (
        _read_circuit(folder / "original.qasm"),
        _read_circuit(folder / f"{config}.qasm"),
    )


def load_manifest(directory) -> Dict[str, List[str]]:
    """Read the manifest of an exported benchmark set."""
    return json.loads((Path(directory) / MANIFEST_NAME).read_text())
