"""Cheap performance observability for the DD engine and checkers.

Every equivalence check can carry a :class:`PerfCounters` that records
wall time per checker phase plus ad-hoc counters, and
:func:`package_statistics` snapshots a :class:`repro.dd.DDPackage`'s
compute-table hit/miss/eviction counters, complex-table statistics and
unique-node counts.  Both are plain dictionaries once serialized, so they
flow through :class:`repro.ec.results.EquivalenceCheckingResult` and the
CLI ``--verbose`` output unchanged, and land in benchmark JSON artifacts
(``BENCH_dd_kernels.json``) for trend tracking.
"""

from repro.perf.counters import PerfCounters, package_statistics

__all__ = ["PerfCounters", "package_statistics"]
