"""Cheap performance observability for the DD engine and checkers.

Every equivalence check can carry a :class:`PerfCounters` that records
wall time per checker phase plus ad-hoc counters, and
:func:`package_statistics` snapshots a :class:`repro.dd.DDPackage`'s
compute-table hit/miss/eviction counters, complex-table statistics and
unique-node counts.  The ZX checker threads the same ``PerfCounters``
through ``full_reduce``, which reports per-rule ``zx.<rule>.matches`` /
``zx.<rule>.rewrites`` counts plus ``zx.rounds`` (outer rounds to
fixpoint) and the ``simplify`` / ``chain_contraction`` phase timers.
Everything is a plain dictionary once serialized, so it flows through
:class:`repro.ec.results.EquivalenceCheckingResult` and the CLI
``--verbose`` output unchanged, and lands in benchmark JSON artifacts
(``BENCH_dd_kernels.json``, ``BENCH_zx_simplify.json``) for trend
tracking.
"""

from repro.perf.counters import (
    COUNTER_NAMESPACES,
    PerfCounters,
    json_safe,
    package_statistics,
)

__all__ = [
    "COUNTER_NAMESPACES",
    "PerfCounters",
    "json_safe",
    "package_statistics",
]
