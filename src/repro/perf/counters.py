"""Phase timers, counters and DD-package statistics snapshots.

Designed to stay cheap enough to leave enabled unconditionally: a phase
measurement is two ``perf_counter`` calls and a dict update, and the
package snapshot only reads counters the DD package maintains anyway.
"""

from __future__ import annotations

import enum
import time
from contextlib import contextmanager
from typing import Dict, Iterator

#: Registered counter namespaces: the first dotted component of every
#: ``PerfCounters.count`` name must appear here.  ``tools/check_repro.py``
#: enforces this statically so dashboards never meet a typo'd or
#: unreviewed counter family.
COUNTER_NAMESPACES = (
    "analysis",
    "cache",
    "dd",
    "gate_applications",
    "portfolio",
    "service",
    "zx",
)


class PerfCounters:
    """Wall time per named phase plus arbitrary integer counters."""

    __slots__ = ("phase_seconds", "counters")

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Accumulate the wall time of the ``with`` body under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def count(self, name: str, amount: int = 1) -> None:
        """Increment the counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def as_dict(self) -> Dict[str, object]:
        """Serializable view: rounded phase times plus raw counters."""
        out: Dict[str, object] = {
            "phase_seconds": {
                name: round(value, 6)
                for name, value in sorted(self.phase_seconds.items())
            }
        }
        if self.counters:
            out["counters"] = dict(sorted(self.counters.items()))
        return out


def json_safe(value: object) -> object:
    """Coerce a statistics tree into pure-JSON primitives.

    Checker statistics are mostly plain dicts already, but may carry
    enums (verdicts), tuples (traces), numpy scalars and int-keyed dicts
    (``residual_permutation``).  The isolation harness and the Table-1
    journal serialize through this so the wire format is stable JSON and
    never an opaque pickle of live checker state.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # json rejects NaN/inf depending on the consumer; keep them as
        # strings so a pathological statistic cannot poison a journal.
        if value != value or value in (float("inf"), float("-inf")):
            return repr(value)
        return value
    if isinstance(value, enum.Enum):
        return json_safe(value.value)
    if isinstance(value, complex):
        return {"re": value.real, "im": value.imag}
    if isinstance(value, dict):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    # numpy scalars expose item(); anything else degrades to repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_safe(item())
        except (TypeError, ValueError):
            pass
    return repr(value)


def package_statistics(pkg) -> Dict[str, object]:
    """Snapshot one DD package's internal performance counters.

    Accepts either DD engine (:class:`repro.dd.package.DDPackage` or
    :class:`repro.dd.array_package.ArrayDDPackage`).  Returns a nested
    dict with per-compute-table hit/miss/eviction statistics, the complex
    table's hit/miss/size, and unique-node totals (the node counts are
    cumulative — unique tables never evict, so the final count is also
    the peak).  The array engine additionally reports its node-store
    growth and open-addressed unique-table probe counters under
    ``node_stores``.
    """
    stats: Dict[str, object] = {
        "compute_tables": pkg.compute_table_stats(),
        "complex_table": pkg.complex_table.stats(),
        "unique_matrix_nodes": pkg.num_unique_matrix_nodes(),
        "unique_vector_nodes": pkg.num_unique_vector_nodes(),
        "matrix_nodes_created": pkg.matrix_nodes_created,
        "vector_nodes_created": pkg.vector_nodes_created,
    }
    store_statistics = getattr(pkg, "store_statistics", None)
    if callable(store_statistics):
        stats["node_stores"] = store_statistics()
    return stats
