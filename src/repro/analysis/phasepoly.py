"""Phase-polynomial canonical fingerprints (static pass 4).

Circuits over the fragment {CNOT, X, SWAP} ∪ {Z, S, S†, T, T†, Rz, P}
act on basis states as an *affine parity map* decorated with phases:

.. math::

    |x⟩ \\mapsto e^{iφ(x)} |Ax ⊕ b⟩,\\qquad
    φ(x) = \\sum_y θ_y · [y·x ⊕ c_y]

where each phase term attaches an angle to one parity of the inputs.
Tracking ``(mask, const)`` per wire through the linear gates and folding
every diagonal phase gate onto the parity its wire currently carries
canonicalizes the circuit into ``(affine map, parity→angle table)`` in a
single scan — the classic phase-polynomial normal form.

Comparison semantics (everything here must stay *sound*):

* Different affine maps ⇒ some basis state is mapped to two different
  basis states ⇒ ``NOT_EQUIVALENT``, with a concrete input witness.
* Identical affine maps and per-term angle deltas all ≡ 0 (mod 2π)
  ⇒ ``EQUIVALENT`` up to global phase — an exact proof.
* Otherwise the term-wise deltas are **not** decisive on their own:
  parities are linearly *dependent* as ±1-valued functions, e.g. angles
  (π, π, π) on (y₁, y₂, y₁⊕y₂) compose to the constant 2π.  The
  comparator therefore evaluates the delta polynomial over the full
  span of the involved parities (2^rank assignments, Gray-code order)
  and only claims ``NOT_EQUIVALENT`` when a concrete input violates the
  global-phase relation — or equivalence when every assignment lands on
  0 (mod 2π).  A rank/budget cap returns "no verdict" instead of
  guessing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.gateset import (
    _FIXED_PHASE_ANGLES,
    _PARAM_PHASE_GATES,
    is_phase_poly_operation,
)
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.symbolic import ParamExpr

_TWO_PI = 2.0 * math.pi

#: Angle deltas below this count as exactly zero (float noise from
#: re-associated sums of identical literals).
_EQ_TOLERANCE = 1e-7

#: Assignment deviations above this prove non-equivalence (the smallest
#: planted diagonal errors in the fuzzer are ~0.05 rad).
_NEQ_TOLERANCE = 1e-4

#: Give up (no verdict) when enumerating the delta span would exceed
#: this many term updates — soundness costs nothing, only precision.
_ENUMERATION_BUDGET = 2_000_000


def _wrap_angle(angle: float) -> float:
    """Map an angle to the centered interval (-π, π]."""
    wrapped = math.fmod(angle, _TWO_PI)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    elif wrapped <= -math.pi:
        wrapped += _TWO_PI
    return wrapped


@dataclass(frozen=True)
class PhasePolynomial:
    """Canonical form of a phase-polynomial circuit.

    Attributes:
        num_qubits: Width of the (logical-form) circuit.
        wires: Final affine map — per wire, ``(mask, const)`` meaning
            the output wire carries parity ``mask·x ⊕ const``.
        phases: Parity mask → accumulated conditional angle (mod 2π is
            **not** applied here; the comparator wraps deltas).  The
            all-zero mask never appears — constant phases are global.
            With parameterized circuits an angle may be a
            :class:`~repro.circuit.symbolic.ParamExpr`; the accumulation
            is exact, so angles that cancel symbolically collapse back
            to plain floats.
    """

    num_qubits: int
    wires: Tuple[Tuple[int, int], ...]
    phases: Tuple[Tuple[int, object], ...]

    def phase_table(self) -> Dict[int, object]:
        return dict(self.phases)

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_qubits": self.num_qubits,
            "wires": [list(pair) for pair in self.wires],
            "phase_terms": len(self.phases),
        }


def extract_phase_polynomial(
    circuit: QuantumCircuit,
) -> Optional[PhasePolynomial]:
    """Canonicalize a circuit, or return ``None`` if it leaves the fragment.

    The scan is O(gates); phase-gate folding distinguishes ``rz`` (whose
    conditional part equals ``p`` up to a dropped global phase) from the
    fixed-angle Z-basis gates.
    """
    n = circuit.num_qubits
    masks = [1 << i for i in range(n)]
    consts = [0] * n
    phases: Dict[int, object] = {}

    def add_phase(wire: int, angle) -> None:
        mask = masks[wire]
        if consts[wire]:
            # θ·[y ⊕ 1] = θ − θ·[y]: drop the global θ, negate the term.
            angle = -angle
        if mask:
            phases[mask] = phases.get(mask, 0.0) + angle

    for op in circuit:
        if not is_phase_poly_operation(op):
            return None
        if op.name == "x":
            if op.controls:
                control, target = op.controls[0], op.targets[0]
                masks[target] ^= masks[control]
                consts[target] ^= consts[control]
            else:
                consts[op.targets[0]] ^= 1
        elif op.name == "swap":
            a, b = op.targets
            masks[a], masks[b] = masks[b], masks[a]
            consts[a], consts[b] = consts[b], consts[a]
        elif op.name in _FIXED_PHASE_ANGLES:
            add_phase(op.targets[0], _FIXED_PHASE_ANGLES[op.name])
        elif op.name in _PARAM_PHASE_GATES:
            add_phase(op.targets[0], op.params[0])
        # "id" contributes nothing.
    canonical = tuple(
        (mask, angle)
        for mask, angle in sorted(phases.items())
        # Symbolic angles are kept unconditionally: a ParamExpr only
        # survives accumulation when a parameter term is left.
        if isinstance(angle, ParamExpr) or abs(_wrap_angle(angle)) > 0.0
    )
    return PhasePolynomial(
        num_qubits=n,
        wires=tuple(zip(masks, consts)),
        phases=canonical,
    )


def _affine_witness_input(
    wires1: Tuple[Tuple[int, int], ...], wires2: Tuple[Tuple[int, int], ...]
) -> Tuple[int, int]:
    """A wire and basis input on which the affine maps visibly differ."""
    for wire, ((m1, c1), (m2, c2)) in enumerate(zip(wires1, wires2)):
        if c1 != c2 and m1 == m2:
            return wire, 0
        if m1 != m2:
            differing = (m1 ^ m2) & -(m1 ^ m2)  # lowest differing bit
            return wire, differing
    for wire, ((_m1, c1), (_m2, c2)) in enumerate(zip(wires1, wires2)):
        if c1 != c2:
            return wire, 0
    raise AssertionError("affine maps do not differ")


def _rank_basis(vectors: List[int]) -> List[Tuple[int, int]]:
    """Greedy F₂ basis of packed bit-vectors: ``(original, reduced)``."""
    basis: List[Tuple[int, int]] = []
    for vector in vectors:
        reduced = vector
        for _, pivot in basis:
            reduced = min(reduced, reduced ^ pivot)
        if reduced:
            basis.append((vector, reduced))
    return basis


def compare_phase_polynomials(
    poly1: PhasePolynomial, poly2: PhasePolynomial
) -> Tuple[Optional[str], Dict[str, object]]:
    """Sound three-way comparison of two canonical forms.

    Returns ``(verdict, details)`` with verdict one of
    ``"not_equivalent"``, ``"equivalent_up_to_global_phase"`` or ``None``
    (no sound conclusion).  ``details`` names the deciding structure —
    for non-equivalence, a concrete basis-state input exhibiting either
    a basis-state mismatch or a relative-phase deviation.
    """
    details: Dict[str, object] = {"pass": "phase_polynomial"}
    if poly1.num_qubits != poly2.num_qubits:
        details["kind"] = "width_mismatch"
        return None, details
    if poly1.wires != poly2.wires:
        wire, witness_input = _affine_witness_input(poly1.wires, poly2.wires)
        details.update(
            {
                "kind": "affine_map_mismatch",
                "wire": wire,
                "input": witness_input,
            }
        )
        return "not_equivalent", details

    table1, table2 = poly1.phase_table(), poly2.phase_table()
    deltas: List[Tuple[int, float]] = []
    symbolic_residuals = 0
    for mask in sorted(set(table1) | set(table2)):
        raw = table1.get(mask, 0.0) - table2.get(mask, 0.0)
        if isinstance(raw, ParamExpr):
            # A parameter survived the exact subtraction.  The deltas on
            # dependent parities could still cancel at specific
            # valuations, so neither verdict is sound here — the
            # parameterized checker falls through to symbolic ZX /
            # instantiation instead.
            symbolic_residuals += 1
            continue
        delta = _wrap_angle(raw)
        if abs(delta) > _EQ_TOLERANCE:
            deltas.append((mask, delta))
    if symbolic_residuals:
        details["kind"] = "symbolic_residual"
        details["symbolic_terms"] = symbolic_residuals
        return None, details
    if not deltas:
        details["kind"] = "identical_phase_polynomial"
        return "equivalent_up_to_global_phase", details

    # The deltas as functions x ↦ delta·[mask·x] are only independent
    # when the masks are; enumerate the achievable parity assignments.
    # Input bit b hits term j iff bit b of mask_j is set: build per-bit
    # columns over the term indices and a basis of their span.
    columns: Dict[int, int] = {}
    for j, (mask, _delta) in enumerate(deltas):
        bit = 0
        while mask:
            if mask & 1:
                columns[bit] = columns.get(bit, 0) | (1 << j)
            mask >>= 1
            bit += 1
    basis_bits: List[int] = []
    basis_columns: List[int] = []
    for bit, column in sorted(columns.items()):
        reduced = column
        for pivot in [p for _, p in _rank_basis(basis_columns)]:
            reduced = min(reduced, reduced ^ pivot)
        if reduced:
            basis_bits.append(bit)
            basis_columns.append(column)
    rank = len(basis_columns)
    details["phase_terms_differing"] = len(deltas)
    details["rank"] = rank
    if (1 << rank) * max(1, len(deltas)) > _ENUMERATION_BUDGET:
        details["kind"] = "enumeration_budget_exceeded"
        return None, details

    # Gray-code walk over the 2^rank assignments: each step toggles one
    # basis column, flipping the membership of its terms in the sum.
    assignment = 0
    total = 0.0
    input_bits = 0
    max_deviation = 0.0
    code = 0
    for step in range(1, 1 << rank):
        gray = step ^ (step >> 1)
        toggled_index = (gray ^ code).bit_length() - 1
        code = gray
        column = basis_columns[toggled_index]
        bits = column
        while bits:
            j = (bits & -bits).bit_length() - 1
            if assignment & (1 << j):
                total -= deltas[j][1]
            else:
                total += deltas[j][1]
            bits &= bits - 1
        assignment ^= column
        input_bits ^= 1 << basis_bits[toggled_index]
        deviation = abs(_wrap_angle(total))
        max_deviation = max(max_deviation, deviation)
        if deviation > _NEQ_TOLERANCE:
            details.update(
                {
                    "kind": "relative_phase_mismatch",
                    "input": input_bits,
                    "phase_deviation": round(deviation, 9),
                }
            )
            return "not_equivalent", details
    if max_deviation <= _EQ_TOLERANCE * (1 << min(rank, 20)):
        details["kind"] = "phase_deltas_cancel"
        return "equivalent_up_to_global_phase", details
    details["kind"] = "deviation_within_tolerance_gap"
    details["max_deviation"] = round(max_deviation, 9)
    return None, details


def phase_polynomial_check(
    logical1: QuantumCircuit, logical2: QuantumCircuit
) -> Tuple[Optional[str], Dict[str, object]]:
    """End-to-end pass: canonicalize both sides and compare.

    Returns ``(verdict, details)``; verdict ``None`` when either circuit
    leaves the fragment or the comparison is inconclusive.
    """
    poly1 = extract_phase_polynomial(logical1)
    if poly1 is None:
        return None, {"pass": "phase_polynomial", "kind": "not_applicable"}
    poly2 = extract_phase_polynomial(logical2)
    if poly2 is None:
        return None, {"pass": "phase_polynomial", "kind": "not_applicable"}
    verdict, details = compare_phase_polynomials(poly1, poly2)
    details["terms"] = [len(poly1.phases), len(poly2.phases)]
    return verdict, details
