"""Interaction-graph fingerprinting and fragment isolation (static pass 2).

Two sub-analyses over the two-qubit connectivity structure:

* **Fingerprinting** — the multigraph of multi-qubit interactions
  (a multiset of sorted wire tuples, one per multi-qubit operation) is
  hashed per circuit.  Matching fingerprints are *evidence* of a
  structurally faithful transformation (relabeling, gate rebasing) and
  feed the strategy advisor; a mismatch proves nothing — optimization
  legitimately rewrites connectivity — so it never yields a verdict.
* **Fragment isolation** — connected components of the *union*
  interaction graph (edges of either circuit) isolate wire sets that
  neither circuit couples to the rest.  On such a component ``C`` both
  unitaries factorize as ``U_C ⊗ U_rest``, so the dense ``2^|C|``
  sub-unitaries can be compared exactly when ``|C|`` is small.  A
  non-proportional pair of factors is a sound non-equivalence witness;
  if *every* active component is small and all factors match, the pair
  is provably equivalent up to global phase.

As with every pass, inputs must be in logical form so declared layout
permutations are already folded in (the fingerprint comparison "up to
the declared permutation" of compiled circuits falls out of that).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.unitary import circuit_unitary

ComplexMatrix = NDArray[np.complex128]

#: Largest fragment (in wires) compared densely: 2^4 = 16×16 matrices.
MAX_FRAGMENT_QUBITS = 4

#: Proportionality defect above which a fragment mismatch is claimed
#: (``|tr(U†V)| = 2^k`` exactly iff the factors are proportional).
_NEQ_MARGIN = 1e-6

#: Defect below which a fragment match is treated as an exact proof.
_EQ_MARGIN = 1e-9


def interaction_multigraph(
    circuit: QuantumCircuit,
) -> Tuple[Tuple[Tuple[int, ...], int], ...]:
    """The multiset of sorted multi-qubit wire tuples, as sorted pairs."""
    counts: Dict[Tuple[int, ...], int] = {}
    for op in circuit:
        if op.num_qubits >= 2:
            key = tuple(sorted(op.qubits))
            counts[key] = counts.get(key, 0) + 1
    return tuple(sorted(counts.items()))


def interaction_fingerprint(circuit: QuantumCircuit) -> str:
    """Stable digest of the interaction multigraph."""
    digest = hashlib.sha256()
    for key, count in interaction_multigraph(circuit):
        digest.update(repr((key, count)).encode("ascii"))
    return digest.hexdigest()[:16]


class _UnionFind:
    """Minimal union-find over wire indices."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def union_components(
    circuits: Sequence[QuantumCircuit], num_qubits: int
) -> List[Tuple[int, ...]]:
    """Connected components of the union interaction graph.

    Only *active* wires (touched by at least one operation in either
    circuit) appear; each component is a sorted wire tuple.
    """
    uf = _UnionFind(num_qubits)
    active = [False] * num_qubits
    for circuit in circuits:
        for op in circuit:
            qubits = op.qubits
            for q in qubits:
                active[q] = True
            for q in qubits[1:]:
                uf.union(qubits[0], q)
    groups: Dict[int, List[int]] = {}
    for wire in range(num_qubits):
        if active[wire]:
            groups.setdefault(uf.find(wire), []).append(wire)
    return sorted(tuple(sorted(group)) for group in groups.values())


def _fragment_unitary(
    circuit: QuantumCircuit, component: Tuple[int, ...]
) -> ComplexMatrix:
    """Dense unitary of the sub-circuit living on ``component``.

    Every operation touching a component wire lies entirely inside the
    component (that is what makes it a connected component of the union
    graph), so the restriction is exact, not an approximation.
    """
    index = {wire: i for i, wire in enumerate(component)}
    members = frozenset(component)
    sub = QuantumCircuit(len(component), name=f"fragment_{component[0]}")
    for op in circuit:
        if members.intersection(op.qubits):
            sub.append(op.remapped(index))
    return np.asarray(circuit_unitary(sub), dtype=np.complex128)


def fragment_isolation_check(
    logical1: QuantumCircuit,
    logical2: QuantumCircuit,
    num_qubits: int,
    max_fragment_qubits: int = MAX_FRAGMENT_QUBITS,
) -> Tuple[Optional[Dict[str, object]], Optional[str], Dict[str, object]]:
    """Compare isolated interaction fragments of a logical pair.

    Returns ``(witness, proof, summary)``:

    * ``witness`` — a sound non-equivalence witness when some small
      isolated fragment carries provably different unitaries;
    * ``proof`` — ``"equivalent_up_to_global_phase"`` when the pair
      splits into two or more fragments that are *all* small and *all*
      proportional (the tensor factors multiply back to a global-phase
      relation); ``None`` otherwise;
    * ``summary`` — component structure for the advisor and the report.

    A single fully-connected component is the common case for real
    circuits; the pass then returns no verdict at all — deciding it
    would amount to dense simulation, which is the checkers' job.
    """
    components = union_components((logical1, logical2), num_qubits)
    summary: Dict[str, object] = {
        "components": [list(c) for c in components],
        "fragments_compared": 0,
    }
    if len(components) < 2:
        return None, None, summary
    compared = 0
    all_small = True
    all_proportional = True
    witness: Optional[Dict[str, object]] = None
    for component in components:
        if len(component) > max_fragment_qubits:
            all_small = False
            continue
        u = _fragment_unitary(logical1, component)
        v = _fragment_unitary(logical2, component)
        dim = u.shape[0]
        overlap = abs(complex(np.trace(u.conj().T @ v)))
        defect = float(dim) - overlap
        compared += 1
        if defect > _NEQ_MARGIN:
            all_proportional = False
            if witness is None:
                witness = {
                    "pass": "interaction",
                    "kind": "fragment_mismatch",
                    "fragment": list(component),
                    "trace_defect": round(defect, 9),
                }
        elif defect > _EQ_MARGIN:
            all_proportional = False
    summary["fragments_compared"] = compared
    proof: Optional[str] = None
    if witness is None and all_small and all_proportional:
        proof = "equivalent_up_to_global_phase"
    return witness, proof, summary


def fingerprints(
    circuits: Iterable[QuantumCircuit],
) -> List[str]:
    """Interaction fingerprints of several circuits."""
    return [interaction_fingerprint(circuit) for circuit in circuits]
