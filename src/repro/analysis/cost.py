"""Strategy cost model and advisor (static pass 5).

Estimates the relative effort of the DD and ZX pipelines from statically
cheap features — width, depth, T-count, rotation count, and two-qubit
structure — and turns the estimate plus the fragment profiles into an
:class:`Advice` the manager's ``combined`` strategy consumes.

The paper's case study (Sections 4-5) motivates the heuristics:

* Clifford circuits are polynomially decidable — the stabilizer checker
  dominates everything and should run *first*.
* ``full_reduce`` excels on Clifford+T with moderate T-count but gets
  stuck on rotation-heavy circuits, where the alternating DD scheme with
  a good application ordering stays tractable.
* DD sizes blow up with entangling depth; ZX cost tracks the spider
  count (≈ gates) and the non-Clifford phase count.

The advisor is deliberately conservative: it only *reorders* the
schedule, never removes a stage, so the combined flow keeps its
worst-case behaviour and the advice can never cost correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.gateset import (
    FRAGMENT_CLIFFORD,
    FRAGMENT_ROTATION_HEAVY,
    GateSetProfile,
)
from repro.circuit.circuit import QuantumCircuit

#: Default combined schedule (mirrors ``_run_combined``'s historic order).
DEFAULT_SCHEDULE: Tuple[str, ...] = ("simulation", "alternating")

#: Every strategy the portfolio can race (stabilizer is gated on the
#: gateset pass; everything else always applies).
PORTFOLIO_STRATEGIES: Tuple[str, ...] = (
    "alternating",
    "construction",
    "simulation",
    "zx",
    "stabilizer",
)


def circuit_depth(circuit: QuantumCircuit) -> int:
    """Critical-path length of the circuit (greedy wire-front packing)."""
    front: Dict[int, int] = {}
    depth = 0
    for op in circuit:
        layer = 1 + max((front.get(q, 0) for q in op.qubits), default=0)
        for q in op.qubits:
            front[q] = layer
        depth = max(depth, layer)
    return depth


@dataclass(frozen=True)
class CostEstimate:
    """Relative effort scores for one circuit pair.

    Scores are unitless and only meaningful relative to each other; the
    advisor compares ``dd_score`` against ``zx_score`` and inspects the
    feature fields to justify its ordering.
    """

    num_qubits: int
    total_gates: int
    depth: int
    t_count: int
    rotation_count: int
    two_qubit_count: int
    dd_score: float
    zx_score: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_qubits": self.num_qubits,
            "total_gates": self.total_gates,
            "depth": self.depth,
            "t_count": self.t_count,
            "rotation_count": self.rotation_count,
            "two_qubit_count": self.two_qubit_count,
            "dd_score": round(self.dd_score, 3),
            "zx_score": round(self.zx_score, 3),
        }


def estimate_cost(
    circuits: Tuple[QuantumCircuit, QuantumCircuit],
    profiles: Tuple[GateSetProfile, GateSetProfile],
) -> CostEstimate:
    """Combine both circuits' static features into one pair estimate."""
    num_qubits = max(c.num_qubits for c in circuits)
    depth = max(circuit_depth(c) for c in circuits)
    total_gates = sum(p.num_gates for p in profiles)
    t_count = sum(p.t_like_gates for p in profiles)
    rotations = sum(p.rotation_gates for p in profiles)
    two_qubit = sum(p.two_qubit_gates for p in profiles)
    # DD effort grows with the entangling structure the diagram must
    # represent: two-qubit depth drives node counts, width caps them.
    # Coefficients re-tuned for the array-native kernels (struct-of-arrays
    # node store + batched stimuli cut per-gate DD cost by ~2.5-3x on the
    # Table-1 cells, see BENCH_dd_kernels.json), which narrows the gap to
    # ZX on entangling-heavy pairs.
    dd_score = (
        float(total_gates)
        + 3.0 * two_qubit
        + 0.4 * depth * num_qubits
    )
    # ZX effort tracks the spider count plus the phases full_reduce
    # cannot fuse away; generic rotations are the dominant obstruction.
    zx_score = (
        float(total_gates)
        + 6.0 * t_count
        + 40.0 * rotations
    )
    return CostEstimate(
        num_qubits=num_qubits,
        total_gates=total_gates,
        depth=depth,
        t_count=t_count,
        rotation_count=rotations,
        two_qubit_count=two_qubit,
        dd_score=dd_score,
        zx_score=zx_score,
    )


@dataclass(frozen=True)
class Advice:
    """Advisor output consumed by the manager's combined dispatch.

    Attributes:
        schedule: Stage order for the combined strategy.  Always a
            permutation/extension of :data:`DEFAULT_SCHEDULE` — stages
            are only added in front, never dropped.
        preferred_checker: The single-strategy recommendation shown by
            ``repro analyze``.
        rationale: Human-readable one-liners justifying the ordering.
    """

    schedule: Tuple[str, ...]
    preferred_checker: str
    rationale: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schedule": list(self.schedule),
            "preferred_checker": self.preferred_checker,
            "rationale": list(self.rationale),
        }


def advise(
    profiles: Tuple[GateSetProfile, GateSetProfile],
    estimate: CostEstimate,
) -> Advice:
    """Derive a combined-strategy schedule from the static evidence."""
    rationale: List[str] = []
    schedule: Tuple[str, ...] = DEFAULT_SCHEDULE
    if all(p.fragment == FRAGMENT_CLIFFORD for p in profiles):
        # Polynomial decision procedure applies — run it before anything
        # exponential; the downstream stages remain as a safety net.
        schedule = ("stabilizer",) + DEFAULT_SCHEDULE
        preferred = "stabilizer"
        rationale.append(
            "both circuits are Clifford-only: the stabilizer tableau "
            "decides equivalence in polynomial time"
        )
    elif all(p.is_clifford_t for p in profiles) and (
        estimate.zx_score < estimate.dd_score
    ):
        preferred = "zx"
        rationale.append(
            "Clifford+T pair with low rewrite obstruction: full_reduce "
            f"is favoured (zx_score {estimate.zx_score:.0f} < dd_score "
            f"{estimate.dd_score:.0f})"
        )
    elif any(p.fragment == FRAGMENT_ROTATION_HEAVY for p in profiles):
        preferred = "alternating"
        rationale.append(
            "rotation-heavy fragment: ZX reduction is likely to get "
            "stuck, alternating DD check preferred"
        )
    elif estimate.zx_score < estimate.dd_score:
        preferred = "zx"
        rationale.append(
            f"cost model favours ZX (zx_score {estimate.zx_score:.0f} "
            f"< dd_score {estimate.dd_score:.0f})"
        )
    else:
        preferred = "alternating"
        rationale.append(
            f"cost model favours DD (dd_score {estimate.dd_score:.0f} "
            f"<= zx_score {estimate.zx_score:.0f})"
        )
    if schedule == DEFAULT_SCHEDULE:
        rationale.append(
            "combined schedule unchanged: stimuli first, then the "
            "alternating DD proof stage"
        )
    return Advice(
        schedule=schedule,
        preferred_checker=preferred,
        rationale=tuple(rationale),
    )


@dataclass(frozen=True)
class PortfolioSlot:
    """One lane of a portfolio race.

    Attributes:
        strategy: The checker strategy this lane runs.
        delay: Seconds after race start before the lane launches (lanes
            are promoted early when another lane finishes undecided).
        time_budget: Per-lane wall-clock budget in seconds, ``None`` =
            bounded only by the shared race deadline.
        memory_mb: RLIMIT_AS headroom for the lane's child, in MiB.
    """

    strategy: str
    delay: float = 0.0
    time_budget: Optional[float] = None
    memory_mb: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "delay": round(self.delay, 6),
            "time_budget": self.time_budget,
            "memory_mb": self.memory_mb,
        }


@dataclass(frozen=True)
class PortfolioPlan:
    """Advisor-seeded launch plan consumed by :mod:`repro.ec.portfolio`.

    ``slots`` is the launch order: zero-delay lanes (the predicted
    winner and the cheap simulation falsifier) race immediately, the
    rest sit behind the head start.  The plan never *drops* a strategy
    — staggering only defers launches, so the portfolio retains the
    sequential schedule's worst-case completeness.
    """

    slots: Tuple[PortfolioSlot, ...]
    preferred_checker: str
    rationale: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "slots": [slot.to_dict() for slot in self.slots],
            "preferred_checker": self.preferred_checker,
            "rationale": list(self.rationale),
        }


def seed_portfolio(
    profiles: Tuple[GateSetProfile, GateSetProfile],
    estimate: CostEstimate,
    *,
    head_start: float = 0.25,
    timeout: Optional[float] = None,
    memory_mb: Optional[int] = None,
) -> PortfolioPlan:
    """Turn the static cost evidence into a portfolio launch plan.

    The advisor's single-strategy recommendation becomes the zero-delay
    lane; ``simulation`` always races alongside it from the start (the
    paper's combined rationale — random stimuli are the cheapest
    falsifier, and a sound ``NOT_EQUIVALENT`` from them ends the race).
    Every other applicable strategy launches after ``head_start``
    seconds, ordered cheapest-first by the cost model; ``construction``
    always trails ``alternating`` (same paradigm, strictly larger
    intermediate diagrams).  ``stabilizer`` joins only when the gateset
    pass proves both circuits Clifford — on any other pair it can only
    return ``NO_INFORMATION``.
    """
    advice = advise(profiles, estimate)
    clifford = all(p.fragment == FRAGMENT_CLIFFORD for p in profiles)
    applicable = [
        strategy
        for strategy in PORTFOLIO_STRATEGIES
        if strategy != "stabilizer" or clifford
    ]
    preferred = advice.preferred_checker
    if preferred not in applicable:  # pragma: no cover - defensive
        preferred = "alternating"
    ordered: List[str] = [preferred]
    if "simulation" != preferred:
        ordered.append("simulation")
    # Remaining lanes, cheapest paradigm first per the cost model.
    zx_first = estimate.zx_score < estimate.dd_score
    tail_order = (
        ("stabilizer", "zx", "alternating", "construction")
        if zx_first
        else ("stabilizer", "alternating", "zx", "construction")
    )
    ordered.extend(
        strategy
        for strategy in tail_order
        if strategy in applicable and strategy not in ordered
    )
    slots = tuple(
        PortfolioSlot(
            strategy=strategy,
            delay=0.0 if index < 2 else head_start,
            time_budget=timeout,
            memory_mb=memory_mb,
        )
        for index, strategy in enumerate(ordered)
    )
    rationale = advice.rationale + (
        f"portfolio: {preferred} and simulation race from t=0, "
        f"{len(slots) - min(2, len(slots))} companion lane(s) stagger in "
        f"after a {head_start:g}s head start",
    )
    return PortfolioPlan(
        slots=slots,
        preferred_checker=preferred,
        rationale=rationale,
    )
