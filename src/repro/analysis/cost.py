"""Strategy cost model and advisor (static pass 5).

Estimates the relative effort of the DD and ZX pipelines from statically
cheap features — width, depth, T-count, rotation count, and two-qubit
structure — and turns the estimate plus the fragment profiles into an
:class:`Advice` the manager's ``combined`` strategy consumes.

The paper's case study (Sections 4-5) motivates the heuristics:

* Clifford circuits are polynomially decidable — the stabilizer checker
  dominates everything and should run *first*.
* ``full_reduce`` excels on Clifford+T with moderate T-count but gets
  stuck on rotation-heavy circuits, where the alternating DD scheme with
  a good application ordering stays tractable.
* DD sizes blow up with entangling depth; ZX cost tracks the spider
  count (≈ gates) and the non-Clifford phase count.

The advisor is deliberately conservative: it only *reorders* the
schedule, never removes a stage, so the combined flow keeps its
worst-case behaviour and the advice can never cost correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.gateset import (
    FRAGMENT_CLIFFORD,
    FRAGMENT_ROTATION_HEAVY,
    GateSetProfile,
)
from repro.circuit.circuit import QuantumCircuit

#: Default combined schedule (mirrors ``_run_combined``'s historic order).
DEFAULT_SCHEDULE: Tuple[str, ...] = ("simulation", "alternating")


def circuit_depth(circuit: QuantumCircuit) -> int:
    """Critical-path length of the circuit (greedy wire-front packing)."""
    front: Dict[int, int] = {}
    depth = 0
    for op in circuit:
        layer = 1 + max((front.get(q, 0) for q in op.qubits), default=0)
        for q in op.qubits:
            front[q] = layer
        depth = max(depth, layer)
    return depth


@dataclass(frozen=True)
class CostEstimate:
    """Relative effort scores for one circuit pair.

    Scores are unitless and only meaningful relative to each other; the
    advisor compares ``dd_score`` against ``zx_score`` and inspects the
    feature fields to justify its ordering.
    """

    num_qubits: int
    total_gates: int
    depth: int
    t_count: int
    rotation_count: int
    two_qubit_count: int
    dd_score: float
    zx_score: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_qubits": self.num_qubits,
            "total_gates": self.total_gates,
            "depth": self.depth,
            "t_count": self.t_count,
            "rotation_count": self.rotation_count,
            "two_qubit_count": self.two_qubit_count,
            "dd_score": round(self.dd_score, 3),
            "zx_score": round(self.zx_score, 3),
        }


def estimate_cost(
    circuits: Tuple[QuantumCircuit, QuantumCircuit],
    profiles: Tuple[GateSetProfile, GateSetProfile],
) -> CostEstimate:
    """Combine both circuits' static features into one pair estimate."""
    num_qubits = max(c.num_qubits for c in circuits)
    depth = max(circuit_depth(c) for c in circuits)
    total_gates = sum(p.num_gates for p in profiles)
    t_count = sum(p.t_like_gates for p in profiles)
    rotations = sum(p.rotation_gates for p in profiles)
    two_qubit = sum(p.two_qubit_gates for p in profiles)
    # DD effort grows with the entangling structure the diagram must
    # represent: two-qubit depth drives node counts, width caps them.
    dd_score = (
        float(total_gates)
        + 4.0 * two_qubit
        + 0.5 * depth * num_qubits
    )
    # ZX effort tracks the spider count plus the phases full_reduce
    # cannot fuse away; generic rotations are the dominant obstruction.
    zx_score = (
        float(total_gates)
        + 6.0 * t_count
        + 40.0 * rotations
    )
    return CostEstimate(
        num_qubits=num_qubits,
        total_gates=total_gates,
        depth=depth,
        t_count=t_count,
        rotation_count=rotations,
        two_qubit_count=two_qubit,
        dd_score=dd_score,
        zx_score=zx_score,
    )


@dataclass(frozen=True)
class Advice:
    """Advisor output consumed by the manager's combined dispatch.

    Attributes:
        schedule: Stage order for the combined strategy.  Always a
            permutation/extension of :data:`DEFAULT_SCHEDULE` — stages
            are only added in front, never dropped.
        preferred_checker: The single-strategy recommendation shown by
            ``repro analyze``.
        rationale: Human-readable one-liners justifying the ordering.
    """

    schedule: Tuple[str, ...]
    preferred_checker: str
    rationale: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schedule": list(self.schedule),
            "preferred_checker": self.preferred_checker,
            "rationale": list(self.rationale),
        }


def advise(
    profiles: Tuple[GateSetProfile, GateSetProfile],
    estimate: CostEstimate,
) -> Advice:
    """Derive a combined-strategy schedule from the static evidence."""
    rationale: List[str] = []
    schedule: Tuple[str, ...] = DEFAULT_SCHEDULE
    if all(p.fragment == FRAGMENT_CLIFFORD for p in profiles):
        # Polynomial decision procedure applies — run it before anything
        # exponential; the downstream stages remain as a safety net.
        schedule = ("stabilizer",) + DEFAULT_SCHEDULE
        preferred = "stabilizer"
        rationale.append(
            "both circuits are Clifford-only: the stabilizer tableau "
            "decides equivalence in polynomial time"
        )
    elif all(p.is_clifford_t for p in profiles) and (
        estimate.zx_score < estimate.dd_score
    ):
        preferred = "zx"
        rationale.append(
            "Clifford+T pair with low rewrite obstruction: full_reduce "
            f"is favoured (zx_score {estimate.zx_score:.0f} < dd_score "
            f"{estimate.dd_score:.0f})"
        )
    elif any(p.fragment == FRAGMENT_ROTATION_HEAVY for p in profiles):
        preferred = "alternating"
        rationale.append(
            "rotation-heavy fragment: ZX reduction is likely to get "
            "stuck, alternating DD check preferred"
        )
    elif estimate.zx_score < estimate.dd_score:
        preferred = "zx"
        rationale.append(
            f"cost model favours ZX (zx_score {estimate.zx_score:.0f} "
            f"< dd_score {estimate.dd_score:.0f})"
        )
    else:
        preferred = "alternating"
        rationale.append(
            f"cost model favours DD (dd_score {estimate.dd_score:.0f} "
            f"<= zx_score {estimate.zx_score:.0f})"
        )
    if schedule == DEFAULT_SCHEDULE:
        rationale.append(
            "combined schedule unchanged: stimuli first, then the "
            "alternating DD proof stage"
        )
    return Advice(
        schedule=schedule,
        preferred_checker=preferred,
        rationale=tuple(rationale),
    )
