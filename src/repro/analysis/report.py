"""Structured result of a static analysis run, plus CLI rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cost import Advice, CostEstimate
from repro.analysis.gateset import GateSetProfile

#: Verdict labels — the only sound conclusions the analyzer ever emits.
VERDICT_NOT_EQUIVALENT = "not_equivalent"
VERDICT_EQUIVALENT_UP_TO_GLOBAL_PHASE = "equivalent_up_to_global_phase"
VERDICT_UNDECIDED = "undecided"


@dataclass(frozen=True)
class StaticAnalysisReport:
    """Everything the five passes learned about one circuit pair.

    Attributes:
        verdict: One of the ``VERDICT_*`` labels.  Anything other than
            ``undecided`` is a *sound* conclusion backed by ``witness``.
        witness: The deciding evidence — for ``not_equivalent``, names
            the pass, the wires/fragment involved and a concrete defect;
            for the global-phase proof, the deciding pass.
        profiles: Gate-set profile per circuit.
        support: Pass-1 summary (idle wires, compared local factors).
        interaction: Pass-2 summary (fingerprints, union components).
        phase_polynomial: Pass-4 details (term counts, comparison kind).
        estimate: Pass-5 cost features and scores.
        advice: The strategy advisor's schedule and rationale.
        passes_run: Names of the passes that actually executed.
        time: Wall-clock seconds spent inside the analyzer.
    """

    verdict: str
    witness: Optional[Dict[str, object]]
    profiles: Tuple[GateSetProfile, GateSetProfile]
    support: Dict[str, object]
    interaction: Dict[str, object]
    phase_polynomial: Dict[str, object]
    estimate: CostEstimate
    advice: Advice
    passes_run: Tuple[str, ...] = field(default=())
    time: float = 0.0

    @property
    def is_sound_neq(self) -> bool:
        return self.verdict == VERDICT_NOT_EQUIVALENT

    @property
    def is_sound_eq(self) -> bool:
        return self.verdict == VERDICT_EQUIVALENT_UP_TO_GLOBAL_PHASE

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe summary — the ``statistics["analysis"]`` block."""
        payload: Dict[str, object] = {
            "verdict": self.verdict,
            "passes_run": list(self.passes_run),
            "time": round(self.time, 6),
            "fragments": [p.fragment for p in self.profiles],
            "schedule": list(self.advice.schedule),
            "preferred_checker": self.advice.preferred_checker,
        }
        if self.witness is not None:
            payload["witness"] = dict(self.witness)
        return payload

    def detail_dict(self) -> Dict[str, object]:
        """Full nested report for ``repro analyze --json``."""
        payload = self.to_dict()
        payload.update(
            {
                "profiles": [p.to_dict() for p in self.profiles],
                "support": dict(self.support),
                "interaction": dict(self.interaction),
                "phase_polynomial": dict(self.phase_polynomial),
                "estimate": self.estimate.to_dict(),
                "advice": self.advice.to_dict(),
            }
        )
        return payload


def format_report(report: StaticAnalysisReport) -> str:
    """Human-readable multi-line rendering for the ``analyze`` verb."""
    lines: List[str] = []
    lines.append(f"verdict:   {report.verdict}")
    if report.witness is not None:
        parts = ", ".join(
            f"{key}={value}"
            for key, value in report.witness.items()
            if key != "pass"
        )
        lines.append(
            f"witness:   [{report.witness.get('pass', '?')}] {parts}"
        )
    for i, profile in enumerate(report.profiles, start=1):
        lines.append(
            f"circuit {i}: fragment={profile.fragment} "
            f"gates={profile.num_gates} clifford={profile.clifford_gates} "
            f"t={profile.t_like_gates} rotations={profile.rotation_gates} "
            f"2q={profile.two_qubit_gates}"
        )
    estimate = report.estimate
    lines.append(
        f"cost:      depth={estimate.depth} "
        f"dd_score={estimate.dd_score:.0f} zx_score={estimate.zx_score:.0f}"
    )
    fingerprints = report.interaction.get("fingerprints")
    if fingerprints:
        match = "match" if len(set(fingerprints)) == 1 else "differ"
        lines.append(f"topology:  fingerprints {match}")
    components = report.interaction.get("components")
    if components:
        lines.append(
            f"fragments: {len(components)} isolated component(s), "
            f"{report.interaction.get('fragments_compared', 0)} compared"
        )
    lines.append(f"advisor:   prefer {report.advice.preferred_checker}")
    for reason in report.advice.rationale:
        lines.append(f"           - {reason}")
    lines.append(
        f"passes:    {', '.join(report.passes_run)} "
        f"({report.time * 1000:.2f} ms)"
    )
    return "\n".join(lines)
