"""Static circuit analysis: sound pre-checks and a strategy advisor.

The subsystem runs five static passes over a circuit pair *without
executing anything* — no decision diagram, no ZX graph, no simulation:

1. :mod:`repro.analysis.support` — qubit-support / idle-wire analysis
   with exact local 1q factors (sound NEQ witnesses on product wires);
2. :mod:`repro.analysis.interaction` — interaction-graph fingerprints
   and dense comparison of small isolated fragments;
3. :mod:`repro.analysis.gateset` — Clifford / Clifford+T /
   rotation-heavy fragment profiling (decides whether ``stabilizer``
   applies);
4. :mod:`repro.analysis.phasepoly` — canonical phase-polynomial
   fingerprints for the {CNOT, X, Rz} fragment, decided exactly;
5. :mod:`repro.analysis.cost` — a DD-vs-ZX effort model feeding the
   strategy advisor.

Entry points:

* :func:`analyze_pair` — run all passes, return a
  :class:`~repro.analysis.report.StaticAnalysisReport`;
* :func:`run_prepass` — the manager's pre-pass: returns a short-circuit
  :class:`~repro.ec.results.EquivalenceCheckingResult` for sound NEQ
  verdicts, plus the report for the advisor/statistics;
* :func:`analysis_check` — the standalone ``analysis`` strategy (also
  the fuzz oracle's seventh participant): sound verdicts map to
  ``NOT_EQUIVALENT`` / ``EQUIVALENT_UP_TO_GLOBAL_PHASE``, anything else
  degrades to ``NO_INFORMATION`` — never a guess.

Everything in this package must stay *sound*: a verdict is only emitted
when backed by an exact argument (local factor mismatch, isolated
fragment trace defect, affine-map or achievable-phase mismatch).  The
differential fuzz oracle cross-checks this against dense ground truth.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

from repro.analysis.cost import (
    Advice,
    CostEstimate,
    DEFAULT_SCHEDULE,
    PORTFOLIO_STRATEGIES,
    PortfolioPlan,
    PortfolioSlot,
    advise,
    circuit_depth,
    estimate_cost,
    seed_portfolio,
)
from repro.analysis.gateset import (
    GateSetProfile,
    is_phase_poly_operation,
    profile_gate_set,
)
from repro.analysis.interaction import (
    MAX_FRAGMENT_QUBITS,
    fragment_isolation_check,
    interaction_fingerprint,
    union_components,
)
from repro.analysis.phasepoly import (
    PhasePolynomial,
    compare_phase_polynomials,
    extract_phase_polynomial,
    phase_polynomial_check,
)
from repro.analysis.report import (
    StaticAnalysisReport,
    VERDICT_EQUIVALENT_UP_TO_GLOBAL_PHASE,
    VERDICT_NOT_EQUIVALENT,
    VERDICT_UNDECIDED,
    format_report,
)
from repro.analysis.support import support_check, wire_profiles
from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import _check_deadline
from repro.ec.permutations import to_logical_form
from repro.ec.results import (
    Equivalence,
    EquivalenceCheckingResult,
    EquivalenceCheckingTimeout,
)
from repro.perf.counters import PerfCounters

__all__ = [
    "Advice",
    "CostEstimate",
    "DEFAULT_SCHEDULE",
    "GateSetProfile",
    "MAX_FRAGMENT_QUBITS",
    "PORTFOLIO_STRATEGIES",
    "PhasePolynomial",
    "PortfolioPlan",
    "PortfolioSlot",
    "StaticAnalysisReport",
    "VERDICT_EQUIVALENT_UP_TO_GLOBAL_PHASE",
    "VERDICT_NOT_EQUIVALENT",
    "VERDICT_UNDECIDED",
    "advise",
    "analysis_check",
    "analyze_pair",
    "circuit_depth",
    "compare_phase_polynomials",
    "estimate_cost",
    "extract_phase_polynomial",
    "format_report",
    "fragment_isolation_check",
    "interaction_fingerprint",
    "is_phase_poly_operation",
    "phase_polynomial_check",
    "profile_gate_set",
    "run_prepass",
    "seed_portfolio",
    "support_check",
    "to_logical_form",
    "union_components",
    "wire_profiles",
]


def analyze_pair(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
    counters: Optional[PerfCounters] = None,
) -> StaticAnalysisReport:
    """Run all five static passes over a circuit pair.

    Respects the cooperative ``deadline`` between passes, charges wall
    time to ``analysis.*`` phases of ``counters`` when given, and never
    constructs a DD or ZX diagram (isolated-fragment comparison builds
    dense matrices of at most ``2^MAX_FRAGMENT_QUBITS``).
    """
    config = configuration or Configuration()
    counters = counters if counters is not None else PerfCounters()
    started = time.perf_counter()
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    passes_run = []

    with counters.phase("analysis.logical_form"):
        logical1, _ = to_logical_form(
            circuit1,
            num_qubits,
            elide_permutations=config.elide_permutations,
            reconstruct=config.reconstruct_swaps,
        )
        logical2, _ = to_logical_form(
            circuit2,
            num_qubits,
            elide_permutations=config.elide_permutations,
            reconstruct=config.reconstruct_swaps,
        )

    # The support and fragment passes multiply out gate matrices, which
    # symbolic parameters cannot do; the remaining passes (gate-set
    # profile, symbolic phase polynomial, cost model) stay sound for
    # every valuation, so a symbolic pair skips just the dense passes.
    from repro.circuit.symbolic import is_symbolic_circuit

    symbolic = is_symbolic_circuit(logical1) or is_symbolic_circuit(
        logical2
    )

    _check_deadline(deadline)
    with counters.phase("analysis.gateset"):
        profiles = (profile_gate_set(logical1), profile_gate_set(logical2))
        passes_run.append("gateset")

    witness: Optional[Dict[str, object]] = None
    proof_details: Optional[Dict[str, object]] = None

    _check_deadline(deadline)
    support_summary: Dict[str, object] = {"kind": "skipped_symbolic"}
    if not symbolic:
        with counters.phase("analysis.support"):
            support_witness, support_summary = support_check(
                logical1, logical2, num_qubits
            )
            passes_run.append("support")
        if support_witness is not None:
            witness = support_witness
            counters.count("analysis.support_witnesses")

    _check_deadline(deadline)
    interaction_summary: Dict[str, object] = {
        "fingerprints": [
            interaction_fingerprint(logical1),
            interaction_fingerprint(logical2),
        ]
    }
    if not symbolic:
        with counters.phase("analysis.interaction"):
            fragment_witness, fragment_proof, fragment_summary = (
                fragment_isolation_check(logical1, logical2, num_qubits)
            )
            interaction_summary.update(fragment_summary)
            passes_run.append("interaction")
        if witness is None and fragment_witness is not None:
            witness = fragment_witness
            counters.count("analysis.fragment_witnesses")
        if fragment_proof is not None:
            proof_details = {"pass": "interaction", "kind": "fragment_factors"}

    _check_deadline(deadline)
    phase_summary: Dict[str, object] = {"kind": "not_applicable"}
    if all(p.phase_poly_compatible for p in profiles):
        with counters.phase("analysis.phase_polynomial"):
            phase_verdict, phase_summary = phase_polynomial_check(
                logical1, logical2
            )
            passes_run.append("phase_polynomial")
        if witness is None and phase_verdict == VERDICT_NOT_EQUIVALENT:
            witness = dict(phase_summary)
            counters.count("analysis.phase_poly_witnesses")
        if (
            phase_verdict == VERDICT_EQUIVALENT_UP_TO_GLOBAL_PHASE
            and proof_details is None
        ):
            proof_details = {
                "pass": "phase_polynomial",
                "kind": str(phase_summary.get("kind", "")),
            }

    _check_deadline(deadline)
    with counters.phase("analysis.cost_model"):
        estimate = estimate_cost((logical1, logical2), profiles)
        advice = advise(profiles, estimate)
        passes_run.append("cost_model")

    if witness is not None:
        verdict = VERDICT_NOT_EQUIVALENT
    elif proof_details is not None:
        verdict = VERDICT_EQUIVALENT_UP_TO_GLOBAL_PHASE
        witness = proof_details
    else:
        verdict = VERDICT_UNDECIDED
    counters.count("analysis.runs")
    return StaticAnalysisReport(
        verdict=verdict,
        witness=witness,
        profiles=profiles,
        support=support_summary,
        interaction=interaction_summary,
        phase_polynomial=phase_summary,
        estimate=estimate,
        advice=advice,
        passes_run=tuple(passes_run),
        time=time.perf_counter() - started,
    )


def analysis_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """The standalone ``analysis`` strategy: static passes only.

    Sound verdicts map onto the usual result vocabulary; an undecided
    report degrades to ``NO_INFORMATION`` — the analyzer never guesses.
    """
    started = time.perf_counter()
    counters = PerfCounters()
    report = analyze_pair(
        circuit1, circuit2, configuration, deadline, counters
    )
    if report.is_sound_neq:
        equivalence = Equivalence.NOT_EQUIVALENT
    elif report.is_sound_eq:
        equivalence = Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
    else:
        equivalence = Equivalence.NO_INFORMATION
    return EquivalenceCheckingResult(
        equivalence,
        "analysis",
        time.perf_counter() - started,
        {
            "analysis": report.to_dict(),
            "perf": counters.as_dict(),
        },
    )


def run_prepass(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Configuration,
    start: float,
    deadline: Optional[float] = None,
) -> Tuple[Optional[EquivalenceCheckingResult], Optional[StaticAnalysisReport]]:
    """The manager's static pre-pass.

    Returns ``(short_circuit, report)``.  ``short_circuit`` is a
    finished ``NOT_EQUIVALENT`` result when the analyzer holds a sound
    NEQ witness (the spec'd short-circuit; positive proofs do *not*
    short-circuit the configured checker — they only inform the
    advisor).  ``report`` is ``None`` only if the pre-pass itself failed
    and was swallowed (the pre-pass must never break a check).
    """
    counters = PerfCounters()
    try:
        report = analyze_pair(
            circuit1, circuit2, configuration, deadline, counters
        )
    except EquivalenceCheckingTimeout:
        raise
    except Exception:
        # A pre-pass bug must degrade to "no pre-pass", not take the
        # actual check down with it; timeouts propagate normally above.
        return None, None
    if report.is_sound_neq:
        counters.count("analysis.short_circuits")
        result = EquivalenceCheckingResult(
            Equivalence.NOT_EQUIVALENT,
            configuration.strategy,
            time.monotonic() - start,
            {
                "analysis": report.to_dict(),
                "perf": counters.as_dict(),
            },
        )
        return result, report
    return None, report
