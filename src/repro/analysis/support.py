"""Qubit-support and idle-wire analysis (static pass 1).

The pass computes, per wire, how many operations touch it and — when a
wire is touched by *single-qubit uncontrolled gates only* — the exact
2×2 unitary the circuit applies to it.  On such a wire the full circuit
unitary factorizes as ``U_wire ⊗ U_rest``, so two circuits can only be
equivalent (even up to global phase) if their per-wire factors are
proportional.  A non-proportional pair of factors is therefore a *sound*
non-equivalence witness, obtained without building any DD or ZX diagram.

Soundness notes:

* A bare support mismatch is **not** a witness: a wire touched by
  ``x; x`` carries the identity despite a non-empty support.  The pass
  only ever rules on wires whose exact local unitary is known on *both*
  sides (an untouched wire carries the identity).
* Any multi-qubit operation touching a wire disqualifies it — the wire
  may be entangled and no local statement is sound.  The interaction
  pass (:mod:`repro.analysis.interaction`) generalizes to small isolated
  fragments instead.

Inputs must already be in *logical form* (layouts and output
permutations folded in, see :func:`repro.ec.permutations.to_logical_form`)
so that physically-permuted wires are compared correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
from numpy.typing import NDArray

from repro.circuit.circuit import QuantumCircuit

#: Claim non-equivalence only when the proportionality defect clearly
#: exceeds accumulated float error (|tr(U†V)| is 2 exactly iff U ∝ V).
_NEQ_MARGIN = 1e-6

ComplexMatrix = NDArray[np.complex128]


@dataclass(frozen=True)
class WireProfile:
    """Static facts about a single wire of one circuit.

    Attributes:
        wire: The wire index (logical, post-layout).
        gate_count: Operations touching the wire.
        multi_qubit_gates: Of those, operations touching other wires too.
        local_unitary: The exact 2×2 unitary carried by the wire when it
            is touched by single-qubit gates only (identity for an idle
            wire); ``None`` when a multi-qubit gate makes the local
            action unknowable statically.
    """

    wire: int
    gate_count: int
    multi_qubit_gates: int
    local_unitary: Optional[ComplexMatrix]

    @property
    def idle(self) -> bool:
        return self.gate_count == 0


def wire_profiles(
    circuit: QuantumCircuit, num_qubits: Optional[int] = None
) -> List[WireProfile]:
    """Per-wire gate reachability plus exact local unitaries.

    ``num_qubits`` pads the profile list (wires beyond the circuit's
    width are idle) so differently-sized circuits compare uniformly.
    """
    width = num_qubits if num_qubits is not None else circuit.num_qubits
    gate_count = [0] * width
    multi = [0] * width
    local: List[Optional[ComplexMatrix]] = [
        np.eye(2, dtype=np.complex128) for _ in range(width)
    ]
    for op in circuit:
        qubits = op.qubits
        for q in qubits:
            gate_count[q] += 1
        if len(qubits) == 1:
            q = qubits[0]
            if local[q] is not None:
                matrix = np.asarray(op.matrix(), dtype=np.complex128)
                local[q] = matrix @ local[q]
        else:
            for q in qubits:
                multi[q] += 1
                local[q] = None
    return [
        WireProfile(w, gate_count[w], multi[w], local[w])
        for w in range(width)
    ]


def local_unitaries_proportional(
    u: ComplexMatrix, v: ComplexMatrix
) -> Tuple[bool, float]:
    """Decide ``U ∝ V`` for 2×2 unitaries via ``|tr(U†V)| = 2``.

    Returns ``(proportional, defect)`` where ``defect = 2 - |tr(U†V)|``
    is 0 exactly for proportional unitaries and grows towards 2 (or 4
    for anti-proportional traces) as they diverge.
    """
    overlap = abs(complex(np.trace(u.conj().T @ v)))
    defect = 2.0 - overlap
    return defect <= _NEQ_MARGIN, defect


def support_check(
    logical1: QuantumCircuit,
    logical2: QuantumCircuit,
    num_qubits: int,
) -> Tuple[Optional[Dict[str, object]], Dict[str, object]]:
    """Compare per-wire supports and local factors of a logical pair.

    Returns ``(witness, summary)``.  ``witness`` is ``None`` unless a
    wire carries provably different local unitaries on the two sides —
    a sound non-equivalence witness.  ``summary`` always reports the
    support statistics feeding the cost model and the CLI report.
    """
    profiles1 = wire_profiles(logical1, num_qubits)
    profiles2 = wire_profiles(logical2, num_qubits)
    idle_both = 0
    compared = 0
    witness: Optional[Dict[str, object]] = None
    worst_defect = 0.0
    for p1, p2 in zip(profiles1, profiles2):
        if p1.idle and p2.idle:
            idle_both += 1
            continue
        if p1.local_unitary is None or p2.local_unitary is None:
            continue
        compared += 1
        proportional, defect = local_unitaries_proportional(
            p1.local_unitary, p2.local_unitary
        )
        worst_defect = max(worst_defect, defect)
        if not proportional and witness is None:
            kind = (
                "idle_wire_mismatch"
                if p1.idle or p2.idle
                else "local_wire_mismatch"
            )
            witness = {
                "pass": "support",
                "kind": kind,
                "wire": p1.wire,
                "trace_defect": round(defect, 9),
                "gates": [p1.gate_count, p2.gate_count],
            }
    summary: Dict[str, object] = {
        "idle_wires_both": idle_both,
        "local_wires_compared": compared,
        "worst_trace_defect": round(worst_defect, 9),
        "support": [
            sorted(p.wire for p in profiles1 if not p.idle),
            sorted(p.wire for p in profiles2 if not p.idle),
        ],
    }
    return witness, summary
