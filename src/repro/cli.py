"""Command-line interface.

Mirrors the way the paper's tools are driven in practice ("Using either
method merely requires a few lines of code") as a shell command::

    python -m repro verify original.qasm compiled.qasm --strategy combined
    python -m repro analyze original.qasm compiled.qasm
    python -m repro compile circuit.qasm --device line:5 -o compiled.qasm
    python -m repro stats circuit.qasm
    python -m repro bench --use-case compiled --scale small
    python -m repro fuzz --seed 0 --budget 300 --family clifford_t
    python -m repro serve --workers 4 --cache cache.jsonl
    python -m repro submit original.qasm compiled.qasm
    python -m repro soak --jobs 200 --seed 0

Because OpenQASM 2.0 has no syntax for layout metadata, ``compile`` writes
a JSON sidecar (``<out>.layout.json``) with the initial layout and output
permutation, and ``verify`` picks it up automatically (or via
``--layout``).

Exit codes of ``verify``: 0 = considered equivalent, 1 = proven
non-equivalent, 2 = no information / timeout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.circuit import circuit_from_qasm, circuit_to_qasm
from repro.circuit.circuit import QuantumCircuit


def _load_circuit(path: str, layout_path: Optional[str] = None) -> QuantumCircuit:
    text = Path(path).read_text()
    circuit = circuit_from_qasm(text, name=Path(path).stem)
    sidecar = Path(layout_path) if layout_path else Path(path + ".layout.json")
    if sidecar.exists():
        metadata = json.loads(sidecar.read_text())
        circuit.initial_layout = {
            int(k): v for k, v in metadata.get("initial_layout", {}).items()
        }
        circuit.output_permutation = {
            int(k): v
            for k, v in metadata.get("output_permutation", {}).items()
        }
    return circuit


def _parse_device(spec: str):
    from repro.compile import (
        grid_architecture,
        line_architecture,
        manhattan_architecture,
        ring_architecture,
    )

    if spec == "manhattan":
        return manhattan_architecture()
    kind, _, arg = spec.partition(":")
    if kind == "line":
        return line_architecture(int(arg))
    if kind == "ring":
        return ring_architecture(int(arg))
    if kind == "grid":
        rows, _, cols = arg.partition("x")
        return grid_architecture(int(rows), int(cols))
    raise SystemExit(
        f"unknown device {spec!r} (use manhattan, line:N, ring:N, grid:RxC)"
    )


def _print_statistics(statistics: dict, indent: int = 1) -> None:
    """Print a (possibly nested) statistics dict, one ``key: value`` per line."""
    pad = "  " * indent
    for key, value in sorted(statistics.items()):
        if isinstance(value, dict):
            print(f"{pad}{key}:")
            _print_statistics(value, indent + 1)
        else:
            print(f"{pad}{key}: {value}")


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.ec import Configuration, EquivalenceCheckingManager
    from repro.ec.results import Equivalence

    if args.portfolio and args.strategy != "combined":
        raise SystemExit(
            "--portfolio races the combined schedule; it cannot be used "
            f"with --strategy {args.strategy}"
        )
    circuit1 = _load_circuit(args.circuit1, args.layout1)
    circuit2 = _load_circuit(args.circuit2, args.layout2)
    config_kwargs = {}
    if args.compute_table_size is not None:
        # 0 selects the unbounded dict-backed tables.
        config_kwargs["compute_table_size"] = args.compute_table_size or None
    configuration = Configuration(
        strategy=args.strategy,
        portfolio=args.portfolio,
        static_analysis=not args.no_static_analysis,
        oracle=args.oracle,
        num_simulations=args.simulations,
        stimuli_type=args.stimuli,
        timeout=args.timeout,
        seed=args.seed,
        direct_application=not args.legacy_kernels,
        incremental_zx=not args.legacy_zx_simp,
        array_dd=not args.legacy_dd,
        memory_limit_mb=args.memory_limit,
        max_retries=args.retries,
        num_instantiations=args.instantiations,
        parameterized_symbolic=not args.instantiate_only,
        **config_kwargs,
    )
    if args.isolate:
        from repro.harness import run_check

        result = run_check(circuit1, circuit2, configuration, isolate=True)
    else:
        result = EquivalenceCheckingManager(
            circuit1, circuit2, configuration
        ).run()
    failure = result.failure
    if failure is not None:
        print(
            f"check failed: {failure.get('kind')} "
            f"({failure.get('message')})",
            file=sys.stderr,
        )
    print(f"{result.equivalence.value}  [{result.strategy}]  {result.time:.3f}s")
    if args.verbose:
        _print_statistics(result.statistics)
    if result.considered_equivalent:
        return 0
    if result.equivalence is Equivalence.NOT_EQUIVALENT:
        return 1
    return 2


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        analyze_pair,
        circuit_depth,
        format_report,
        interaction_fingerprint,
        profile_gate_set,
    )
    from repro.ec import Configuration

    circuit1 = _load_circuit(args.circuit1, args.layout1)
    if args.circuit2 is None:
        # Single-circuit mode: report the static profile only.
        profile = profile_gate_set(circuit1)
        payload = profile.to_dict()
        payload["depth"] = circuit_depth(circuit1)
        payload["interaction_fingerprint"] = interaction_fingerprint(circuit1)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"circuit:   {circuit1.name} ({circuit1.num_qubits} qubits)")
            _print_statistics(payload)
        return 0
    circuit2 = _load_circuit(args.circuit2, args.layout2)
    configuration = Configuration(timeout=args.timeout, seed=args.seed)
    from repro.circuit.symbolic import (
        circuit_parameters,
        instantiate_circuit,
        is_symbolic_circuit,
    )

    symbolic_block = None
    symbolic_neq = False
    if is_symbolic_circuit(circuit1) or is_symbolic_circuit(circuit2):
        # The structural passes build dense unitaries, so a symbolic
        # pair is analyzed at the all-zeros valuation; the symbolic
        # phase-polynomial comparison (valid for *all* valuations) is
        # reported alongside.
        from repro.analysis.phasepoly import phase_polynomial_check
        from repro.ec.permutations import to_logical_form

        variables = sorted(
            set(circuit_parameters(circuit1))
            | set(circuit_parameters(circuit2))
        )
        num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
        logical1, _ = to_logical_form(
            circuit1, num_qubits,
            configuration.elide_permutations, configuration.reconstruct_swaps,
        )
        logical2, _ = to_logical_form(
            circuit2, num_qubits,
            configuration.elide_permutations, configuration.reconstruct_swaps,
        )
        verdict, details = phase_polynomial_check(logical1, logical2)
        symbolic_neq = verdict == "not_equivalent"
        symbolic_block = {
            "variables": variables,
            "instantiated_at": "all-zeros valuation",
            "phase_polynomial": {"verdict": verdict, **details},
        }
        zeros = {name: 0.0 for name in variables}
        circuit1 = instantiate_circuit(circuit1, zeros)
        circuit2 = instantiate_circuit(circuit2, zeros)
    report = analyze_pair(circuit1, circuit2, configuration)
    if args.json:
        payload = report.detail_dict()
        if symbolic_block is not None:
            payload["symbolic"] = symbolic_block
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(report))
        if symbolic_block is not None:
            print("symbolic:")
            _print_statistics(symbolic_block)
    return 1 if (report.is_sound_neq or symbolic_neq) else 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.compile import compile_circuit

    circuit = _load_circuit(args.circuit)
    device = _parse_device(args.device)
    compiled = compile_circuit(
        circuit,
        device,
        layout_method=args.layout_method,
        routing_method=args.routing_method,
        optimization_level=args.optimization_level,
    )
    out_path = Path(args.output)
    out_path.write_text(circuit_to_qasm(compiled))
    sidecar = Path(str(out_path) + ".layout.json")
    sidecar.write_text(
        json.dumps(
            {
                "initial_layout": compiled.initial_layout,
                "output_permutation": compiled.output_permutation,
            },
            indent=2,
        )
    )
    print(
        f"compiled {circuit.name}: {len(circuit)} -> {len(compiled)} gates "
        f"on {device.name}; wrote {out_path} (+ layout sidecar)"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    counts = circuit.count_ops()
    print(f"name:            {circuit.name}")
    print(f"qubits:          {circuit.num_qubits}")
    print(f"gates:           {len(circuit)}")
    print(f"depth:           {circuit.depth()}")
    print(f"two-qubit gates: {circuit.two_qubit_gate_count()}")
    print(f"t gates:         {circuit.t_count()}")
    print(f"non-clifford:    {circuit.non_clifford_count()}")
    print("counts:          " + ", ".join(
        f"{name}={count}" for name, count in sorted(counts.items())
    ))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.study import main as study_main

    forwarded = ["--use-case", args.use_case, "--scale", args.scale,
                 "--timeout", str(args.timeout), "--seed", str(args.seed)]
    if args.portfolio:
        forwarded.append("--portfolio")
    if args.isolate:
        forwarded.append("--isolate")
    if args.memory_limit is not None:
        forwarded += ["--memory-limit", str(args.memory_limit)]
    forwarded += ["--retries", str(args.retries)]
    if args.journal:
        forwarded += ["--journal", args.journal]
    if args.resume:
        forwarded.append("--resume")
    return study_main(forwarded)


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzSettings, run_fuzz

    settings = FuzzSettings(
        seed=args.seed,
        budget=args.budget,
        family=args.family,
        num_qubits=args.qubits,
        num_gates=args.gates,
        corpus_dir=args.corpus,
        isolate=args.isolate,
        portfolio=args.portfolio,
        check_timeout=args.timeout,
        max_seconds=args.max_seconds,
    )
    outcome = run_fuzz(settings, log=print)
    summary = outcome.describe()
    print(
        f"fuzz[{summary['family']}] seed={summary['seed']}: "
        f"{summary['pairs_run']} pairs in {summary['seconds']}s, "
        f"{summary['disagreements']} disagreement(s), "
        f"{summary['missed_by_simulation']} missed by simulation, "
        f"{summary['leaked_children']} leaked child(ren)"
    )
    for disagreement in outcome.disagreements:
        print(f"  repro: {disagreement.path}")
    return outcome.exit_code


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import RetryPolicy
    from repro.service import (
        PoolConfig,
        QuarantineStore,
        ServiceServer,
        VerdictCache,
        WorkerPool,
    )

    pool = WorkerPool(
        PoolConfig(
            workers=args.workers,
            memory_mb=args.memory_limit,
            max_jobs_per_worker=args.max_jobs_per_worker,
            max_worker_rss_mb=args.max_worker_rss,
            queue_depth=args.queue_depth,
            restart_backoff=RetryPolicy(
                max_retries=0,
                backoff_base=0.05,
                backoff_max=2.0,
                jitter=0.5,
                jitter_seed=args.seed,
            ),
        ),
        cache=VerdictCache(args.cache) if args.cache else None,
        quarantine=QuarantineStore(args.quarantine)
        if args.quarantine
        else None,
    )
    server = ServiceServer(pool, args.socket)
    server.install_signal_handlers()
    server.start()
    print(
        f"repro service: {args.workers} worker(s) on {args.socket} "
        f"(queue depth {args.queue_depth}); Ctrl-C drains and exits"
    )
    server.serve_forever()
    counters = pool.counters.counters
    print(
        "repro service: drained and stopped "
        f"({counters.get('service.jobs_completed', 0)} job(s) served, "
        f"{counters.get('cache.hit', 0)} cache hit(s), "
        f"{counters.get('service.quarantined', 0)} quarantined)"
    )
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.ec import Configuration
    from repro.service import ServiceClient

    if len(args.circuits) % 2 != 0:
        raise SystemExit(
            "submit expects an even number of circuits (pairs of "
            "original/compiled QASM files)"
        )
    pairs = [
        (_load_circuit(args.circuits[i]), _load_circuit(args.circuits[i + 1]))
        for i in range(0, len(args.circuits), 2)
    ]
    configuration = Configuration(timeout=args.timeout, seed=args.seed)
    with ServiceClient(args.socket) as client:
        results = client.submit_batch(pairs, configuration)
    worst = 0
    for (index, result) in enumerate(results):
        name1 = args.circuits[2 * index]
        name2 = args.circuits[2 * index + 1]
        print(f"{name1} vs {name2}: {result['equivalence']}")
        equivalence = result["equivalence"]
        if equivalence == "not_equivalent":
            worst = max(worst, 1)
        elif equivalence in ("no_information", "timeout"):
            worst = max(worst, 2)
    return worst


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.service import SoakSettings, run_soak

    report = run_soak(
        SoakSettings(
            seed=args.seed,
            jobs=args.jobs,
            workers=args.workers,
            fault_rate=args.fault_rate,
            poison_pairs=args.poison_pairs,
            check_timeout=args.timeout,
        ),
        log=print,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Equivalence checking paradigms case-study toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    verify = sub.add_parser("verify", help="check two QASM circuits")
    verify.add_argument("circuit1")
    verify.add_argument("circuit2")
    verify.add_argument(
        "--strategy",
        default="combined",
        choices=(
            "construction", "alternating", "simulation", "zx", "combined",
            "stabilizer", "state", "analysis", "parameterized",
        ),
    )
    verify.add_argument(
        "--instantiations", type=int, default=8, metavar="N",
        help="seeded random valuations for the parameterized strategy's "
        "instantiation fallback",
    )
    verify.add_argument(
        "--instantiate-only", action="store_true",
        help="skip the symbolic phase-polynomial/ZX paths of the "
        "parameterized strategy (instantiate-only baseline)",
    )
    verify.add_argument(
        "--portfolio", action="store_true",
        help="race all applicable strategies as concurrent sandboxed "
        "children; first sound verdict wins (requires --strategy combined)",
    )
    verify.add_argument(
        "--no-static-analysis", action="store_true",
        help="skip the static analysis pre-pass (sound NEQ short-circuit "
        "and strategy advisor) in front of the configured checker",
    )
    verify.add_argument(
        "--oracle", default="proportional",
        choices=("naive", "proportional", "lookahead", "compilation_flow"),
    )
    verify.add_argument("--simulations", type=int, default=16)
    verify.add_argument(
        "--stimuli", default="classical",
        choices=("classical", "local_quantum", "global_quantum"),
    )
    verify.add_argument("--timeout", type=float, default=None)
    verify.add_argument("--seed", type=int, default=None)
    verify.add_argument("--layout1", default=None)
    verify.add_argument("--layout2", default=None)
    verify.add_argument(
        "--legacy-kernels", action="store_true",
        help="disable the direct gate-application fast path (A/B baseline)",
    )
    verify.add_argument(
        "--legacy-zx-simp", action="store_true",
        help="disable the incremental worklist ZX simplifier and use the "
        "rescan-to-fixpoint drivers (A/B baseline)",
    )
    verify.add_argument(
        "--legacy-dd", action="store_true",
        help="use the object-based DD engine instead of the array-native "
        "node store with batched stimuli (A/B baseline)",
    )
    verify.add_argument(
        "--compute-table-size", type=int, default=None,
        metavar="SLOTS",
        help="slots per DD compute table (default: package default; "
        "0 = unbounded dict tables)",
    )
    verify.add_argument(
        "--isolate", action="store_true",
        help="run the check in a sandboxed subprocess with a hard "
        "(SIGKILL) timeout and the --memory-limit ceiling",
    )
    verify.add_argument(
        "--memory-limit", type=int, default=None, metavar="MB",
        help="address-space headroom for the isolated check, in MiB",
    )
    verify.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="bounded retries of transient (crash/worker-lost) failures",
    )
    verify.add_argument("-v", "--verbose", action="store_true")
    verify.set_defaults(func=_cmd_verify)

    analyze = sub.add_parser(
        "analyze",
        help="static analysis of one circuit (profile) or a pair "
        "(sound pre-checks + strategy advice; exit 1 = proven "
        "non-equivalent, 0 otherwise)",
    )
    analyze.add_argument("circuit1")
    analyze.add_argument("circuit2", nargs="?", default=None)
    analyze.add_argument("--layout1", default=None)
    analyze.add_argument("--layout2", default=None)
    analyze.add_argument("--timeout", type=float, default=None)
    analyze.add_argument("--seed", type=int, default=None)
    analyze.add_argument(
        "--json", action="store_true",
        help="emit the full nested report as JSON",
    )
    analyze.set_defaults(func=_cmd_analyze)

    compile_cmd = sub.add_parser("compile", help="compile a QASM circuit")
    compile_cmd.add_argument("circuit")
    compile_cmd.add_argument("--device", default="manhattan")
    compile_cmd.add_argument("-o", "--output", required=True)
    compile_cmd.add_argument(
        "--layout-method", default="greedy", choices=("trivial", "greedy")
    )
    compile_cmd.add_argument(
        "--routing-method", default="basic", choices=("basic", "lookahead")
    )
    compile_cmd.add_argument("--optimization-level", type=int, default=1)
    compile_cmd.set_defaults(func=_cmd_compile)

    stats = sub.add_parser("stats", help="print circuit statistics")
    stats.add_argument("circuit")
    stats.set_defaults(func=_cmd_stats)

    bench = sub.add_parser("bench", help="run the Table 1 harness")
    bench.add_argument(
        "--use-case", default="both",
        choices=("compiled", "optimized", "both"),
    )
    bench.add_argument("--scale", default="small", choices=("small", "paper"))
    bench.add_argument("--timeout", type=float, default=60.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--portfolio", action="store_true",
        help="run the t_dd cells as a concurrent strategy portfolio "
        "(race sandboxed checkers, first sound verdict wins)",
    )
    bench.add_argument(
        "--isolate", action="store_true",
        help="run every cell in a sandboxed subprocess (hard timeout)",
    )
    bench.add_argument(
        "--memory-limit", type=int, default=None, metavar="MB",
        help="address-space headroom per isolated cell, in MiB",
    )
    bench.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="bounded retries of transient failures",
    )
    bench.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed cells to a JSONL journal",
    )
    bench.add_argument(
        "--resume", action="store_true",
        help="restore completed cells from --journal",
    )
    bench.set_defaults(func=_cmd_bench)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the checkers (exit 0 = all agreed, "
        "2 = minimized repro written)",
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--budget", type=int, default=100, metavar="N",
        help="number of labeled pairs to generate and cross-check",
    )
    fuzz.add_argument(
        "--family", default="clifford_t",
        choices=(
            "clifford", "clifford_t", "rotations", "ancilla",
            "parameterized",
        ),
    )
    fuzz.add_argument(
        "--qubits", type=int, default=None,
        help="fix the data-qubit count (default: sampled per family)",
    )
    fuzz.add_argument(
        "--gates", type=int, default=None,
        help="fix the base gate count (default: sampled per family)",
    )
    fuzz.add_argument(
        "--corpus", default="corpus", metavar="DIR",
        help="directory for minimized repros and the corpus journal",
    )
    fuzz.add_argument(
        "--timeout", type=float, default=10.0,
        help="per-check timeout in seconds",
    )
    fuzz.add_argument(
        "--max-seconds", type=float, default=None, metavar="S",
        help="wall-clock cap for the whole campaign",
    )
    fuzz.add_argument(
        "--isolate", action="store_true",
        help="run every oracle check in a sandboxed subprocess",
    )
    fuzz.add_argument(
        "--portfolio", action="store_true",
        help="add the concurrent strategy portfolio as an extra oracle "
        "participant and cross-check its verdicts",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    serve = sub.add_parser(
        "serve",
        help="run the supervised checking service on a local socket "
        "(long-lived worker pool + verdict cache + poison quarantine)",
    )
    serve.add_argument(
        "--socket", default="repro-service.sock", metavar="PATH",
        help="AF_UNIX socket path the service listens on",
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--queue-depth", type=int, default=1024,
        help="bound on unresolved jobs; beyond it submissions are "
        "rejected with a retry-after hint",
    )
    serve.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persist the verdict cache to this JSONL journal",
    )
    serve.add_argument(
        "--quarantine", default=None, metavar="PATH",
        help="persist poison-pair records to this JSONL journal",
    )
    serve.add_argument(
        "--memory-limit", type=int, default=None, metavar="MB",
        help="address-space headroom per worker, in MiB",
    )
    serve.add_argument(
        "--max-jobs-per-worker", type=int, default=64,
        help="recycle a worker after this many jobs",
    )
    serve.add_argument(
        "--max-worker-rss", type=float, default=1024.0, metavar="MB",
        help="recycle a worker whose resident set exceeds this",
    )
    serve.add_argument(
        "--seed", type=int, default=0,
        help="seed of the deterministic restart-backoff jitter",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit QASM circuit pairs to a running service "
        "(exit codes as verify, worst verdict wins)",
    )
    submit.add_argument(
        "circuits", nargs="+",
        help="an even list of QASM files: original1 compiled1 ...",
    )
    submit.add_argument("--socket", default="repro-service.sock")
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.set_defaults(func=_cmd_submit)

    soak = sub.add_parser(
        "soak",
        help="deterministic chaos campaign against the service "
        "(exit 0 = all invariants held)",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--jobs", type=int, default=200)
    soak.add_argument("--workers", type=int, default=4)
    soak.add_argument("--fault-rate", type=float, default=0.15)
    soak.add_argument("--poison-pairs", type=int, default=2)
    soak.add_argument(
        "--timeout", type=float, default=5.0,
        help="cooperative per-check timeout during the soak",
    )
    soak.add_argument(
        "--json", action="store_true",
        help="print the full audited report as JSON",
    )
    soak.set_defaults(func=_cmd_soak)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
