"""Circuit optimization passes.

These passes produce the paper's second use-case — "verifying the
equivalence of two different implementations of the same functionality —
an original circuit and an optimized version" (Section 6.1).  The default
pipeline mirrors a light (O1-style) optimization level:

* cancellation of adjacent inverse gate pairs (H·H, CX·CX, S·S†, ...),
* merging of adjacent same-axis rotations with angle addition and removal
  of (near-)zero rotations,
* optional resynthesis of single-qubit runs into one ``u3`` gate.

All passes run to a fixpoint and preserve the circuit's layout metadata.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation

_TWO_PI = 2.0 * math.pi

#: Rotation gates whose adjacent applications merge by angle addition.
_MERGEABLE = {"rx", "ry", "rz", "p", "rzz", "rxx"}

#: Gate pairs (unordered) that cancel when adjacent on identical qubits.
_INVERSE_NAMES = {
    ("s", "sdg"), ("t", "tdg"), ("sx", "sxdg"),
}
_SELF_INVERSE = {"id", "x", "y", "z", "h", "swap"}


def _are_inverse(a: Operation, b: Operation, tol: float) -> bool:
    """True if ``b`` undoes ``a`` when applied immediately after it."""
    if a.targets != b.targets or a.controls != b.controls:
        return False
    if a.name == b.name:
        if a.name in _SELF_INVERSE and not a.params:
            return True
        if a.name in _MERGEABLE:
            total = (a.params[0] + b.params[0]) % _TWO_PI
            return min(total, _TWO_PI - total) < tol
        return False
    pair = tuple(sorted((a.name, b.name)))
    return pair in _INVERSE_NAMES and not a.params


def _merge(a: Operation, b: Operation, tol: float) -> Optional[Operation]:
    """Merge two adjacent rotations into one, or None if not mergeable."""
    if (
        a.name != b.name
        or a.name not in _MERGEABLE
        or a.targets != b.targets
        or a.controls != b.controls
    ):
        return None
    total = (a.params[0] + b.params[0]) % _TWO_PI
    if min(total, _TWO_PI - total) < tol:
        return Operation("id", a.targets[:1])
    return Operation(a.name, a.targets, a.controls, (total,))


def cancel_and_merge_pass(
    circuit: QuantumCircuit, tol: float = 1e-12
) -> QuantumCircuit:
    """One sweep of inverse-pair cancellation and rotation merging.

    Scans left to right keeping, per qubit, the index of the last surviving
    operation on that qubit; a new operation can only interact with its
    predecessor if that predecessor is the last survivor on *all* of its
    qubits (i.e. the two are truly adjacent in the circuit DAG).
    """
    survivors: List[Optional[Operation]] = []
    last_on_qubit: List[Optional[int]] = [None] * circuit.num_qubits

    for op in circuit:
        indices = {last_on_qubit[q] for q in op.qubits}
        previous_index = indices.pop() if len(indices) == 1 else None
        previous = (
            survivors[previous_index] if previous_index is not None else None
        )
        if previous is not None and previous.qubits == op.qubits:
            if _are_inverse(previous, op, tol):
                survivors[previous_index] = None
                for q in op.qubits:
                    last_on_qubit[q] = None
                continue
            merged = _merge(previous, op, tol)
            if merged is not None:
                if merged.name == "id":
                    survivors[previous_index] = None
                    for q in op.qubits:
                        last_on_qubit[q] = None
                else:
                    survivors[previous_index] = merged
                continue
        survivors.append(op)
        for q in op.qubits:
            last_on_qubit[q] = len(survivors) - 1

    out = QuantumCircuit(
        circuit.num_qubits,
        name=circuit.name,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )
    for op in survivors:
        if op is not None and op.name != "id":
            out.append(op)
    return out


def optimize_circuit(
    circuit: QuantumCircuit,
    level: int = 1,
    tol: float = 1e-12,
    max_rounds: int = 100,
) -> QuantumCircuit:
    """Run the optimization pipeline to a fixpoint.

    Levels: 0 — no-op copy; 1 — cancellation + rotation merging (the
    default, mirroring the paper's O1 setting); 2 — additionally fuse
    single-qubit runs into ``u3`` gates (a more aggressive resynthesis);
    3 — additionally cancel pairs separated by commuting gates
    (:func:`commutation_cancel_pass`).
    """
    result = circuit.copy()
    if level <= 0:
        return result
    for _ in range(max_rounds):
        optimized = cancel_and_merge_pass(result, tol)
        if len(optimized) == len(result):
            result = optimized
            break
        result = optimized
    if level >= 3:
        for _ in range(max_rounds):
            commuted = commutation_cancel_pass(result, tol)
            if len(commuted) == len(result):
                result = commuted
                break
            result = commuted
    if level >= 2:
        from repro.compile.decompose import _fuse_single_qubit_runs

        result = _fuse_single_qubit_runs(result)
        result = cancel_and_merge_pass(result, tol)
    result.name = f"{circuit.name}_opt"
    return result


def commutation_cancel_pass(
    circuit: QuantumCircuit, tol: float = 1e-12
) -> QuantumCircuit:
    """Cancel/merge gate pairs that meet after commuting past others.

    For each surviving operation, scan forward past operations it commutes
    with (using the sound syntactic rules of
    :func:`repro.circuit.dag.operations_commute`); if an inverse partner
    or a mergeable rotation is reached first, eliminate or merge the pair.
    A single left-to-right sweep; run inside a fixpoint loop for full
    effect (``optimize_circuit(level=3)`` does).
    """
    from repro.circuit.dag import operations_commute

    ops: List[Optional[Operation]] = list(circuit.operations)
    for i in range(len(ops)):
        op = ops[i]
        if op is None:
            continue
        for j in range(i + 1, len(ops)):
            other = ops[j]
            if other is None:
                continue
            if other.qubits == op.qubits or (
                set(other.qubits) == set(op.qubits)
            ):
                if op.qubits == other.qubits and _are_inverse(op, other, tol):
                    ops[i] = None
                    ops[j] = None
                    break
                merged = (
                    _merge(op, other, tol)
                    if op.qubits == other.qubits
                    else None
                )
                if merged is not None:
                    ops[i] = None if merged.name == "id" else merged
                    ops[j] = None
                    break
            if operations_commute(op, other):
                continue
            break
    out = QuantumCircuit(
        circuit.num_qubits,
        name=circuit.name,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )
    for op in ops:
        if op is not None and op.name != "id":
            out.append(op)
    return out
