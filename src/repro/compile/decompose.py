"""Gate decomposition: lowering to device gate sets.

The paper compiles every benchmark "to a gate set comprised of arbitrary
single qubit rotations and the CNOT gate" (Section 6.1) and notes that
pyzx "does not natively support all gates of the QASM standard (especially,
no multi-controlled Toffoli gates)", so circuits must be decomposed before
ZX-based checking.  This module provides both lowerings:

* :func:`decompose_to_cx_and_singles` — full lowering to {1-qubit gates, CX},
* :func:`decompose_for_zx` — partial lowering that keeps the two-qubit gates
  the ZX converter understands natively (CZ, SWAP, RZZ),
* :func:`decompose_to_basis` — the device-basis pass used by the compiler,
  fusing runs of single-qubit gates into a single ``u3`` via ZYZ synthesis.

Multi-controlled X/Z/phase gates use the textbook recursive scheme built on
controlled-phase halving; it needs no ancilla qubits, at the price of gate
counts exponential in the number of controls (adequate for the scaled
benchmark sizes of this reproduction; ancilla-based V-chains are an
extension documented in DESIGN.md).
"""

from __future__ import annotations

import cmath
import math
from typing import Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation

_PI = math.pi

#: Gates the ZX converter of :mod:`repro.zx.circuit_conv` handles natively.
ZX_NATIVE_GATES: Set[str] = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
    "rx", "ry", "rz", "p", "u2", "u3",
}
#: Controlled forms that stay native for ZX: CX, CZ; plus two-qubit bases.
ZX_NATIVE_TWO_QUBIT: Set[str] = {"swap", "rzz"}


def _op(name, targets, controls=(), params=()) -> Operation:
    return Operation(name, tuple(targets), tuple(controls), tuple(params))


# ---------------------------------------------------------------------------
# single-step decomposition rules
# ---------------------------------------------------------------------------
def _decompose_ccx(c1: int, c2: int, t: int) -> List[Operation]:
    """Standard 6-CNOT Clifford+T Toffoli decomposition (qelib1)."""
    return [
        _op("h", [t]),
        _op("x", [t], [c2]),
        _op("tdg", [t]),
        _op("x", [t], [c1]),
        _op("t", [t]),
        _op("x", [t], [c2]),
        _op("tdg", [t]),
        _op("x", [t], [c1]),
        _op("t", [c2]),
        _op("t", [t]),
        _op("h", [t]),
        _op("x", [c2], [c1]),
        _op("t", [c1]),
        _op("tdg", [c2]),
        _op("x", [c2], [c1]),
    ]


def _decompose_mcp(
    lam: float, controls: Tuple[int, ...], target: int
) -> List[Operation]:
    """Multi-controlled phase via the recursive halving scheme."""
    if not controls:
        return [_op("p", [target], params=[lam])]
    if len(controls) == 1:
        c = controls[0]
        return [
            _op("p", [c], params=[lam / 2]),
            _op("x", [target], [c]),
            _op("p", [target], params=[-lam / 2]),
            _op("x", [target], [c]),
            _op("p", [target], params=[lam / 2]),
        ]
    *rest, last = controls
    rest = tuple(rest)
    ops: List[Operation] = []
    ops.extend(_decompose_mcp(lam / 2, (last,), target))
    ops.extend(_decompose_mcx(rest, last))
    ops.extend(_decompose_mcp(-lam / 2, (last,), target))
    ops.extend(_decompose_mcx(rest, last))
    ops.extend(_decompose_mcp(lam / 2, rest, target))
    return ops


def _decompose_mcx(controls: Tuple[int, ...], target: int) -> List[Operation]:
    """Multi-controlled X; Toffoli for two controls, recursion above that."""
    if not controls:
        return [_op("x", [target])]
    if len(controls) == 1:
        return [_op("x", [target], controls)]
    if len(controls) == 2:
        return _decompose_ccx(controls[0], controls[1], target)
    return (
        [_op("h", [target])]
        + _decompose_mcp(_PI, controls, target)
        + [_op("h", [target])]
    )


def _decompose_controlled_single(op: Operation) -> List[Operation]:
    """One control on a single-target gate -> CX + single-qubit gates."""
    (control,) = op.controls
    (target,) = op.targets
    name = op.name
    if name == "x":
        return [op]
    if name == "z":
        return [
            _op("h", [target]),
            _op("x", [target], [control]),
            _op("h", [target]),
        ]
    if name == "y":
        return [
            _op("sdg", [target]),
            _op("x", [target], [control]),
            _op("s", [target]),
        ]
    if name == "h":
        # H = Z . RY(-pi/2)  =>  CH = CRY(-pi/2) then CZ.
        return _decompose_controlled_single(
            _op("ry", [target], [control], [-_PI / 2])
        ) + _decompose_controlled_single(_op("z", [target], [control]))
    if name == "rz":
        (theta,) = op.params
        return [
            _op("rz", [target], params=[theta / 2]),
            _op("x", [target], [control]),
            _op("rz", [target], params=[-theta / 2]),
            _op("x", [target], [control]),
        ]
    if name == "ry":
        (theta,) = op.params
        return [
            _op("ry", [target], params=[theta / 2]),
            _op("x", [target], [control]),
            _op("ry", [target], params=[-theta / 2]),
            _op("x", [target], [control]),
        ]
    if name == "rx":
        (theta,) = op.params
        return (
            [_op("h", [target])]
            + _decompose_controlled_single(_op("rz", [target], [control], [theta]))
            + [_op("h", [target])]
        )
    if name == "p":
        (lam,) = op.params
        return _decompose_mcp(lam, (control,), target)
    if name in ("s", "sdg", "t", "tdg"):
        lam = {"s": _PI / 2, "sdg": -_PI / 2, "t": _PI / 4, "tdg": -_PI / 4}[name]
        return _decompose_mcp(lam, (control,), target)
    if name in ("sx", "sxdg"):
        sign = 1.0 if name == "sx" else -1.0
        return _decompose_controlled_single(
            _op("rx", [target], [control], [sign * _PI / 2])
        ) + [_op("p", [control], params=[sign * _PI / 4])]
    if name in ("u3", "u2"):
        if name == "u2":
            theta, (phi, lam) = _PI / 2, op.params
        else:
            theta, phi, lam = op.params
        # CU3 = (P((phi+lam)/2) on control) . A . CX . B . CX . C with the
        # standard ABC decomposition (Barenco et al.).
        return [
            _op("p", [control], params=[(phi + lam) / 2]),
            _op("rz", [target], params=[(lam - phi) / 2]),
            _op("x", [target], [control]),
            _op("rz", [target], params=[-(phi + lam) / 2]),
            _op("ry", [target], params=[-theta / 2]),
            _op("x", [target], [control]),
            _op("ry", [target], params=[theta / 2]),
            _op("rz", [target], params=[phi]),
        ]
    raise ValueError(f"no controlled decomposition for gate {name!r}")


def _decompose_two_target(op: Operation) -> List[Operation]:
    """Two-target base gates -> CX + single-qubit gates (controls kept)."""
    a, b = op.targets
    if op.name == "swap":
        if op.controls:
            # CSWAP = CX(b,a) . CCX(c...,a,b) . CX(b,a)
            return [
                _op("x", [a], [b]),
                _op("x", [b], tuple(op.controls) + (a,)),
                _op("x", [a], [b]),
            ]
        return [
            _op("x", [b], [a]),
            _op("x", [a], [b]),
            _op("x", [b], [a]),
        ]
    if op.name == "rzz":
        (theta,) = op.params
        inner: List[Operation] = [
            _op("x", [b], [a]),
            _op("rz", [b], op.controls, [theta]),
            _op("x", [b], [a]),
        ]
        return inner
    if op.name == "rxx":
        (theta,) = op.params
        return (
            [_op("h", [a]), _op("h", [b])]
            + [_op("x", [b], [a]), _op("rz", [b], op.controls, [theta]), _op("x", [b], [a])]
            + [_op("h", [a]), _op("h", [b])]
        )
    if op.name == "iswap":
        ops = [
            _op("swap", (a, b), op.controls),
            _op("z", [b], tuple(op.controls) + (a,)),
            _op("s", [a], op.controls),
            _op("s", [b], op.controls),
        ]
        return ops
    raise ValueError(f"no decomposition for two-target gate {op.name!r}")


def _lower(op: Operation, native: "OpPredicate") -> List[Operation]:
    """Recursively rewrite ``op`` until every emitted op satisfies ``native``."""
    if native(op):
        return [op]
    if len(op.targets) == 2:
        replacement = _decompose_two_target(op)
    elif len(op.controls) >= 2 and op.name == "x":
        replacement = _decompose_mcx(op.controls, op.targets[0])
    elif len(op.controls) >= 2 and op.name == "z":
        replacement = (
            [_op("h", op.targets)]
            + _decompose_mcx(op.controls, op.targets[0])
            + [_op("h", op.targets)]
        )
    elif len(op.controls) >= 2 and op.name == "p":
        replacement = _decompose_mcp(op.params[0], op.controls, op.targets[0])
    elif len(op.controls) >= 2:
        raise ValueError(f"no decomposition for multi-controlled {op.name!r}")
    elif len(op.controls) == 1:
        replacement = _decompose_controlled_single(op)
    else:
        raise ValueError(f"cannot lower single-qubit gate {op.name!r}")
    result: List[Operation] = []
    for replaced in replacement:
        if replaced == op:
            result.append(replaced)
        else:
            result.extend(_lower(replaced, native))
    return result


OpPredicate = "Callable[[Operation], bool]"


def _is_cx_or_single(op: Operation) -> bool:
    if len(op.targets) != 1:
        return False
    if not op.controls:
        return True
    return len(op.controls) == 1 and op.name == "x"


def _is_zx_native(op: Operation) -> bool:
    if not op.controls:
        return op.name in ZX_NATIVE_GATES or op.name in ZX_NATIVE_TWO_QUBIT
    if len(op.controls) == 1:
        return op.name in ("x", "z")
    return False


def _lower_circuit(circuit: QuantumCircuit, native) -> QuantumCircuit:
    out = QuantumCircuit(
        circuit.num_qubits,
        name=circuit.name,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )
    for op in circuit:
        for lowered in _lower(op, native):
            out.append(lowered)
    return out


def decompose_to_cx_and_singles(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower every gate to single-qubit gates and CX."""
    return _lower_circuit(circuit, _is_cx_or_single)


def decompose_for_zx(circuit: QuantumCircuit) -> QuantumCircuit:
    """Lower only the gates the ZX converter cannot handle natively."""
    return _lower_circuit(circuit, _is_zx_native)


# ---------------------------------------------------------------------------
# single-qubit resynthesis (ZYZ)
# ---------------------------------------------------------------------------
def zyz_angles(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """ZYZ Euler angles of a 2x2 unitary.

    Returns ``(theta, phi, lam, global_phase)`` such that
    ``matrix = e^{i global_phase} u3(theta, phi, lam)`` (note that
    ``u3(theta, phi, lam) = e^{i (phi+lam)/2} RZ(phi) RY(theta) RZ(lam)``).
    """
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    phase = cmath.phase(det) / 2.0
    su2 = matrix * cmath.exp(-1j * phase)
    theta = 2.0 * math.atan2(abs(su2[1, 0]), abs(su2[0, 0]))
    if abs(su2[0, 0]) > 1e-12 and abs(su2[1, 0]) > 1e-12:
        phi_plus_lam = -2.0 * cmath.phase(su2[0, 0])
        phi_minus_lam = 2.0 * cmath.phase(su2[1, 0])
        phi = (phi_plus_lam + phi_minus_lam) / 2.0
        lam = (phi_plus_lam - phi_minus_lam) / 2.0
    elif abs(su2[1, 0]) <= 1e-12:
        # Diagonal: only phi + lam matters.
        phi = -2.0 * cmath.phase(su2[0, 0])
        lam = 0.0
    else:
        # Anti-diagonal: only phi - lam matters.
        phi = 2.0 * cmath.phase(su2[1, 0])
        lam = 0.0
    return theta, phi, lam, phase - (phi + lam) / 2.0


def _fuse_single_qubit_runs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse maximal runs of uncontrolled single-qubit gates into one ``u3``."""
    out = QuantumCircuit(
        circuit.num_qubits,
        name=circuit.name,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )
    pending: List[np.ndarray] = [None] * circuit.num_qubits

    def flush(q: int) -> None:
        matrix = pending[q]
        pending[q] = None
        if matrix is None:
            return
        theta, phi, lam, _ = zyz_angles(matrix)
        total = (phi + lam) % (2 * _PI)
        if abs(theta) < 1e-12 and min(total, 2 * _PI - total) < 1e-12:
            return  # identity up to global phase
        out.append(_op("u3", [q], params=[theta, phi, lam]))

    for op in circuit:
        if not op.controls and len(op.targets) == 1:
            q = op.targets[0]
            matrix = op.matrix()
            pending[q] = matrix if pending[q] is None else matrix @ pending[q]
        else:
            for q in op.qubits:
                flush(q)
            out.append(op)
    for q in range(circuit.num_qubits):
        flush(q)
    return out


def decompose_to_basis(
    circuit: QuantumCircuit, fuse_single_qubit_gates: bool = True
) -> QuantumCircuit:
    """The device-basis pass: {u3, cx} with single-qubit runs fused.

    This mirrors the paper's target gate set of "arbitrary single qubit
    rotations and the CNOT gate".
    """
    lowered = decompose_to_cx_and_singles(circuit)
    if fuse_single_qubit_gates:
        return _fuse_single_qubit_runs(lowered)
    return lowered
