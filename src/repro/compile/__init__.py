"""Quantum circuit compilation substrate.

Re-implements the pipeline the paper obtains from qiskit-terra (Section 6.1):

* :mod:`repro.compile.decompose` — lowering high-level gates (multi-controlled
  Toffolis, controlled rotations, ...) into a device basis of single-qubit
  rotations plus CNOT,
* :mod:`repro.compile.architectures` — coupling maps, including a 65-qubit
  heavy-hex layout standing in for IBM Manhattan,
* :mod:`repro.compile.layout` / :mod:`repro.compile.routing` — placing
  logical qubits on the device and inserting SWAPs, recording the initial
  layout and output permutation the equivalence checkers must honour,
* :mod:`repro.compile.optimize` — the gate-cancellation / rotation-merging
  passes that produce the paper's "Optimized Circuits" use-case,
* :mod:`repro.compile.compiler` — the end-to-end :func:`compile_circuit`
  flow.
"""

from repro.compile.architectures import (
    CouplingMap,
    grid_architecture,
    line_architecture,
    manhattan_architecture,
    ring_architecture,
)
from repro.compile.decompose import (
    decompose_for_zx,
    decompose_to_basis,
    decompose_to_cx_and_singles,
    zyz_angles,
)
from repro.compile.layout import trivial_layout, greedy_layout
from repro.compile.routing import route_circuit
from repro.compile.optimize import optimize_circuit
from repro.compile.compiler import compile_circuit

__all__ = [
    "CouplingMap",
    "compile_circuit",
    "decompose_for_zx",
    "decompose_to_basis",
    "decompose_to_cx_and_singles",
    "greedy_layout",
    "grid_architecture",
    "line_architecture",
    "manhattan_architecture",
    "optimize_circuit",
    "ring_architecture",
    "route_circuit",
    "trivial_layout",
    "zyz_angles",
]
