"""Initial placement of logical qubits on physical qubits.

The layout is the compiler's first degree of freedom (paper Section 3:
"Compilation flows use a circuit's initial layout and output permutation as
an additional degree of freedom for saving SWAP operations").  A layout is
returned as a mapping *logical qubit -> physical qubit*; the routed circuit
records its inverse (*physical -> logical*) as ``initial_layout`` metadata,
which the equivalence checkers must honour.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

import networkx as nx

from repro.circuit.circuit import QuantumCircuit
from repro.compile.architectures import CouplingMap


def trivial_layout(circuit: QuantumCircuit, device: CouplingMap) -> Dict[int, int]:
    """Place logical qubit ``q`` on physical qubit ``q``."""
    if circuit.num_qubits > device.num_qubits:
        raise ValueError("circuit does not fit on the device")
    return {q: q for q in range(circuit.num_qubits)}


def greedy_layout(circuit: QuantumCircuit, device: CouplingMap) -> Dict[int, int]:
    """Interaction-graph driven placement.

    Logical qubits are processed in decreasing two-qubit interaction
    weight; each is placed on the free physical qubit that minimizes the
    distance-weighted cost to its already-placed interaction partners
    (ties broken towards well-connected physical qubits).  This is the
    same greedy-by-interaction idea behind dense-layout passes in
    production compilers, small enough to be exhaustively testable.
    """
    if circuit.num_qubits > device.num_qubits:
        raise ValueError("circuit does not fit on the device")

    interaction: Counter = Counter()
    degree: Counter = Counter()
    for op in circuit:
        qubits = op.qubits
        if len(qubits) == 2:
            pair = tuple(sorted(qubits))
            interaction[pair] += 1
            degree[qubits[0]] += 1
            degree[qubits[1]] += 1

    logical_order = sorted(
        range(circuit.num_qubits), key=lambda q: -degree[q]
    )
    placement: Dict[int, int] = {}
    used = set()

    # Seed: the busiest logical qubit goes on the best-connected physical one.
    centrality = nx.degree_centrality(device.graph)
    seed_physical = max(range(device.num_qubits), key=lambda p: centrality[p])

    for logical in logical_order:
        partners = [
            (other, weight)
            for (a, b), weight in interaction.items()
            for other in ((b,) if a == logical else (a,) if b == logical else ())
            if other in placement
        ]
        best_physical = None
        best_cost = None
        for physical in range(device.num_qubits):
            if physical in used:
                continue
            if not partners:
                cost = (
                    0.0 if not placement and physical == seed_physical
                    else device.distance(seed_physical, physical)
                )
            else:
                cost = sum(
                    weight * device.distance(physical, placement[other])
                    for other, weight in partners
                )
            tie_break = -centrality[physical]
            if best_cost is None or (cost, tie_break) < best_cost:
                best_cost = (cost, tie_break)
                best_physical = physical
        placement[logical] = best_physical
        used.add(best_physical)
    return placement
