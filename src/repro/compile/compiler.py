"""End-to-end compilation flow.

``compile_circuit`` reproduces the shape of the flow the paper drives
through qiskit-terra at optimization level O1 (Section 6.1): decompose to
the device basis (arbitrary single-qubit rotations + CNOT), place, route
with SWAP insertion, lightly optimize — and record the initial layout and
output permutation that the equivalence checkers need.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.compile.architectures import CouplingMap
from repro.compile.decompose import decompose_to_basis
from repro.compile.layout import greedy_layout, trivial_layout
from repro.compile.optimize import optimize_circuit
from repro.compile.routing import route_circuit


def compile_circuit(
    circuit: QuantumCircuit,
    device: CouplingMap,
    layout_method: str = "greedy",
    optimization_level: int = 1,
    decompose_swaps: bool = True,
    placement: Optional[Dict[int, int]] = None,
    routing_method: str = "basic",
) -> QuantumCircuit:
    """Compile a high-level circuit for a device.

    Args:
        circuit: The high-level input circuit.
        device: Target coupling map.
        layout_method: ``"trivial"`` or ``"greedy"`` (ignored when an
            explicit ``placement`` is passed).
        routing_method: ``"basic"`` or ``"lookahead"`` (see
            :func:`repro.compile.routing.route_circuit`).
        optimization_level: Post-routing optimization level (0-2), as in
            :func:`repro.compile.optimize.optimize_circuit`.
        decompose_swaps: Emit routing SWAPs as CNOT triples.
        placement: Optional explicit initial placement
            (*logical -> physical*).

    Returns:
        The compiled circuit on the device's qubits, with
        ``initial_layout`` and ``output_permutation`` metadata set.
    """
    if circuit.initial_layout or circuit.output_permutation:
        raise ValueError("input circuit already carries layout metadata")
    lowered = decompose_to_basis(circuit)
    if placement is None:
        if layout_method == "trivial":
            placement = trivial_layout(lowered, device)
        elif layout_method == "greedy":
            placement = greedy_layout(lowered, device)
        else:
            raise ValueError(f"unknown layout method {layout_method!r}")
    routed = route_circuit(
        lowered,
        device,
        placement,
        decompose_swaps=decompose_swaps,
        routing_method=routing_method,
    )
    optimized = optimize_circuit(routed, level=optimization_level)
    optimized.name = f"{circuit.name}_compiled"
    return optimized
