"""SWAP routing against a coupling map.

Given a decomposed circuit (single-qubit gates + two-qubit gates) and an
initial placement, the router executes gates in order, inserting SWAPs
whenever a two-qubit gate spans non-adjacent physical qubits — dynamically
changing the logical-to-physical mapping exactly as described in the
paper's Section 2.2 / Example 3.  Two strategies are provided:

* ``"basic"`` — walk one operand along a BFS shortest path (the classic
  naive router),
* ``"lookahead"`` — a SABRE-flavoured heuristic: pick each SWAP from the
  neighbourhood of the blocked pair such that it never increases the
  blocked pair's distance and minimizes a lookahead cost over the next
  few two-qubit gates (fewer SWAPs on structured circuits; see the
  ``bench_ablation_routing`` benchmark).

The routed circuit is widened to the full device, annotated with its
``initial_layout`` and ``output_permutation`` (both *physical -> logical*),
and SWAPs are optionally decomposed into three CNOTs, which is what makes
SWAP *reconstruction* in the DD checker a meaningful step (Section 4.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.compile.architectures import CouplingMap


#: How many upcoming two-qubit gates the lookahead strategy weighs.
LOOKAHEAD_WINDOW = 10
#: Decay factor for gates deeper in the lookahead window.
LOOKAHEAD_DECAY = 0.6


def route_circuit(
    circuit: QuantumCircuit,
    device: CouplingMap,
    placement: Optional[Dict[int, int]] = None,
    decompose_swaps: bool = True,
    routing_method: str = "basic",
) -> QuantumCircuit:
    """Route ``circuit`` onto ``device``.

    Args:
        circuit: Input circuit; every operation must touch at most two
            qubits (run a decomposition pass first).
        placement: Initial mapping *logical -> physical*; defaults to the
            identity placement.
        decompose_swaps: Emit routing SWAPs as three CNOTs (as a real
            compilation flow would) instead of primitive ``swap`` gates.
        routing_method: ``"basic"`` (BFS path walking) or ``"lookahead"``
            (SABRE-flavoured SWAP selection).

    Returns:
        A circuit on ``device.num_qubits`` wires whose ``initial_layout``
        and ``output_permutation`` describe where each logical qubit starts
        and ends (*physical -> logical*).
    """
    if routing_method not in ("basic", "lookahead"):
        raise ValueError(f"unknown routing method {routing_method!r}")
    if placement is None:
        placement = {q: q for q in range(circuit.num_qubits)}
    if len(set(placement.values())) != len(placement):
        raise ValueError("placement maps two logical qubits to one physical")
    # Complete the placement to a bijection over the whole device: ancilla
    # wires receive the unused logical indices (identity where possible),
    # so that SWAP chains moving ancilla contents are tracked exactly and
    # the recorded output permutation covers every wire.
    logical_to_physical = dict(placement)
    used_physical = set(logical_to_physical.values())
    free_physical = [
        p for p in range(device.num_qubits) if p not in used_physical
    ]
    extra_logicals = [
        l for l in range(device.num_qubits) if l not in logical_to_physical
    ]
    preferred = [p for p in free_physical if p in extra_logicals]
    others = [p for p in free_physical if p not in extra_logicals]
    for logical in extra_logicals:
        if logical in preferred:
            logical_to_physical[logical] = logical
            preferred.remove(logical)
        else:
            logical_to_physical[logical] = others.pop(0)

    routed = QuantumCircuit(device.num_qubits, name=f"{circuit.name}_routed")
    routed.initial_layout = {p: l for l, p in logical_to_physical.items()}

    def emit_swap(a: int, b: int) -> None:
        if decompose_swaps:
            routed.cx(a, b)
            routed.cx(b, a)
            routed.cx(a, b)
        else:
            routed.swap(a, b)

    for index, op in enumerate(circuit):
        qubits = op.qubits
        if len(qubits) == 1:
            routed.append(op.remapped({qubits[0]: logical_to_physical[qubits[0]]}))
            continue
        if len(qubits) > 2:
            raise ValueError(
                f"operation {op} touches {len(qubits)} qubits; decompose first"
            )
        a, b = qubits
        if not device.adjacent(
            logical_to_physical[a], logical_to_physical[b]
        ):
            if routing_method == "basic":
                _route_basic(device, logical_to_physical, a, b, emit_swap)
            else:
                _route_lookahead(
                    device, logical_to_physical, a, b, emit_swap,
                    _upcoming_pairs(circuit, index),
                )
        pa, pb = logical_to_physical[a], logical_to_physical[b]
        routed.append(op.remapped({a: pa, b: pb}))

    routed.output_permutation = {
        p: l for l, p in logical_to_physical.items()
    }
    return routed


def _apply_swap(
    logical_to_physical: Dict[int, int], pa: int, pb: int
) -> None:
    """Exchange the logical occupants of physical wires ``pa`` and ``pb``."""
    physical_to_logical = {p: l for l, p in logical_to_physical.items()}
    la = physical_to_logical[pa]
    lb = physical_to_logical[pb]
    logical_to_physical[la] = pb
    logical_to_physical[lb] = pa


def _route_basic(
    device: CouplingMap,
    logical_to_physical: Dict[int, int],
    a: int,
    b: int,
    emit_swap,
) -> None:
    """Walk operand ``a`` along a BFS shortest path towards ``b``."""
    pa = logical_to_physical[a]
    pb = logical_to_physical[b]
    path = device.shortest_path(pa, pb)
    for index in range(1, len(path) - 1):
        previous, step = path[index - 1], path[index]
        emit_swap(previous, step)
        _apply_swap(logical_to_physical, previous, step)


def _upcoming_pairs(
    circuit: QuantumCircuit, index: int
) -> List[Tuple[int, int]]:
    """The next few two-qubit interactions after position ``index``."""
    pairs: List[Tuple[int, int]] = []
    for op in circuit[index + 1:]:
        if op.num_qubits == 2:
            pairs.append((op.qubits[0], op.qubits[1]))
            if len(pairs) >= LOOKAHEAD_WINDOW:
                break
    return pairs


def _route_lookahead(
    device: CouplingMap,
    logical_to_physical: Dict[int, int],
    a: int,
    b: int,
    emit_swap,
    upcoming: List[Tuple[int, int]],
) -> None:
    """SABRE-flavoured SWAP selection.

    Candidate SWAPs are edges incident to the blocked pair's current
    positions; only candidates that strictly decrease (or keep, when a
    decrease exists nowhere) the blocked distance are admissible, which
    guarantees termination; among them the one minimizing the decayed
    lookahead cost wins.
    """
    while not device.adjacent(
        logical_to_physical[a], logical_to_physical[b]
    ):
        pa = logical_to_physical[a]
        pb = logical_to_physical[b]
        blocked_distance = device.distance(pa, pb)
        candidates = []
        for endpoint in (pa, pb):
            for neighbor in device.neighbors(endpoint):
                candidates.append((endpoint, neighbor))
        best = None
        best_cost = None
        for swap in candidates:
            trial = dict(logical_to_physical)
            _apply_swap(trial, *swap)
            new_distance = device.distance(trial[a], trial[b])
            if new_distance >= blocked_distance:
                continue  # only strict progress keeps this loop finite
            cost = float(new_distance)
            weight = LOOKAHEAD_DECAY
            for qa, qb in upcoming:
                cost += weight * device.distance(trial[qa], trial[qb])
                weight *= LOOKAHEAD_DECAY
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best = swap
        emit_swap(*best)
        _apply_swap(logical_to_physical, *best)
