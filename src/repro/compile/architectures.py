"""Device coupling maps.

The paper's compilation use-case targets "the 65-qubit IBM Manhattan
architecture"; :func:`manhattan_architecture` generates a 65-qubit
heavy-hex lattice with the same qubit count and row/connector structure as
that device family (see DESIGN.md for the substitution note).  Smaller
synthetic topologies (line, ring, grid) support the unit tests and the
paper's Fig. 2 example (a 5-qubit line).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx


class CouplingMap:
    """An undirected graph of physical qubits with BFS distances."""

    def __init__(self, num_qubits: int, edges: Iterable[Tuple[int, int]], name: str = "device") -> None:
        self.name = name
        self.num_qubits = num_qubits
        self.graph = nx.Graph()
        self.graph.add_nodes_from(range(num_qubits))
        for u, v in edges:
            if not (0 <= u < num_qubits and 0 <= v < num_qubits):
                raise ValueError(f"edge ({u}, {v}) out of range")
            self.graph.add_edge(u, v)
        if num_qubits and not nx.is_connected(self.graph):
            raise ValueError("coupling map must be connected")
        self._distance: Optional[Dict[int, Dict[int, int]]] = None

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return sorted(tuple(sorted(e)) for e in self.graph.edges)

    def adjacent(self, u: int, v: int) -> bool:
        """True if a two-qubit gate may act directly on ``(u, v)``."""
        return self.graph.has_edge(u, v)

    def neighbors(self, u: int) -> Tuple[int, ...]:
        return tuple(self.graph.neighbors(u))

    def distance(self, u: int, v: int) -> int:
        """BFS hop distance between two physical qubits."""
        if self._distance is None:
            self._distance = dict(nx.all_pairs_shortest_path_length(self.graph))
        return self._distance[u][v]

    def shortest_path(self, u: int, v: int) -> List[int]:
        """One BFS shortest path from ``u`` to ``v`` (inclusive)."""
        return nx.shortest_path(self.graph, u, v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CouplingMap({self.name!r}, qubits={self.num_qubits}, "
            f"edges={self.graph.number_of_edges()})"
        )


def line_architecture(num_qubits: int) -> CouplingMap:
    """A 1-D chain — the 5-qubit instance is the paper's Fig. 2 device."""
    return CouplingMap(
        num_qubits,
        [(i, i + 1) for i in range(num_qubits - 1)],
        name=f"line-{num_qubits}",
    )


def ring_architecture(num_qubits: int) -> CouplingMap:
    """A 1-D chain closed into a cycle."""
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(num_qubits, edges, name=f"ring-{num_qubits}")


def grid_architecture(rows: int, cols: int) -> CouplingMap:
    """A ``rows x cols`` nearest-neighbour grid."""
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(rows * cols, edges, name=f"grid-{rows}x{cols}")


def manhattan_architecture() -> CouplingMap:
    """A 65-qubit heavy-hex lattice standing in for IBM Manhattan.

    Five rows of qubits (10, 10, 10, 10, 9) joined by four groups of four
    vertical connector qubits, giving 65 qubits of degree at most three —
    the structure of IBM's 65-qubit Hummingbird devices.
    """
    row_sizes = [10, 10, 10, 10, 9]
    edges: List[Tuple[int, int]] = []
    rows: List[List[int]] = []
    next_qubit = 0
    connectors: List[List[int]] = []
    for index, size in enumerate(row_sizes):
        row = list(range(next_qubit, next_qubit + size))
        rows.append(row)
        next_qubit += size
        if index < len(row_sizes) - 1:
            conn = list(range(next_qubit, next_qubit + 4))
            connectors.append(conn)
            next_qubit += 4
    # Horizontal edges within each row.
    for row in rows:
        edges.extend((row[i], row[i + 1]) for i in range(len(row) - 1))
    # Vertical connectors: alternate attachment columns (0,3,6,9) and
    # (2,5,8,9 clipped) to create the staggered heavy-hex cells.
    for index, conn in enumerate(connectors):
        top, bottom = rows[index], rows[index + 1]
        columns = (0, 3, 6, 9) if index % 2 == 0 else (2, 5, 8, 9)
        for conn_qubit, col in zip(conn, columns):
            edges.append((top[min(col, len(top) - 1)], conn_qubit))
            edges.append((conn_qubit, bottom[min(col, len(bottom) - 1)]))
    return CouplingMap(next_qubit, edges, name="manhattan-65")
