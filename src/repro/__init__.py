"""Reproduction of *Equivalence Checking Paradigms in Quantum Circuit
Design: A Case Study* (Peham, Burgholzer, Wille — DAC 2022).

The package re-implements, from scratch, both equivalence-checking
paradigms the paper compares — decision diagrams (:mod:`repro.dd`) and the
ZX-calculus (:mod:`repro.zx`) — on a shared circuit IR
(:mod:`repro.circuit`), together with the compilation and optimization
substrate that produces the paper's two verification use-cases
(:mod:`repro.compile`), the equivalence-checking strategies and manager
(:mod:`repro.ec`), and the benchmark generators plus the case-study harness
regenerating Table 1 (:mod:`repro.bench`).

Quickstart::

    from repro import QuantumCircuit, verify

    ghz = QuantumCircuit(3)
    ghz.h(0).cx(0, 1).cx(0, 2)

    from repro.compile import compile_circuit, line_architecture
    compiled = compile_circuit(ghz, line_architecture(5))

    result = verify(ghz, compiled)
    assert result.considered_equivalent
"""

from repro.circuit import QuantumCircuit, Operation, circuit_from_qasm, circuit_to_qasm
from repro.circuit.draw import draw_circuit

__version__ = "0.1.0"

__all__ = [
    "QuantumCircuit",
    "Operation",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "draw_circuit",
    "verify",
    "__version__",
]


def verify(circuit1, circuit2, configuration=None):
    """Check two circuits for equivalence with the combined DD strategy.

    Thin convenience wrapper over
    :class:`repro.ec.EquivalenceCheckingManager`; see :mod:`repro.ec` for
    the full API (strategy selection, timeouts, tolerances).
    """
    from repro.ec import EquivalenceCheckingManager

    manager = EquivalenceCheckingManager(circuit1, circuit2, configuration)
    return manager.run()
