"""Per-function control-flow graphs over the :mod:`ast` module.

One :class:`CFG` is built per function (and one for the module body,
where module-level statements execute).  Nodes are *statements*, not
basic blocks — lint-scale precision beats construction speed here —
plus a handful of synthetic nodes:

``entry`` / ``exit`` / ``raise``
    Function entry, the normal-return exit, and the exceptional exit
    (an exception escaping the function).
``except_dispatch``
    The point where an exception thrown inside a ``try`` body picks a
    handler.  Statements that can raise get an ``exception`` edge to the
    innermost dispatch; the dispatch fans out to each handler node and —
    unless a handler catches everything — onward to the next enclosing
    target.
``except``
    One ``except E as e:`` clause head (the taxonomy rule anchors here).
``with_exit``
    The implicit ``__exit__`` of a ``with`` block: every path out of the
    body — normal or exceptional — runs through it, which is exactly why
    ``with``-acquired resources never leak.

Edge kinds are ``next``, ``true``/``false`` (branch outcomes; for loops
``true`` is "iterate", ``false`` is "exhausted"), and ``exception``.

``finally`` bodies are built *once* and shared by every continuation
(normal fall-through, ``return``/``break``/``continue`` unwinding,
exception propagation).  That conflates continuations — a path may
appear to enter the finally normally and leave it exceptionally — which
over-approximates the feasible paths.  For the may-analyses built on
top (leak detection, taint) over-approximation is the sound direction.

Exception edges are added from any statement whose evaluated expressions
contain a call, ``raise``, ``assert`` or ``await`` — plain data shuffles
(``x = y + 1``) are assumed not to raise, which keeps the graphs (and
the leak reports) readable at the cost of ignoring pathological
``__add__`` overloads.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

# Edge kinds.
NEXT = "next"
TRUE = "true"
FALSE = "false"
EXC = "exception"

#: Statement/expression containers that mean "this node can raise".
_RAISING = (ast.Call, ast.Raise, ast.Assert, ast.Await)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
ScopeNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


class CFGNode:
    """One control-flow node: a statement or a synthetic point."""

    __slots__ = ("index", "kind", "stmt", "succs", "preds")

    def __init__(self, index: int, kind: str, stmt: Optional[ast.AST]) -> None:
        self.index = index
        self.kind = kind
        self.stmt = stmt
        self.succs: List[Tuple["CFGNode", str]] = []
        self.preds: List[Tuple["CFGNode", str]] = []

    @property
    def line(self) -> int:
        if self.stmt is not None and hasattr(self.stmt, "lineno"):
            return int(self.stmt.lineno)
        return 0

    def expressions(self) -> List[ast.AST]:
        """The expressions *evaluated at this node* (never sub-statements).

        This is what distinguishes a CFG node from ``ast.walk`` on the
        statement: an ``if`` node owns only its test, not its body.
        """
        stmt = self.stmt
        exprs: List[ast.AST] = []
        if stmt is None:
            return exprs
        # Synthetic nodes borrow their statement for location only; the
        # statement's expressions are evaluated at the *real* node.
        if self.kind in ("with_exit", "except_dispatch", "finally"):
            return exprs
        if isinstance(stmt, (ast.If, ast.While)):
            exprs.append(stmt.test)
        elif isinstance(stmt, ast.For):
            exprs.extend([stmt.iter, stmt.target])
        elif isinstance(stmt, ast.AsyncFor):
            exprs.extend([stmt.iter, stmt.target])
        elif isinstance(stmt, (ast.Assign,)):
            exprs.append(stmt.value)
            exprs.extend(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            exprs.extend([stmt.value, stmt.target])
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                exprs.append(stmt.value)
            exprs.append(stmt.target)
        elif isinstance(stmt, ast.Expr):
            exprs.append(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                exprs.append(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                exprs.append(stmt.exc)
            if stmt.cause is not None:
                exprs.append(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            exprs.append(stmt.test)
            if stmt.msg is not None:
                exprs.append(stmt.msg)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                exprs.append(item.context_expr)
                if item.optional_vars is not None:
                    exprs.append(item.optional_vars)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.type is not None:
                exprs.append(stmt.type)
        elif isinstance(stmt, ast.Delete):
            exprs.extend(stmt.targets)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            exprs.extend(stmt.decorator_list)
            exprs.extend(stmt.args.defaults)
            exprs.extend(d for d in stmt.args.kw_defaults if d is not None)
        elif isinstance(stmt, ast.ClassDef):
            exprs.extend(stmt.decorator_list)
            exprs.extend(stmt.bases)
            exprs.extend(k.value for k in stmt.keywords)
        return exprs

    def calls(self) -> List[ast.Call]:
        """Calls evaluated at this node (including nested sub-expressions)."""
        found: List[ast.Call] = []
        for expr in self.expressions():
            for child in ast.walk(expr):
                if isinstance(child, ast.Call):
                    found.append(child)
        return found

    def can_raise(self) -> bool:
        if isinstance(self.stmt, (ast.Raise, ast.Assert)):
            return True
        if self.kind in ("with_exit", "except_dispatch"):
            return True
        for expr in self.expressions():
            for child in ast.walk(expr):
                if isinstance(child, _RAISING):
                    return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = type(self.stmt).__name__ if self.stmt is not None else ""
        return f"<CFGNode {self.index} {self.kind} {label} L{self.line}>"


class CFG:
    """Control-flow graph of one function or module body."""

    def __init__(self, name: str, scope: ScopeNode) -> None:
        self.name = name
        self.scope = scope
        self.nodes: List[CFGNode] = []
        self.entry = self._new("entry", None)
        self.exit = self._new("exit", None)
        self.raise_exit = self._new("raise", None)
        #: Loop head node index -> nodes created while building its body.
        self.loop_bodies: Dict[int, List[CFGNode]] = {}

    def _new(self, kind: str, stmt: Optional[ast.AST]) -> CFGNode:
        node = CFGNode(len(self.nodes), kind, stmt)
        self.nodes.append(node)
        return node

    def connect(self, source: CFGNode, target: CFGNode, kind: str) -> None:
        if (target, kind) not in source.succs:
            source.succs.append((target, kind))
            target.preds.append((source, kind))

    def loops(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if isinstance(node.stmt, (ast.For, ast.AsyncFor, ast.While)):
                if node.index in self.loop_bodies:
                    yield node

    def statements(self) -> Iterator[CFGNode]:
        """All non-synthetic nodes, in creation (≈ source) order."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------
_Dangling = List[Tuple[CFGNode, str]]


class _FinallyFrame:
    """A region whose every abrupt exit must run a shared subgraph first."""

    __slots__ = ("entry", "exits")

    def __init__(self, entry: CFGNode, exits: _Dangling) -> None:
        self.entry = entry
        self.exits = exits


class _TryFrame:
    """A ``try`` body whose exceptions are dispatched to handlers."""

    __slots__ = ("dispatch",)

    def __init__(self, dispatch: CFGNode) -> None:
        self.dispatch = dispatch


class _LoopFrame:
    """A loop: where ``continue`` and ``break`` go."""

    __slots__ = ("head", "breaks")

    def __init__(self, head: CFGNode) -> None:
        self.head = head
        self.breaks: _Dangling = []


_Frame = Union[_FinallyFrame, _TryFrame, _LoopFrame]


class _Builder:
    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.frames: List[_Frame] = []

    # -- frame helpers ----------------------------------------------------
    def _exception_target(self, above: Optional[_Frame] = None) -> CFGNode:
        """Where an exception raised here lands first.

        Walks the frame stack inside-out, chaining through ``finally``
        regions, until a handler dispatch (or the function's exceptional
        exit) is found.  ``above`` limits the walk to frames *outside* a
        given frame (exceptions inside a handler must not re-enter its
        own dispatch).
        """
        frames = self.frames
        if above is not None:
            frames = frames[: frames.index(above)]
        for frame in reversed(frames):
            if isinstance(frame, _TryFrame):
                return frame.dispatch
            if isinstance(frame, _FinallyFrame):
                # The finally's own exits must (also) propagate outward;
                # that edge is wired when the finally frame is popped.
                return frame.entry
        return self.cfg.raise_exit

    def _add_exception_edge(self, node: CFGNode) -> None:
        if node.can_raise():
            self.cfg.connect(node, self._exception_target(), EXC)

    def _route_abrupt(self, node: CFGNode, stop: Optional[_Frame]) -> _Dangling:
        """Chain ``node`` through every finally between it and ``stop``.

        Returns the dangling edges that must be wired to the abrupt
        jump's real target (loop head, after-loop join, function exit).
        ``stop=None`` unwinds the whole stack (a ``return``).
        """
        dangling: _Dangling = [(node, NEXT)]
        for frame in reversed(self.frames):
            if frame is stop:
                break
            if isinstance(frame, _FinallyFrame):
                for source, kind in dangling:
                    self.cfg.connect(source, frame.entry, kind)
                dangling = list(frame.exits)
        return dangling

    def _innermost_loop(self) -> Optional[_LoopFrame]:
        for frame in reversed(self.frames):
            if isinstance(frame, _LoopFrame):
                return frame
        return None

    # -- statement sequencing ---------------------------------------------
    def build_stmts(self, stmts: Sequence[ast.stmt], incoming: _Dangling) -> _Dangling:
        current = incoming
        for stmt in stmts:
            current = self.build_stmt(stmt, current)
        return current

    def _wire(self, incoming: _Dangling, node: CFGNode) -> None:
        for source, kind in incoming:
            self.cfg.connect(source, node, kind)

    def build_stmt(self, stmt: ast.stmt, incoming: _Dangling) -> _Dangling:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            self._add_exception_edge(node)
            body_out = self.build_stmts(stmt.body, [(node, TRUE)])
            if stmt.orelse:
                else_out = self.build_stmts(stmt.orelse, [(node, FALSE)])
            else:
                else_out = [(node, FALSE)]
            return body_out + else_out

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            # A for-statement's iterator protocol can always raise; a
            # while-test only if its expression can.
            if isinstance(stmt, (ast.For, ast.AsyncFor)) or node.can_raise():
                cfg.connect(node, self._exception_target(), EXC)
            frame = _LoopFrame(node)
            self.frames.append(frame)
            first_body_index = len(cfg.nodes)
            body_out = self.build_stmts(stmt.body, [(node, TRUE)])
            cfg.loop_bodies[node.index] = cfg.nodes[first_body_index:]
            self._wire(body_out, node)  # back edge
            self.frames.pop()
            if stmt.orelse:
                out = self.build_stmts(stmt.orelse, [(node, FALSE)])
            else:
                out = [(node, FALSE)]
            return out + frame.breaks

        if isinstance(stmt, (ast.Try,)):
            return self._build_try(stmt, incoming)

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            self._add_exception_edge(node)
            exit_node = cfg._new("with_exit", stmt)
            # __exit__ may itself propagate the exception onward.
            cfg.connect(exit_node, self._exception_target(), EXC)
            frame = _FinallyFrame(exit_node, [(exit_node, NEXT)])
            self.frames.append(frame)
            body_out = self.build_stmts(stmt.body, [(node, NEXT)])
            self.frames.pop()
            self._wire(body_out, exit_node)
            return [(exit_node, NEXT)]

        if isinstance(stmt, ast.Return):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            self._add_exception_edge(node)
            dangling = self._route_abrupt(node, stop=None)
            self._wire(dangling, cfg.exit)
            return []

        if isinstance(stmt, ast.Raise):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            cfg.connect(node, self._exception_target(), EXC)
            return []

        if isinstance(stmt, ast.Break):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            loop = self._innermost_loop()
            if loop is not None:
                loop.breaks.extend(self._route_abrupt(node, stop=loop))
            return []

        if isinstance(stmt, ast.Continue):
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            loop = self._innermost_loop()
            if loop is not None:
                dangling = self._route_abrupt(node, stop=loop)
                self._wire(dangling, loop.head)
            return []

        if isinstance(stmt, ast.ClassDef):
            # The class statement itself, then its non-function body
            # statements (they execute at definition time).  Methods are
            # separate scopes with their own CFGs.
            node = cfg._new("stmt", stmt)
            self._wire(incoming, node)
            self._add_exception_edge(node)
            plain = [
                child
                for child in stmt.body
                if not isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
            return self.build_stmts(plain, [(node, NEXT)])

        # Plain statement (including nested FunctionDef, which only
        # *defines* at this point).
        node = cfg._new("stmt", stmt)
        self._wire(incoming, node)
        self._add_exception_edge(node)
        return [(node, NEXT)]

    def _build_try(self, stmt: ast.Try, incoming: _Dangling) -> _Dangling:
        cfg = self.cfg
        finally_frame: Optional[_FinallyFrame] = None
        if stmt.finalbody:
            # Build the finally subgraph first — behind a synthetic join
            # entry — so abrupt exits from the body can be routed through
            # it.  Exceptions raised *inside* the finally go to the
            # enclosing target (they are built before the frame is
            # pushed, so the routing is automatic).
            fin_entry = cfg._new("finally", stmt)
            fin_out = self.build_stmts(stmt.finalbody, [(fin_entry, NEXT)])
            finally_frame = _FinallyFrame(fin_entry, fin_out)
            self.frames.append(finally_frame)

        after: _Dangling = []
        if stmt.handlers:
            dispatch = cfg._new("except_dispatch", stmt)
            try_frame = _TryFrame(dispatch)
            self.frames.append(try_frame)
            body_out = self.build_stmts(stmt.body, incoming)
            self.frames.pop()
            # Unless some handler catches everything, the dispatch also
            # propagates outward.
            if not any(_catches_everything(h) for h in stmt.handlers):
                cfg.connect(dispatch, self._exception_target(), EXC)
            for handler in stmt.handlers:
                handler_node = cfg._new("except", handler)
                cfg.connect(dispatch, handler_node, TRUE)
                handler_out = self.build_stmts(
                    handler.body, [(handler_node, NEXT)]
                )
                after.extend(handler_out)
            if stmt.orelse:
                body_out = self.build_stmts(stmt.orelse, body_out)
            after.extend(body_out)
        else:
            body_out = self.build_stmts(stmt.body, incoming)
            if stmt.orelse:  # pragma: no cover - try/finally has no else
                body_out = self.build_stmts(stmt.orelse, body_out)
            after.extend(body_out)

        if finally_frame is not None:
            self.frames.pop()
            self._wire(after, finally_frame.entry)
            # Exceptions routed into the finally propagate onward from
            # its exits as well as falling through normally.
            for source, kind in finally_frame.exits:
                cfg.connect(source, self._exception_target(), EXC)
            return list(finally_frame.exits)
        return after


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: List[str] = []
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for entry in types:
        if isinstance(entry, ast.Name):
            names.append(entry.id)
        elif isinstance(entry, ast.Attribute):
            names.append(entry.attr)
    return any(name in ("Exception", "BaseException") for name in names)


def build_cfg(scope: ScopeNode, name: str) -> CFG:
    """Build the CFG of one function (or module) body."""
    cfg = CFG(name, scope)
    builder = _Builder(cfg)
    out = builder.build_stmts(list(scope.body), [(cfg.entry, NEXT)])
    for source, kind in out:
        cfg.connect(source, cfg.exit, kind)
    return cfg
