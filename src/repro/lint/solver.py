"""Generic worklist fixpoint solving over :mod:`repro.lint.cfg` graphs.

Two layers live here:

* :func:`solve_forward` — a forward dataflow fixpoint: states attach to
  node *entries*, a transfer function maps a node's entry state to its
  exit state, and an optional edge transfer refines what flows along a
  specific edge kind (exception edges often want the pre-state).  The
  lattice is supplied by the rule as a join function; convergence is
  guaranteed as long as join is monotone and the state space has finite
  height (every rule here uses finite maps over finite bit-sets).

* :func:`postdominators` / :func:`control_dependence` — the classic
  Ferrante–Ottenstein–Warren construction used by the taint rule for
  implicit flows: a node is control-dependent on a branch if the branch
  decides whether the node executes (the node post-dominates one
  successor of the branch but not the branch itself).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Generic, List, Optional, Set, TypeVar

from repro.lint.cfg import CFG, CFGNode

S = TypeVar("S")

Transfer = Callable[[CFGNode, S], S]
EdgeTransfer = Callable[[CFGNode, CFGNode, str, S, S], S]
Join = Callable[[S, S], S]


class DataflowResult(Generic[S]):
    """States at node entry and exit after the fixpoint converged."""

    def __init__(
        self,
        entry_states: Dict[int, S],
        exit_states: Dict[int, S],
        iterations: int,
    ) -> None:
        self.entry_states = entry_states
        self.exit_states = exit_states
        self.iterations = iterations

    def at_entry(self, node: CFGNode) -> S:
        return self.entry_states[node.index]

    def at_exit(self, node: CFGNode) -> S:
        return self.exit_states[node.index]


def solve_forward(
    cfg: CFG,
    transfer: Transfer[S],
    join: Join[S],
    initial: S,
    bottom: S,
    edge_transfer: Optional[EdgeTransfer[S]] = None,
    max_iterations: int = 100_000,
) -> DataflowResult[S]:
    """Run a forward dataflow analysis to fixpoint.

    Args:
        cfg: The graph to analyze.
        transfer: Maps a node's entry state to its exit state.  Must be
            pure — it can run multiple times per node.
        join: Least upper bound of two states (associative/commutative).
        initial: State at the CFG entry node.
        bottom: Identity of ``join`` — the state of unreached nodes.
        edge_transfer: Optional ``(source, target, kind, pre, post) ->
            state`` refinement of what flows along one edge; defaults to
            the source's exit (``post``) state.
        max_iterations: Hard safety valve; a diverging transfer function
            (non-monotone, or an infinite-height lattice) raises
            ``RuntimeError`` instead of hanging the lint run.
    """
    entry_states: Dict[int, S] = {node.index: bottom for node in cfg.nodes}
    entry_states[cfg.entry.index] = initial
    exit_states: Dict[int, S] = {node.index: bottom for node in cfg.nodes}

    worklist: deque = deque([cfg.entry])
    queued: Set[int] = {cfg.entry.index}
    # A successor must be processed at least once even when the joined
    # state equals bottom (with ``initial == bottom`` nothing would ever
    # "change", and the fixpoint would die at the entry node).
    reached: Set[int] = {cfg.entry.index}
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge after {max_iterations} "
                f"iterations in {cfg.name!r} (non-monotone transfer?)"
            )
        node = worklist.popleft()
        queued.discard(node.index)
        pre = entry_states[node.index]
        post = transfer(node, pre)
        exit_states[node.index] = post
        for successor, kind in node.succs:
            flowed = (
                post
                if edge_transfer is None
                else edge_transfer(node, successor, kind, pre, post)
            )
            merged = join(entry_states[successor.index], flowed)
            first_visit = successor.index not in reached
            if merged != entry_states[successor.index] or first_visit:
                entry_states[successor.index] = merged
                reached.add(successor.index)
                if successor.index not in queued:
                    worklist.append(successor)
                    queued.add(successor.index)
    return DataflowResult(entry_states, exit_states, iterations)


# ---------------------------------------------------------------------------
# post-dominance and control dependence
# ---------------------------------------------------------------------------
def postdominators(cfg: CFG) -> Dict[int, Set[int]]:
    """``node index -> set of node indices that post-dominate it``.

    Both regular exits (``exit``) and exceptional exits (``raise``) are
    treated as terminal: a virtual sink behind them anchors the
    analysis, so functions whose only exits are raises still converge.
    Every node post-dominates itself.
    """
    terminal = {cfg.exit.index, cfg.raise_exit.index}
    everything = {node.index for node in cfg.nodes}
    podom: Dict[int, Set[int]] = {}
    for node in cfg.nodes:
        if node.index in terminal:
            podom[node.index] = {node.index}
        else:
            podom[node.index] = set(everything)

    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node.index in terminal:
                continue
            if node.succs:
                merged: Optional[Set[int]] = None
                for successor, _kind in node.succs:
                    if merged is None:
                        merged = set(podom[successor.index])
                    else:
                        merged &= podom[successor.index]
                assert merged is not None
                merged.add(node.index)
            else:
                # Dead-end node (e.g. ``break``/``continue`` whose edges
                # were routed elsewhere): only itself.
                merged = {node.index}
            if merged != podom[node.index]:
                podom[node.index] = merged
                changed = True
    return podom


def control_dependence(cfg: CFG) -> Dict[int, Set[int]]:
    """``node index -> branch node indices it is (transitively) control-
    dependent on``.

    A node ``n`` is directly control-dependent on a multi-successor node
    ``b`` when ``n`` post-dominates some successor of ``b`` but does not
    post-dominate ``b`` itself — i.e. the outcome at ``b`` decides
    whether ``n`` runs.  The transitive closure folds in the branches
    that in turn decide ``b``, which is what an implicit-flow taint
    analysis needs (a verdict returned after a probabilistic early-exit
    loop is still governed by the loop's probabilistic test).
    """
    podom = postdominators(cfg)
    direct: Dict[int, Set[int]] = {node.index: set() for node in cfg.nodes}
    for branch in cfg.nodes:
        if len(branch.succs) < 2:
            continue
        strict_podom_of_branch = podom[branch.index] - {branch.index}
        for successor, _kind in branch.succs:
            # Every node that post-dominates this successor (including
            # the successor itself) but does not strictly post-dominate
            # the branch only runs when the branch goes this way.
            for node_index in podom[successor.index]:
                if node_index == branch.index:
                    continue
                if node_index not in strict_podom_of_branch:
                    direct[node_index].add(branch.index)

    # Transitive closure (iterate to fixpoint; graphs are small).
    closed: Dict[int, Set[int]] = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for index, branches in closed.items():
            extra: Set[int] = set()
            for branch in branches:
                extra |= closed[branch]
            if not extra <= branches:
                branches |= extra
                changed = True
    return closed
