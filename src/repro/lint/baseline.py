"""The checked-in findings baseline.

A baseline entry grandfathers one *known* finding by its content
fingerprint so the engine can be adopted on a tree with pre-existing
violations without a flag day.  Every entry must carry a reason — an
unexplained entry is itself an error (``unexplained-baseline``), and an
entry whose finding no longer occurs is reported as ``stale-baseline``
so the file can only shrink.

Format (``tools/lint_baseline.json``)::

    {
      "version": 1,
      "entries": [
        {"fingerprint": "...", "rule": "...", "path": "...",
         "reason": "why this is grandfathered"}
      ]
    }

The ``rule`` and ``path`` fields are denormalized documentation — only
the fingerprint identifies the finding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.findings import Finding

BASELINE_VERSION = 1


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    reason: str


class Baseline:
    """Parsed baseline file with matching bookkeeping."""

    def __init__(self, entries: Sequence[BaselineEntry], path: Path) -> None:
        self.path = path
        self.entries = list(entries)
        self.by_fingerprint: Dict[str, BaselineEntry] = {
            entry.fingerprint: entry for entry in self.entries
        }
        self._matched: Dict[str, bool] = {
            entry.fingerprint: False for entry in self.entries
        }

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls([], path)
        data = json.loads(path.read_text())
        entries = [
            BaselineEntry(
                fingerprint=str(item.get("fingerprint", "")),
                rule=str(item.get("rule", "")),
                path=str(item.get("path", "")),
                reason=str(item.get("reason", "")),
            )
            for item in data.get("entries", [])
        ]
        return cls(entries, path)

    def matches(self, finding: Finding) -> bool:
        """True (and marks matched) if the finding is grandfathered."""
        fingerprint = finding.fingerprint
        if fingerprint is None or fingerprint not in self.by_fingerprint:
            return False
        self._matched[fingerprint] = True
        return True

    def stale_entries(self) -> List[BaselineEntry]:
        """Entries whose finding no longer occurs."""
        return [
            entry
            for entry in self.entries
            if not self._matched[entry.fingerprint]
        ]

    def unexplained_entries(self) -> List[BaselineEntry]:
        """Entries without a reason — never acceptable."""
        return [entry for entry in self.entries if not entry.reason.strip()]


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Serialize current findings as a fresh baseline (reasons left blank).

    The blank reasons make a freshly written baseline *fail* the lint
    until a human fills them in — regenerating the baseline is a way to
    enumerate debt, not to silence it.
    """
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": str(finding.path),
            "reason": "",
        }
        for finding in findings
        if finding.fingerprint is not None
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
