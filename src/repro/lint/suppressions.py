"""Inline suppression comments: ``# repro: allow(<rule-id>): <reason>``.

The comment applies to findings of the named rule on the *same line* or
on the *line directly below* it (so it can sit on its own line above a
flagged statement).  The reason is mandatory — a bare ``allow`` without
one never parses and therefore never suppresses.

The engine tracks which suppressions actually matched a finding; an
``allow`` that suppresses nothing is itself reported under the
``stale-allow`` rule, so dead suppressions cannot accumulate and
silently mask future regressions.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([a-z-]+)\)\s*:\s*(\S.*)")


@dataclass
class Suppression:
    """One parsed ``# repro: allow(...)`` comment."""

    line: int
    rule: str
    reason: str
    #: Lines a finding may sit on for this suppression to apply.
    used: bool = False

    def applies_to(self, rule: str, line: int) -> bool:
        return rule == self.rule and line in (self.line, self.line + 1)


@dataclass
class SuppressionIndex:
    """All suppressions of one source file, with usage tracking."""

    by_line: Dict[int, List[Suppression]] = field(default_factory=dict)

    @classmethod
    def scan(cls, source_lines: Sequence[str]) -> "SuppressionIndex":
        index = cls()
        for number, text in enumerate(source_lines, start=1):
            match = _ALLOW_RE.search(text)
            if match:
                suppression = Suppression(
                    line=number, rule=match.group(1), reason=match.group(2)
                )
                index.by_line.setdefault(number, []).append(suppression)
        return index

    def all(self) -> List[Suppression]:
        return [s for entries in self.by_line.values() for s in entries]

    def suppresses(self, rule: str, line: int) -> bool:
        """True (and marks the suppression used) if ``rule@line`` is allowed."""
        hit = False
        for candidate in (line, line - 1):
            for suppression in self.by_line.get(candidate, ()):
                if suppression.applies_to(rule, line):
                    suppression.used = True
                    hit = True
        return hit

    def stale(self) -> List[Suppression]:
        """Suppressions that matched no finding in this run."""
        return [s for s in self.all() if not s.used]
