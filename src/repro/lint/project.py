"""Whole-project model: modules, functions, imports, and the call graph.

:class:`Project` loads every ``src/repro/**/*.py`` file once, indexes
its functions (top-level, methods, nested) and import aliases, and
offers best-effort *static* call resolution:

* ``f(...)`` — a module-local function, or a ``from x import f`` alias;
* ``mod.f(...)`` / ``pkg.mod.f(...)`` — through ``import`` aliases;
* ``self.m(...)`` — a method of the caller's own class.

Anything dynamic (callables in variables, getattr, duck-typed method
calls on non-``self`` receivers) resolves to nothing — the
interprocedural rules treat unresolved calls as no-ops, which keeps
them quiet rather than noisy.  CFGs are built lazily and cached, so a
rule that never looks at a module costs nothing for it.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.lint.cfg import CFG, build_cfg
from repro.lint.suppressions import SuppressionIndex

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FunctionInfo:
    """One function (or method) definition in the project."""

    def __init__(
        self,
        module: "ModuleInfo",
        node: FunctionNode,
        local_name: str,
        class_name: Optional[str],
    ) -> None:
        self.module = module
        self.node = node
        #: Dotted name within the module, e.g. ``simulation_check`` or
        #: ``WorkerPool.submit``.
        self.local_name = local_name
        self.class_name = class_name
        self._cfg: Optional[CFG] = None

    @property
    def qname(self) -> str:
        return f"{self.module.modname}.{self.local_name}"

    @property
    def name(self) -> str:
        return self.local_name.rsplit(".", 1)[-1]

    @property
    def lineno(self) -> int:
        return self.node.lineno

    @property
    def params(self) -> Tuple[str, ...]:
        args = self.node.args
        return tuple(
            a.arg
            for a in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        )

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node, self.qname)
        return self._cfg

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qname}>"


class ModuleInfo:
    """One parsed source file."""

    def __init__(self, modname: str, path: Path, relpath: str, tree: ast.Module,
                 source: str) -> None:
        self.modname = modname
        self.path = path
        #: Path relative to ``src/repro`` in posix form, e.g.
        #: ``ec/sim_checker.py`` — the unit every rule scopes on.
        self.relpath = relpath
        self.tree = tree
        self.source = source
        self.lines = source.splitlines()
        self.functions: Dict[str, FunctionInfo] = {}
        #: Import alias -> dotted target (``np`` -> ``numpy``,
        #: ``generate_stimulus`` -> ``repro.ec.stimuli.generate_stimulus``).
        self.imports: Dict[str, str] = {}
        self.suppressions = SuppressionIndex.scan(self.lines)
        self._module_cfg: Optional[CFG] = None
        self._index()

    @property
    def module_cfg(self) -> CFG:
        """CFG of the module body (module-level statements)."""
        if self._module_cfg is None:
            self._module_cfg = build_cfg(self.tree, self.modname)
        return self._module_cfg

    def _index(self) -> None:
        package = (
            self.modname
            if self.path.name == "__init__.py"
            else self.modname.rsplit(".", 1)[0]
        )
        self._index_imports(package)
        self._index_functions(self.tree.body, prefix="", class_name=None)

    def _index_imports(self, package: str) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self.imports[alias.asname] = alias.name
                    else:
                        self.imports[alias.name.split(".", 1)[0]] = (
                            alias.name.split(".", 1)[0]
                        )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = package.split(".")
                    if node.level - 1 > 0:
                        parts = parts[: -(node.level - 1)]
                    base = ".".join(parts + ([node.module] if node.module else []))
                for alias in node.names:
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.imports[alias.asname or alias.name] = target

    def _index_functions(
        self,
        body: List[ast.stmt],
        prefix: str,
        class_name: Optional[str],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local = f"{prefix}{node.name}"
                self.functions[local] = FunctionInfo(
                    self, node, local, class_name
                )
                # Nested functions are scopes of their own.
                self._index_functions(
                    node.body, prefix=f"{local}.", class_name=class_name
                )
            elif isinstance(node, ast.ClassDef):
                self._index_functions(
                    node.body,
                    prefix=f"{prefix}{node.name}.",
                    class_name=node.name,
                )
            elif isinstance(node, (ast.If, ast.Try)):
                # Conditionally defined functions (TYPE_CHECKING blocks,
                # platform fallbacks) still belong to the module.
                self._index_functions(node.body, prefix, class_name)
                for handler in getattr(node, "handlers", []):
                    self._index_functions(handler.body, prefix, class_name)
                self._index_functions(node.orelse, prefix, class_name)

    def function_by_name(self, name: str) -> Optional[FunctionInfo]:
        """Module-local resolution of a bare name (top level wins)."""
        info = self.functions.get(name)
        if info is not None:
            return info
        for local, candidate in self.functions.items():
            if local.rsplit(".", 1)[-1] == name:
                return candidate
        return None


class Project:
    """Every module under ``<root>/src/repro``, plus call resolution."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.src = root / "src" / "repro"
        self.modules: Dict[str, ModuleInfo] = {}
        self.broken: List[Tuple[Path, SyntaxError]] = []
        self._load()

    def _load(self) -> None:
        for path in sorted(self.src.rglob("*.py")):
            source = path.read_text()
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                self.broken.append((path, exc))
                continue
            relpath = path.relative_to(self.src).as_posix()
            if path.name == "__init__.py":
                dotted = ".".join(
                    ("repro",) + path.parent.relative_to(self.src).parts
                )
            else:
                dotted = ".".join(
                    ("repro",)
                    + path.parent.relative_to(self.src).parts
                    + (path.stem,)
                )
            self.modules[dotted] = ModuleInfo(
                dotted, path, relpath, tree, source
            )

    def iter_modules(self) -> Iterator[ModuleInfo]:
        for _name, module in sorted(self.modules.items()):
            yield module

    def function_at(self, qname: str) -> Optional[FunctionInfo]:
        """Look a function up by fully qualified dotted name."""
        for modname, module in self.modules.items():
            if qname.startswith(modname + "."):
                local = qname[len(modname) + 1 :]
                if local in module.functions:
                    return module.functions[local]
        return None

    def resolve_call(
        self, call: ast.Call, module: ModuleInfo,
        caller: Optional[FunctionInfo] = None,
    ) -> Optional[FunctionInfo]:
        """Best-effort static resolution of one call expression."""
        func = call.func
        if isinstance(func, ast.Name):
            target = module.function_by_name(func.id)
            if target is not None:
                return target
            imported = module.imports.get(func.id)
            if imported is not None:
                return self.function_at(imported)
            return None
        dotted = dotted_name(func)
        if dotted is None:
            return None
        first, _, rest = dotted.partition(".")
        if first == "self" and caller is not None and caller.class_name:
            if "." not in rest:
                return module.functions.get(f"{caller.class_name}.{rest}")
            return None
        base = module.imports.get(first)
        if base is None:
            return None
        full = f"{base}.{rest}" if rest else base
        return self.function_at(full)

    def counter_namespaces(self) -> Tuple[str, ...]:
        """``COUNTER_NAMESPACES`` from ``repro/perf/counters.py``, statically."""
        counters = self.modules.get("repro.perf.counters")
        if counters is None:
            return ()
        for node in ast.walk(counters.tree):
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "COUNTER_NAMESPACES" in targets:
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:  # pragma: no cover - malformed
                        return ()
                    return tuple(str(item) for item in value)
        return ()
