"""The lint engine: run rules, apply suppressions, reconcile the baseline.

Pipeline per run:

1. Load the :class:`~repro.lint.project.Project` (every module under
   ``src/repro``) and run every rule to collect *raw* findings.
2. Assign each finding its content fingerprint.
3. Filter findings through the per-file ``# repro: allow`` suppressions
   (marking the ones that matched as used).
4. Emit a ``stale-allow`` finding for every suppression that matched
   nothing — dead suppressions are themselves violations.
5. Partition the survivors against the baseline: grandfathered findings
   are reported separately; baseline entries that no longer match
   become ``stale-baseline`` findings, entries without a reason become
   ``unexplained-baseline`` findings.

``run_lint`` returns a :class:`LintReport`; the historic
``run_checks(root)`` contract (post-suppression findings including
stale-allow, no baseline handling) stays available for the
``tools/check_repro.py`` wrapper and its tests.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, compute_fingerprint
from repro.lint.project import ModuleInfo, Project
from repro.lint.rules import Rule, default_rules

#: Rule id of the dead-suppression findings the engine itself emits.
STALE_ALLOW = "stale-allow"
#: Rule ids of the baseline bookkeeping findings.
STALE_BASELINE = "stale-baseline"
UNEXPLAINED_BASELINE = "unexplained-baseline"


class LintReport:
    """Everything one engine run learned."""

    def __init__(
        self,
        findings: List[Finding],
        grandfathered: List[Finding],
        project: Project,
    ) -> None:
        #: Actionable findings (violations, stale suppressions, baseline
        #: bookkeeping errors) — non-empty means the lint fails.
        self.findings = findings
        #: Violations matched by a baseline entry: reported, not fatal.
        self.grandfathered = grandfathered
        self.project = project

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": [f.to_dict() for f in self.grandfathered],
        }


def _fingerprint_findings(findings: Sequence[Finding], root: Path) -> None:
    """Assign content fingerprints, disambiguating identical lines."""
    lines_cache: Dict[Path, List[str]] = {}
    seen: Dict[Tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=lambda f: (str(f.path), f.line)):
        try:
            relpath = finding.path.relative_to(root).as_posix()
        except ValueError:
            relpath = finding.path.as_posix()
        if finding.path not in lines_cache:
            try:
                lines_cache[finding.path] = finding.path.read_text().splitlines()
            except OSError:
                lines_cache[finding.path] = []
        source_lines = lines_cache[finding.path]
        text = ""
        if 1 <= finding.line <= len(source_lines):
            text = source_lines[finding.line - 1].strip()
        key = (finding.rule, relpath, text)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        finding.fingerprint = compute_fingerprint(
            finding.rule, relpath, source_lines, finding.line, occurrence
        )


def _module_for(
    project: Project, path: Path
) -> Optional[ModuleInfo]:
    for module in project.modules.values():
        if module.path == path:
            return module
    return None


def run_lint(
    root: Path,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Run the engine over ``<root>/src/repro``."""
    project = Project(root)
    active_rules = list(rules) if rules is not None else default_rules()

    raw: List[Finding] = []
    for path, error in project.broken:
        raw.append(
            Finding(
                path,
                error.lineno or 1,
                "syntax-error",
                f"file does not parse: {error.msg}",
            )
        )
    for rule in active_rules:
        raw.extend(rule.run(project))

    # Suppression filtering (marks matched suppressions as used).
    kept: List[Finding] = []
    for finding in raw:
        module = _module_for(project, finding.path)
        if module is not None and module.suppressions.suppresses(
            finding.rule, finding.line
        ):
            continue
        kept.append(finding)

    # Dead suppressions are findings of their own.
    for module in project.iter_modules():
        for suppression in module.suppressions.stale():
            kept.append(
                Finding(
                    module.path,
                    suppression.line,
                    STALE_ALLOW,
                    f"suppression for rule {suppression.rule!r} matches no "
                    "finding; delete it (or fix the rule id)",
                )
            )

    _fingerprint_findings(kept, root)
    kept.sort(key=lambda f: (str(f.path), f.line, f.rule))

    if baseline is None:
        return LintReport(kept, [], project)

    actionable: List[Finding] = []
    grandfathered: List[Finding] = []
    for finding in kept:
        if finding.rule not in (STALE_ALLOW,) and baseline.matches(finding):
            grandfathered.append(finding)
        else:
            actionable.append(finding)
    for entry in baseline.stale_entries():
        actionable.append(
            Finding(
                baseline.path,
                1,
                STALE_BASELINE,
                f"baseline entry {entry.fingerprint} ({entry.rule} in "
                f"{entry.path}) matches no finding; remove it",
            )
        )
    for entry in baseline.unexplained_entries():
        actionable.append(
            Finding(
                baseline.path,
                1,
                UNEXPLAINED_BASELINE,
                f"baseline entry {entry.fingerprint} ({entry.rule} in "
                f"{entry.path}) has no reason; every grandfathered finding "
                "needs one",
            )
        )
    return LintReport(actionable, grandfathered, project)


def run_checks(root: Path) -> List[Finding]:
    """Historic entry point: post-suppression findings, no baseline."""
    return run_lint(root).findings
