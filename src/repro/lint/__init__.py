"""Flow-sensitive static analysis of the repro codebase itself.

Where :mod:`repro.analysis` analyses *quantum circuits*, this package
analyses the *project's own source* — it enforces the soundness and
resource invariants that the equivalence-checking paradigms depend on
(probabilistic evidence never laundered into proven verdicts, acquired
descriptors released on every path, cooperative deadlines threaded
through every fixpoint loop, errors classified through the taxonomy).

Layers:

``cfg``
    Per-function control-flow graphs from :mod:`ast`, with exception
    and ``finally`` edges.
``solver``
    Generic forward worklist fixpoint solver plus post-dominators and
    control dependence.
``project``
    Whole-project model: modules, functions, imports, static call
    resolution.
``rules``
    The rule set (syntactic call-pattern rules and the dataflow rules).
``engine``
    Orchestration: suppressions, stale-allow, fingerprints, baseline.
``cli``
    The ``tools/check_repro.py`` command line.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.cfg import CFG, CFGNode, build_cfg
from repro.lint.engine import LintReport, run_checks, run_lint
from repro.lint.findings import Finding, compute_fingerprint
from repro.lint.project import FunctionInfo, ModuleInfo, Project
from repro.lint.rules import Rule, default_rules
from repro.lint.solver import (
    DataflowResult,
    control_dependence,
    postdominators,
    solve_forward,
)
from repro.lint.suppressions import Suppression, SuppressionIndex

__all__ = [
    "Baseline",
    "CFG",
    "CFGNode",
    "DataflowResult",
    "Finding",
    "FunctionInfo",
    "LintReport",
    "ModuleInfo",
    "Project",
    "Rule",
    "Suppression",
    "SuppressionIndex",
    "build_cfg",
    "compute_fingerprint",
    "control_dependence",
    "default_rules",
    "postdominators",
    "run_checks",
    "run_lint",
    "solve_forward",
    "write_baseline",
]
