"""``resource-leak``: acquired OS resources must reach release on every path.

The supervised harness and service layer juggle raw file descriptors
(``os.pipe``), ``multiprocessing`` connections, forked children, and
temporary files.  A descriptor leaked on the *exceptional* path is the
classic bug class here: the happy path closes everything, then one
``pickle.loads`` raise mid-handshake strands both pipe ends until the
supervisor hits ``EMFILE`` hours later.

Two phases per function:

1. **Escape analysis** (AST): an acquisition whose handle is returned,
   yielded, stored into ``self``/a container, aliased, or passed to a
   non-release call *escapes* — its lifetime is someone else's problem
   and the rule stays quiet about it.
2. **May-open dataflow** (CFG): forward analysis tracking, per variable,
   the set of acquisition sites that may still be open.  ``with``
   acquisitions release at the ``with_exit`` node (normal *and*
   exceptional continuations both pass through it in our CFG).  Release
   calls are ``x.close()``, ``os.close(x)``, and ``os.waitpid(x, ...)``
   (reaping a forked child).  Exception edges *out of the acquisition
   statement itself* propagate the pre-state: if ``open()`` raises, no
   resource was acquired.

A finding is reported at the acquisition line when any still-open site
reaches the normal exit or the raise exit, and says which kind of path
leaks it.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, CFGNode, EXC
from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, ModuleInfo, Project, dotted_name
from repro.lint.rules.base import Rule

#: variable name -> frozenset of acquisition-site node indices
State = Dict[str, FrozenSet[int]]

#: Full dotted calls that acquire a releasable resource.
ACQUIRE_DOTTED = {
    "os.pipe": "pipe file descriptors",
    "os.open": "a file descriptor",
    "os.dup": "a duplicated file descriptor",
    "os.fork": "a child process",
    "tempfile.mkstemp": "a temp-file descriptor",
}

#: Bare / last-component call names that acquire a resource.
ACQUIRE_NAMES = {
    "open": "a file handle",
    "Pipe": "a connection pair",
    "NamedTemporaryFile": "a temporary file",
    "TemporaryFile": "a temporary file",
    "accept": "an accepted connection",
    "Client": "a client connection",
    "Listener": "a listener socket",
}

#: Method names whose receiver is released.
RELEASE_METHODS = {"close", "terminate", "kill", "cleanup"}

#: ``os.<fn>(handle, ...)`` calls that release their first argument.
RELEASE_FUNCS = {"os.close", "os.closerange", "os.waitpid"}

#: Packages in scope: where raw OS resources are legitimately handled.
SCOPE_PACKAGES = ("harness", "service", "fuzz")


def _acquisition(call: ast.Call) -> Optional[str]:
    """Resource description if this call acquires one, else None."""
    dotted = dotted_name(call.func)
    if dotted in ACQUIRE_DOTTED:
        return ACQUIRE_DOTTED[dotted]
    name = None
    if isinstance(call.func, ast.Name):
        name = call.func.id
    elif isinstance(call.func, ast.Attribute):
        name = call.func.attr
    if name in ACQUIRE_NAMES:
        return ACQUIRE_NAMES[name]
    return None


def _target_names(target: ast.AST) -> List[str]:
    names: List[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.extend(_target_names(target.value))
    return names


class _Site:
    """One acquisition site inside a function."""

    __slots__ = ("index", "line", "names", "what", "managed", "stmt")

    def __init__(
        self, index: int, line: int, names: Tuple[str, ...], what: str,
        managed: bool, stmt: ast.stmt,
    ) -> None:
        self.index = index
        self.line = line
        self.names = names
        self.what = what
        #: acquired by a ``with`` item — released at with_exit.
        self.managed = managed
        #: the acquiring statement (to match with_exit back to its With).
        self.stmt = stmt


def _collect_sites(cfg: CFG) -> Dict[int, List[_Site]]:
    """Acquisition sites keyed by CFG node index.

    Only *bound* acquisitions participate: a call whose handle is not
    assigned to plain names (``conn = Client(...)``,
    ``r, w = os.pipe()``) either escapes immediately (argument,
    attribute store) or is dropped — both out of this rule's scope
    (an unbound ``open(...)`` with no use is dead code, not a tracked
    handle).
    """
    sites: Dict[int, List[_Site]] = {}
    for node in cfg.statements():
        stmt = node.stmt
        # Synthetic nodes (with_exit, dispatch, finally) borrow their
        # statement for location only — the acquisition happens at the
        # real "stmt" node, and registering it twice would make the
        # with_exit's exception edge carry a spurious pre-state.
        if stmt is None or node.kind != "stmt":
            continue
        found: List[_Site] = []
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            what = _acquisition(stmt.value)
            if what is not None:
                names: List[str] = []
                for target in stmt.targets:
                    names.extend(_target_names(target))
                if names:
                    found.append(
                        _Site(node.index, stmt.lineno, tuple(names), what,
                              managed=False, stmt=stmt)
                    )
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if not isinstance(item.context_expr, ast.Call):
                    continue
                what = _acquisition(item.context_expr)
                if what is None:
                    continue
                names = (
                    _target_names(item.optional_vars)
                    if item.optional_vars is not None
                    else []
                )
                found.append(
                    _Site(node.index, stmt.lineno, tuple(names), what,
                          managed=True, stmt=stmt)
                )
        if found:
            sites[node.index] = found
    return sites


def _escaped_names(cfg: CFG, tracked: Set[str]) -> Set[str]:
    """Names whose resource lifetime leaves the function.

    Conservative per-name escape: returned, yielded, aliased to another
    name, stored into an attribute/subscript/container, or passed as an
    argument to anything that is not a release call.
    """
    escaped: Set[str] = set()

    def is_release_call(call: ast.Call) -> bool:
        dotted = dotted_name(call.func)
        if dotted in RELEASE_FUNCS:
            return True
        return (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in RELEASE_METHODS
        )

    for node in cfg.statements():
        stmt = node.stmt
        if stmt is None:
            continue
        for expr in ast.walk(stmt):
            if isinstance(expr, (ast.Nonlocal, ast.Global)):
                # The binding outlives this scope; the enclosing scope
                # (or module teardown) owns the release.
                escaped.update(set(expr.names) & tracked)
            elif isinstance(expr, ast.Return) and expr.value is not None:
                for child in ast.walk(expr.value):
                    if isinstance(child, ast.Name) and child.id in tracked:
                        escaped.add(child.id)
            elif isinstance(expr, (ast.Yield, ast.YieldFrom)):
                for child in ast.walk(expr):
                    if isinstance(child, ast.Name) and child.id in tracked:
                        escaped.add(child.id)
            elif isinstance(expr, ast.Call) and not is_release_call(expr):
                args = list(expr.args) + [kw.value for kw in expr.keywords]
                for arg in args:
                    for child in ast.walk(arg):
                        if (
                            isinstance(child, ast.Name)
                            and child.id in tracked
                        ):
                            escaped.add(child.id)
            elif isinstance(expr, ast.Assign):
                value_names = {
                    child.id
                    for child in ast.walk(expr.value)
                    if isinstance(child, ast.Name)
                }
                stores_outward = any(
                    not isinstance(t, (ast.Name, ast.Tuple, ast.List))
                    for t in expr.targets
                )
                aliases = (
                    isinstance(expr.value, (ast.Name, ast.Tuple, ast.List))
                    and not isinstance(expr.value, ast.Call)
                )
                if stores_outward or aliases:
                    escaped.update(value_names & tracked)
            elif isinstance(expr, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
                # Handle packed into a container literal (outside an
                # unpacking assignment target): treat as escaped.
                parent_is_store = isinstance(
                    getattr(expr, "ctx", None), ast.Store
                )
                if not parent_is_store:
                    for child in ast.walk(expr):
                        if (
                            isinstance(child, ast.Name)
                            and isinstance(child.ctx, ast.Load)
                            and child.id in tracked
                        ):
                            escaped.add(child.id)
    return escaped


class ResourceLeakRule(Rule):
    """Every acquisition must reach a release on all CFG paths."""

    id = "resource-leak"

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            package = module.relpath.split("/", 1)[0]
            if package not in SCOPE_PACKAGES:
                continue
            for _name, function in sorted(module.functions.items()):
                findings.extend(self._check_function(module, function))
        return findings

    def _check_function(
        self, module: ModuleInfo, function: FunctionInfo
    ) -> List[Finding]:
        cfg = function.cfg
        sites = _collect_sites(cfg)
        if not sites:
            return []
        tracked: Set[str] = set()
        for site_list in sites.values():
            for site in site_list:
                tracked.update(site.names)
        escaped = _escaped_names(cfg, tracked)

        site_by_index: Dict[int, _Site] = {}
        live_sites: Dict[int, List[_Site]] = {}
        for index, site_list in sites.items():
            kept = []
            for site in site_list:
                if site.names and all(n in escaped for n in site.names):
                    continue
                site_by_index[site.index] = site
                kept.append(site)
            if kept:
                live_sites[index] = kept
        if not live_sites:
            return []

        leaks = self._solve_leaks(cfg, live_sites, escaped)
        findings: List[Finding] = []
        for site_index in sorted(leaks):
            site = site_by_index[site_index]
            paths = leaks[site_index]
            kinds = " and ".join(sorted(paths))
            handle = ", ".join(site.names) or "the handle"
            findings.append(
                self.finding(
                    module,
                    site.line,
                    f"{handle} ({site.what}) may never be released on "
                    f"{kinds} paths out of {function.local_name}(); close "
                    "it in a finally block or use a with statement",
                    function,
                )
            )
        return findings

    def _solve_leaks(
        self,
        cfg: CFG,
        sites: Dict[int, List[_Site]],
        escaped: Set[str],
    ) -> Dict[int, Set[str]]:
        """Fixpoint over may-open states; returns site -> leaking path kinds."""
        bottom: State = {}
        entry: Dict[int, State] = {node.index: {} for node in cfg.nodes}
        entry[cfg.entry.index] = {}
        # Manual worklist: this analysis needs edge-sensitive transfer
        # (EXC edges out of an acquisition node carry the PRE-state) and
        # per-terminal-state inspection, which the generic solver's
        # node-state interface does not expose cleanly.
        exit_open: Dict[str, Set[int]] = {"normal": set(), "exceptional": set()}
        states: Dict[int, State] = {cfg.entry.index: {}}
        worklist: List[CFGNode] = [cfg.entry]
        iterations = 0
        while worklist:
            iterations += 1
            if iterations > 100_000:  # pragma: no cover - divergence guard
                break
            node = worklist.pop()
            in_state = states.get(node.index, bottom)
            post = self._transfer(node, in_state, sites, escaped)
            for succ, label in node.succs:
                # If the acquiring statement itself raises, the resource
                # was never acquired: EXC edges out of an acquisition
                # node carry the PRE-state.
                carried = (
                    in_state
                    if label == EXC and node.index in sites
                    else post
                )
                # with_exit releases managed sites on every outgoing edge
                # (its very kind models __exit__ having run).
                if succ.index in (cfg.exit.index, cfg.raise_exit.index):
                    kind = (
                        "normal"
                        if succ.index == cfg.exit.index
                        else "exceptional"
                    )
                    for open_sites in carried.values():
                        exit_open[kind].update(open_sites)
                    continue
                old = states.get(succ.index)
                merged = self._join(old, carried)
                if old is None or merged != old:
                    states[succ.index] = merged
                    worklist.append(succ)

        leaks: Dict[int, Set[str]] = {}
        for kind, open_sites in exit_open.items():
            for index in open_sites:
                leaks.setdefault(index, set()).add(kind)
        return leaks

    @staticmethod
    def _join(left: Optional[State], right: State) -> State:
        if left is None:
            return dict(right)
        merged = dict(left)
        for name, open_sites in right.items():
            merged[name] = merged.get(name, frozenset()) | open_sites
        return merged

    def _transfer(
        self,
        node: CFGNode,
        state: State,
        sites: Dict[int, List[_Site]],
        escaped: Set[str],
    ) -> State:
        post = dict(state)
        stmt = node.stmt

        # with_exit: the context managers of this With have run __exit__.
        if node.kind == "with_exit" and isinstance(
            stmt, (ast.With, ast.AsyncWith)
        ):
            managed_names: Set[str] = set()
            for site_list in sites.values():
                for site in site_list:
                    if site.managed and site.stmt is stmt:
                        managed_names.update(site.names)
            for name in managed_names:
                post.pop(name, None)
            return post

        if stmt is None or node.kind != "stmt":
            return post

        # Releases first (so ``x = open(); x.close()`` in one stmt — not
        # expressible anyway — cannot mask an acquisition).
        for call in node.calls():
            dotted = dotted_name(call.func)
            if dotted in RELEASE_FUNCS and call.args:
                for child in ast.walk(call.args[0]):
                    if isinstance(child, ast.Name):
                        post.pop(child.id, None)
            elif (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in RELEASE_METHODS
                and isinstance(call.func.value, ast.Name)
            ):
                post.pop(call.func.value.id, None)

        # Acquisitions at this node.
        for site in sites.get(node.index, ()):
            if site.managed:
                # Tracked until with_exit; the with body may still leak
                # via an alias, but the manager itself releases.
                for name in site.names:
                    if name not in escaped:
                        post[name] = frozenset({site.index})
                continue
            for name in site.names:
                if name not in escaped:
                    post[name] = frozenset({site.index})

        return post
