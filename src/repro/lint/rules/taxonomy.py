"""``error-taxonomy``: harness/service error handling must use repro.errors.

The supervised checking service communicates failures across process
boundaries as :class:`repro.errors.CheckError` subclasses — the verdict
cache, retry policy, and quarantine all dispatch on ``kind`` and
``transient``.  An ad-hoc ``RuntimeError`` raised in the harness either
crashes a worker with an unclassifiable error or, worse, gets swallowed
by a broad handler and turns a crash into a silent ``NO_INFORMATION``.

Three checks, scoped to ``harness/`` and ``service/``:

* ``except:`` (bare) — always flagged; it catches ``SystemExit`` and
  ``KeyboardInterrupt`` and has no legitimate use here.
* ``except Exception:`` / ``except BaseException:`` that *swallows* —
  flagged unless the handler body re-raises, classifies
  (``classify_exception`` / ``error_from_dict``), or is a worker-exit
  path (``os._exit``).  Logging alone is swallowing.
* ``raise X(...)`` of a class outside the taxonomy — allowed classes
  are the ``repro.errors`` hierarchy, stdlib contract errors
  (``ValueError``, ``TypeError``, ``KeyError``,
  ``NotImplementedError``), and exception classes defined in the same
  module (local taxonomies wrap the global one).  Bare ``raise`` and
  ``raise name`` re-raises are always fine.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.findings import Finding
from repro.lint.project import ModuleInfo, Project
from repro.lint.rules.base import Rule, iter_scopes

#: Stdlib exceptions allowed for caller-contract violations.
STDLIB_ALLOWED = {
    "ValueError",
    "TypeError",
    "KeyError",
    "NotImplementedError",
    "StopIteration",
    "AssertionError",
}

#: Calls in a handler body that count as classifying the exception.
CLASSIFIER_CALLS = {"classify_exception", "error_from_dict"}

#: Calls that mark a worker-exit path (the child reports via its exit
#: status, not an exception object).
EXIT_CALLS = {"_exit"}

SCOPE_PACKAGES = ("harness", "service")


def _taxonomy_classes(project: Project) -> Set[str]:
    """Exception class names defined in ``repro.errors``."""
    module = project.modules.get("repro.errors")
    classes: Set[str] = set()
    if module is None:
        return classes
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            classes.add(stmt.name)
    return classes


def _local_exception_classes(module: ModuleInfo) -> Set[str]:
    """Class names defined anywhere in this module."""
    return {
        node.name
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
    }


def _raised_class(raise_stmt: ast.Raise) -> Optional[str]:
    """Name of the class in ``raise X(...)`` / ``raise X``, else None.

    ``raise`` (bare) and ``raise variable`` where the variable is not a
    call return None — re-raises and pre-built errors are out of scope.
    """
    exc = raise_stmt.exc
    if exc is None:
        return None
    if isinstance(exc, ast.Call):
        func = exc.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in CLASSIFIER_CALLS:
            # ``raise classify_exception(exc)`` raises a taxonomy error
            # *by construction*.
            return None
        return name
    return None


def _handler_is_broad(handler: ast.ExceptHandler) -> Optional[str]:
    """'bare', 'Exception', 'BaseException', or None."""
    if handler.type is None:
        return "bare"
    names: List[str] = []
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for type_expr in types:
        if isinstance(type_expr, ast.Name):
            names.append(type_expr.id)
    for broad in ("BaseException", "Exception"):
        if broad in names:
            return broad
    return None


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """True if no path in the handler re-raises, classifies, or exits."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return False
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in CLASSIFIER_CALLS or name in EXIT_CALLS:
                return False
    return True


class ErrorTaxonomyRule(Rule):
    """Harness/service errors must flow through the repro.errors taxonomy."""

    id = "error-taxonomy"

    def run(self, project: Project) -> List[Finding]:
        taxonomy = _taxonomy_classes(project)
        findings: List[Finding] = []
        for module in project.iter_modules():
            package = module.relpath.split("/", 1)[0]
            if package not in SCOPE_PACKAGES:
                continue
            local_classes = _local_exception_classes(module)
            allowed = taxonomy | STDLIB_ALLOWED | local_classes
            for cfg, info in iter_scopes(module):
                for node in cfg.statements():
                    stmt = node.stmt
                    if stmt is None:
                        continue
                    # Each ``except E:`` clause is its own CFG node, so
                    # handlers are anchored exactly once even when the
                    # try also has a finally (whose synthetic node
                    # borrows the same Try statement for location).
                    if node.kind == "except" and isinstance(
                        stmt, ast.ExceptHandler
                    ):
                        findings.extend(
                            self._check_handler(module, stmt, info)
                        )
                    elif node.kind == "stmt" and isinstance(stmt, ast.Raise):
                        name = _raised_class(stmt)
                        if name is None or name in allowed:
                            continue
                        findings.append(
                            self.finding(
                                module,
                                stmt.lineno,
                                f"raise {name}(...) bypasses the "
                                "repro.errors taxonomy; raise a CheckError "
                                "subclass (or a stdlib contract error) so "
                                "the supervisor can classify it",
                                info,
                            )
                        )
        return findings

    def _check_handler(
        self, module: ModuleInfo, handler: ast.ExceptHandler, info
    ) -> List[Finding]:
        broad = _handler_is_broad(handler)
        if broad is None:
            return []
        if broad == "bare":
            return [
                self.finding(
                    module,
                    handler.lineno,
                    "bare except: catches SystemExit/KeyboardInterrupt; "
                    "catch Exception (and re-raise or classify) instead",
                    info,
                )
            ]
        if _handler_swallows(handler):
            return [
                self.finding(
                    module,
                    handler.lineno,
                    f"except {broad}: swallows the exception; re-raise, "
                    "classify via repro.errors.classify_exception, or "
                    "narrow the handler",
                    info,
                )
            ]
        return []
