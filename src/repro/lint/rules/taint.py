"""``soundness-taint``: probabilistic evidence must never become a proof.

The project's verdict ladder (:class:`repro.ec.results.Equivalence`)
distinguishes *proofs* (``EQUIVALENT``, ``EQUIVALENT_UP_TO_GLOBAL_PHASE``,
``NOT_EQUIVALENT``) from *evidence* (``PROBABLY_EQUIVALENT``).  The rule
enforces the ladder as a dataflow property: values derived from random
draws (seeded or not — randomness is about evidence strength, not
reproducibility here) must not decide a proven-verdict construction.

Taint bits:

``prob``
    Derived from an RNG draw, a generated stimulus, or a random
    instantiation (``check_instantiated_random`` and friends).
``witness``
    The probabilistic value went through a *witness extractor* — a
    computation (``fidelity``, counterexample verification) whose
    *disagreement* is a deterministic proof.  A mismatch between two
    exact simulations of one random stimulus refutes equivalence no
    matter how the stimulus was chosen, so ``prob+witness`` may justify
    ``NOT_EQUIVALENT`` — but never a positive proof: agreement of any
    number of random stimuli remains evidence.

Flows tracked: assignments (including tuple unpacking and ``for``
targets), expression composition, one level of interprocedural return
summaries through the static call graph, and *implicit* flows — a
proven verdict constructed under a branch whose condition is tainted is
exactly the ``PROBABLY_EQUIVALENT -> EQUIVALENT`` laundering edit this
rule exists to catch, so control dependence (post-dominator based) is
part of the sink check.

Sanitizer: reading ``.proven`` / ``.equivalence`` /
``.considered_equivalent`` off a result object drops taint — verdicts
already went through the ladder when they were constructed, so
*dispatching* on a verdict is sound even when the verdict came from the
simulation strategy.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.cfg import CFG, CFGNode, EXC
from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, ModuleInfo, Project, dotted_name
from repro.lint.rules.base import Rule
from repro.lint.solver import control_dependence, solve_forward

Taint = FrozenSet[str]
State = Dict[str, Taint]

PROB = "prob"
WITNESS = "witness"
RNG = "rng"

EMPTY: Taint = frozenset()
PROB_TAINT: Taint = frozenset({PROB})
RNG_TAINT: Taint = frozenset({RNG})

#: Function names whose return value is probabilistic evidence.
PROB_SOURCES = {
    "generate_stimulus",
    "generate_stimuli",
    "check_instantiated_random",
    "random_instantiation",
    "instantiate_random",
}

#: Receiver names that are RNG objects even without local construction.
RNG_RECEIVERS = {"rng", "_rng"}

#: Witness extractors: deterministic comparisons of simulated outcomes
#: whose *mismatch* is a proof.
WITNESS_EXTRACTORS = {"fidelity"}

#: Attribute reads that declassify (the verdict ladder itself).
SANITIZER_ATTRS = {"proven", "equivalence", "considered_equivalent"}

#: Container-mutation methods that propagate element taint to the
#: container.
MUTATORS = {"append", "add", "extend", "insert", "update"}

#: Verdict constants that claim a proof.
PROVEN_POSITIVE = {"EQUIVALENT", "EQUIVALENT_UP_TO_GLOBAL_PHASE"}
PROVEN_NEGATIVE = {"NOT_EQUIVALENT"}

#: Packages whose modules are checked for sinks.
SCOPE_PACKAGES = ("ec", "service", "harness", "fuzz")


def _join(left: State, right: State) -> State:
    if not left:
        return right
    if not right:
        return left
    merged = dict(left)
    for name, bits in right.items():
        merged[name] = merged.get(name, EMPTY) | bits
    return merged


class _Analysis:
    """Per-function taint analysis with memoized return summaries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._summaries: Dict[str, Taint] = {}
        self._in_progress: Set[str] = set()

    # -- expression taint --------------------------------------------------
    def eval_taint(
        self,
        expr: ast.AST,
        state: State,
        module: ModuleInfo,
        caller: Optional[FunctionInfo],
    ) -> Taint:
        if isinstance(expr, ast.Name):
            return state.get(expr.id, EMPTY)
        if isinstance(expr, ast.Attribute):
            if expr.attr in SANITIZER_ATTRS:
                return EMPTY
            return self.eval_taint(expr.value, state, module, caller)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, state, module, caller)
        if isinstance(expr, ast.Constant):
            return EMPTY
        bits = EMPTY
        for child in ast.iter_child_nodes(expr):
            bits |= self.eval_taint(child, state, module, caller)
        return bits

    def _call_taint(
        self,
        call: ast.Call,
        state: State,
        module: ModuleInfo,
        caller: Optional[FunctionInfo],
    ) -> Taint:
        name = None
        receiver_taint = EMPTY
        if isinstance(call.func, ast.Name):
            name = call.func.id
        elif isinstance(call.func, ast.Attribute):
            name = call.func.attr
            receiver_taint = self.eval_taint(
                call.func.value, state, module, caller
            )
        arg_taint = EMPTY
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            arg_taint |= self.eval_taint(arg, state, module, caller)

        # A draw from an RNG object: rng.random(), self._rng.choice(...).
        if isinstance(call.func, ast.Attribute):
            receiver = call.func.value
            receiver_is_rng = RNG in receiver_taint
            if isinstance(receiver, ast.Name) and receiver.id in RNG_RECEIVERS:
                receiver_is_rng = True
            if (
                isinstance(receiver, ast.Attribute)
                and receiver.attr in RNG_RECEIVERS
            ):
                receiver_is_rng = True
            if receiver_is_rng:
                return PROB_TAINT | (arg_taint - RNG_TAINT)

        if name is not None:
            if name == "Random":
                dotted = dotted_name(call.func)
                if dotted in ("random.Random", "Random"):
                    return RNG_TAINT
            if name in PROB_SOURCES:
                return PROB_TAINT | arg_taint
            if name in WITNESS_EXTRACTORS and PROB in (
                arg_taint | receiver_taint
            ):
                return frozenset({PROB, WITNESS})

        # Interprocedural: one level of return-taint summary.
        callee = self.project.resolve_call(call, module, caller=caller)
        summary = EMPTY
        if callee is not None:
            summary = self.return_summary(callee)
        return arg_taint | (receiver_taint - RNG_TAINT) | summary

    # -- transfer function -------------------------------------------------
    def transfer(
        self,
        node: CFGNode,
        state: State,
        module: ModuleInfo,
        caller: Optional[FunctionInfo],
    ) -> State:
        stmt = node.stmt
        if stmt is None or node.kind != "stmt":
            return state
        updates: Dict[str, Taint] = {}
        if isinstance(stmt, ast.Assign):
            bits = self.eval_taint(stmt.value, state, module, caller)
            for target in stmt.targets:
                for name in _target_names(target):
                    updates[name] = bits
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            bits = self.eval_taint(stmt.value, state, module, caller)
            for name in _target_names(stmt.target):
                updates[name] = bits
        elif isinstance(stmt, ast.AugAssign):
            bits = self.eval_taint(
                stmt.value, state, module, caller
            ) | self.eval_taint(stmt.target, state, module, caller)
            for name in _target_names(stmt.target):
                updates[name] = bits
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            bits = self.eval_taint(stmt.iter, state, module, caller)
            for name in _target_names(stmt.target):
                updates[name] = bits
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    bits = self.eval_taint(
                        item.context_expr, state, module, caller
                    )
                    for name in _target_names(item.optional_vars):
                        updates[name] = bits
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            # Mutating a container with tainted elements taints the
            # container: ``stimuli.append(stimulus)``.
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in MUTATORS
                and isinstance(call.func.value, ast.Name)
            ):
                bits = EMPTY
                for arg in list(call.args) + [k.value for k in call.keywords]:
                    bits |= self.eval_taint(arg, state, module, caller)
                bits -= RNG_TAINT
                if bits:
                    receiver = call.func.value.id
                    updates[receiver] = state.get(receiver, EMPTY) | bits
        if not updates:
            return state
        merged = dict(state)
        merged.update(updates)
        return merged

    # -- per-function machinery --------------------------------------------
    def solve(
        self, cfg: CFG, module: ModuleInfo, caller: Optional[FunctionInfo]
    ):
        return solve_forward(
            cfg,
            transfer=lambda node, state: self.transfer(
                node, state, module, caller
            ),
            join=_join,
            initial={},
            bottom={},
        )

    def return_summary(self, function: FunctionInfo) -> Taint:
        """Taint of a function's return value (memoized, cycle-safe)."""
        qname = function.qname
        if qname in self._summaries:
            return self._summaries[qname]
        if qname in self._in_progress:
            return EMPTY
        self._in_progress.add(qname)
        try:
            cfg = function.cfg
            result = self.solve(cfg, function.module, function)
            bits = EMPTY
            for node in cfg.statements():
                stmt = node.stmt
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    bits |= self.eval_taint(
                        stmt.value,
                        result.at_entry(node),
                        function.module,
                        function,
                    )
            bits -= RNG_TAINT  # returning an rng is not itself evidence
            self._summaries[qname] = bits
            return bits
        finally:
            self._in_progress.discard(qname)


def _target_names(target: ast.AST) -> List[str]:
    names: List[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.extend(_target_names(target.value))
    return names


def _verdict_constant(expr: ast.AST) -> Optional[str]:
    """``Equivalence.X`` (or bare imported ``X``) for a proven verdict."""
    if isinstance(expr, ast.Attribute):
        base = expr.value
        if isinstance(base, ast.Name) and base.id == "Equivalence":
            if expr.attr in PROVEN_POSITIVE | PROVEN_NEGATIVE:
                return expr.attr
    return None


class SoundnessTaintRule(Rule):
    """Probabilistic values must not decide proven verdicts."""

    id = "soundness-taint"

    def run(self, project: Project) -> List[Finding]:
        analysis = _Analysis(project)
        findings: List[Finding] = []
        for module in project.iter_modules():
            package = module.relpath.split("/", 1)[0]
            if package not in SCOPE_PACKAGES:
                continue
            for _name, function in sorted(module.functions.items()):
                findings.extend(
                    self._check_function(analysis, module, function)
                )
        return findings

    def _check_function(
        self,
        analysis: _Analysis,
        module: ModuleInfo,
        function: FunctionInfo,
    ) -> List[Finding]:
        cfg = function.cfg
        sinks = list(self._sinks(cfg))
        if not sinks:
            return []
        result = analysis.solve(cfg, module, function)
        governing = control_dependence(cfg)
        by_index = {node.index: node for node in cfg.nodes}
        findings: List[Finding] = []
        for node, verdict, args in sinks:
            data = EMPTY
            for arg in args:
                data |= analysis.eval_taint(
                    arg, result.at_entry(node), module, function
                )
            control = EMPTY
            for branch_index in governing.get(node.index, ()):
                branch = by_index[branch_index]
                control |= self._condition_taint(
                    analysis, branch, result, module, function
                )
            combined = data | control
            if PROB not in combined:
                continue
            if verdict in PROVEN_NEGATIVE and WITNESS in combined:
                # Refutation through a witness extractor: sound.
                continue
            kind = "positively proven" if verdict in PROVEN_POSITIVE else (
                "refuting"
            )
            via = []
            if PROB in data:
                via.append("data flow")
            if PROB in control:
                via.append("a probabilistic branch condition")
            findings.append(
                self.finding(
                    module,
                    node.line,
                    f"probabilistic evidence reaches the {kind} verdict "
                    f"Equivalence.{verdict} via {' and '.join(via)} without "
                    "a sound-witness guard; report PROBABLY_EQUIVALENT "
                    "instead (the verdict ladder is the soundness contract)",
                    function,
                )
            )
        return findings

    def _condition_taint(
        self,
        analysis: _Analysis,
        branch: CFGNode,
        result,
        module: ModuleInfo,
        function: FunctionInfo,
    ) -> Taint:
        stmt = branch.stmt
        expr: Optional[ast.AST] = None
        if isinstance(stmt, (ast.If, ast.While)):
            expr = stmt.test
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            expr = stmt.iter
        if expr is None:
            return EMPTY
        return analysis.eval_taint(
            expr, result.at_entry(branch), module, function
        )

    def _sinks(
        self, cfg: CFG
    ) -> List[Tuple[CFGNode, str, List[ast.AST]]]:
        """Proven-verdict constructions and returns in this function."""
        sinks: List[Tuple[CFGNode, str, List[ast.AST]]] = []
        for node in cfg.statements():
            for call in node.calls():
                name = None
                if isinstance(call.func, ast.Name):
                    name = call.func.id
                elif isinstance(call.func, ast.Attribute):
                    name = call.func.attr
                if name != "EquivalenceCheckingResult":
                    continue
                verdict_expr: Optional[ast.AST] = None
                if call.args:
                    verdict_expr = call.args[0]
                for keyword in call.keywords:
                    if keyword.arg == "equivalence":
                        verdict_expr = keyword.value
                if verdict_expr is None:
                    continue
                verdict = _verdict_constant(verdict_expr)
                if verdict is None:
                    continue
                args = [
                    a for a in call.args if a is not verdict_expr
                ] + [
                    k.value
                    for k in call.keywords
                    if k.value is not verdict_expr
                ]
                sinks.append((node, verdict, args))
            stmt = node.stmt
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                verdict = _verdict_constant(stmt.value)
                if verdict is not None:
                    sinks.append((node, verdict, []))
        return sinks
