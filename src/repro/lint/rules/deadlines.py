"""Cooperative-deadline rules.

``deadline-loop`` (intraprocedural, unchanged semantics)
    Every loop in a deadline-scoped function of the checker hot paths
    must consult the cooperative deadline.

``deadline-prop`` (interprocedural, new)
    Closes the documented hole of the old rule: loops in helpers that
    have no ``deadline`` in scope used to be exempt *by construction*.
    The pass computes, per function, a "can run unbounded" summary (a
    ``while`` loop that never consults ``deadline``), propagates it up
    the static call graph, and flags any such loop reachable from a
    checker entry point — either "thread the deadline through" (the
    helper has no ``deadline`` parameter) or "the loop ignores the
    in-scope deadline" (it has one but the loop never reads it).

Only ``while`` loops participate in propagation: a ``for`` loop over a
materialized iterable terminates with its input, while a ``while`` is
where fixpoint engines (ZX simplification, worklists, probing) actually
run unbounded.  The hot-path files keep the stricter all-loops
intraprocedural rule.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, Project
from repro.lint.rules.base import Rule

#: Files whose deadline-scoped functions get the strict all-loops rule.
HOT_PATH_PATTERNS = ("ec/*_checker.py", "zx/simplify.py")

#: Packages the interprocedural propagation follows calls into.  The DD
#: kernels are deliberately out: their loops are structural recursions
#: over node children, bounded by diagram size, and their budget is the
#: sandbox's hard wall clock — threading a deadline through every probe
#: loop would put a clock read in the hottest code of the project.
PROPAGATION_PACKAGES = ("ec", "zx")


def _is_hot_path(relpath: str) -> bool:
    return any(fnmatch.fnmatch(relpath, pat) for pat in HOT_PATH_PATTERNS)


def _loop_consults_deadline(loop: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == "deadline"
        for child in ast.walk(loop)
    )


def _direct_loops(function: FunctionInfo) -> Iterator[ast.AST]:
    """Loop statements belonging to this function's own scope."""
    for node in function.cfg.loops():
        assert node.stmt is not None
        yield node.stmt


class DeadlineLoopRule(Rule):
    """Loops in deadline-scoped hot-path functions must consult it."""

    id = "deadline-loop"

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            if not _is_hot_path(module.relpath):
                continue
            for _name, function in sorted(module.functions.items()):
                if "deadline" not in function.params:
                    continue
                for loop in _direct_loops(function):
                    if _loop_consults_deadline(loop):
                        continue
                    findings.append(
                        self.finding(
                            module,
                            loop.lineno,
                            "loop in a deadline-scoped function never "
                            "consults the cooperative deadline",
                            function,
                        )
                    )
        return findings


class DeadlinePropagationRule(Rule):
    """Unbounded loops reachable from checker entry points need deadlines."""

    id = "deadline-prop"

    def run(self, project: Project) -> List[Finding]:
        entries = self._entry_points(project)
        # BFS over the static call graph, remembering one (arbitrary,
        # first-discovered) call chain per function for the report.
        chains: Dict[str, Tuple[str, ...]] = {}
        queue: List[FunctionInfo] = []
        for entry in entries:
            if entry.qname not in chains:
                chains[entry.qname] = (entry.qname,)
                queue.append(entry)
        while queue:
            function = queue.pop(0)
            for callee in self._callees(project, function):
                if callee.qname in chains:
                    continue
                package = callee.module.relpath.split("/", 1)[0]
                if package not in PROPAGATION_PACKAGES:
                    continue
                chains[callee.qname] = chains[function.qname] + (callee.qname,)
                queue.append(callee)

        findings: List[Finding] = []
        for qname in sorted(chains):
            function = project.function_at(qname)
            if function is None:  # pragma: no cover - chains come from infos
                continue
            module = function.module
            has_deadline = "deadline" in function.params
            if has_deadline and _is_hot_path(module.relpath):
                # The strict intraprocedural rule already covers these.
                continue
            for loop in _direct_loops(function):
                if not isinstance(loop, ast.While):
                    continue
                if _loop_consults_deadline(loop):
                    continue
                chain = " -> ".join(chains[qname])
                if has_deadline:
                    message = (
                        "while-loop ignores the in-scope deadline in a "
                        f"function reachable from a checker entry ({chain})"
                    )
                else:
                    message = (
                        "while-loop can run unbounded in a helper without "
                        "a deadline parameter, reachable from a checker "
                        f"entry ({chain}); thread the deadline through"
                    )
                findings.append(
                    self.finding(module, loop.lineno, message, function)
                )
        return findings

    def _entry_points(self, project: Project) -> List[FunctionInfo]:
        entries: List[FunctionInfo] = []
        for module in project.iter_modules():
            if not _is_hot_path(module.relpath):
                continue
            for _name, function in sorted(module.functions.items()):
                if "deadline" in function.params:
                    entries.append(function)
        return entries

    def _callees(
        self, project: Project, function: FunctionInfo
    ) -> Iterator[FunctionInfo]:
        seen: Set[str] = set()
        for node in function.cfg.statements():
            for call in node.calls():
                callee = project.resolve_call(
                    call, function.module, caller=function
                )
                if callee is not None and callee.qname not in seen:
                    seen.add(callee.qname)
                    yield callee
