"""The call-pattern rules, re-hosted on the CFG/project substrate.

These five rules (``seeded-rng``, ``counter-namespace``,
``no-wallclock``, ``no-fork``, ``no-object-dd``) predate the dataflow
engine; their semantics are unchanged from the original single-pass AST
lint, but they now iterate CFG call sites, so every finding carries its
enclosing function and the same precise line attribution as the
dataflow rules.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.findings import Finding
from repro.lint.project import Project, dotted_name
from repro.lint.rules.base import Rule, iter_call_sites

#: Algorithmic packages where wall-clock reads are banned.
PURE_PACKAGES = ("circuit", "dd", "zx", "stab", "analysis")

#: Receiver names treated as PerfCounters instances.
COUNTER_RECEIVERS = {"counters", "perf", "perf_counters"}

#: Module-level ``random.*`` draws that consume the global (unseeded) RNG.
GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "getrandbits",
    "betavariate",
}

#: Call chains that create a child process.
FORK_CALLS = {
    "os.fork": "os.fork()",
    "os.forkpty": "os.forkpty()",
    "os.posix_spawn": "os.posix_spawn()",
    "os.system": "os.system()",
    "subprocess.Popen": "subprocess.Popen()",
    "subprocess.run": "subprocess.run()",
    "subprocess.call": "subprocess.call()",
    "subprocess.check_call": "subprocess.check_call()",
    "subprocess.check_output": "subprocess.check_output()",
    "multiprocessing.Process": "multiprocessing.Process()",
    "multiprocessing.Pool": "multiprocessing.Pool()",
    "multiprocessing.get_context": "multiprocessing.get_context()",
}

#: Bare-name process constructors (``from multiprocessing import Process``).
FORK_NAMES = {"Process", "Pool", "get_context"}

#: Legacy object-engine constructors banned in the array DD modules.
OBJECT_DD_NAMES = {"VNode", "MNode", "VEdge", "MEdge"}


class SeededRngRule(Rule):
    """No unseeded randomness outside ``fuzz/generator.py``."""

    id = "seeded-rng"

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            if module.relpath == "fuzz/generator.py":
                continue
            for node, call, info in iter_call_sites(module):
                dotted = dotted_name(call.func)
                if dotted is None:
                    continue
                message = None
                if (
                    dotted == "random.Random"
                    and not call.args
                    and not call.keywords
                ):
                    message = "random.Random() without a seed"
                elif dotted.startswith(("np.random.", "numpy.random.")):
                    message = (
                        f"{dotted}: use a seeded np.random.Generator instead"
                    )
                elif (
                    dotted.startswith("random.")
                    and dotted.split(".", 1)[1] in GLOBAL_RANDOM_FUNCS
                ):
                    message = f"{dotted}: draws from the global unseeded RNG"
                if message is not None:
                    findings.append(
                        self.finding(module, call.lineno, message, info)
                    )
        return findings


class CounterNamespaceRule(Rule):
    """Counter names must use a registered dotted namespace."""

    id = "counter-namespace"

    def run(self, project: Project) -> List[Finding]:
        namespaces = project.counter_namespaces()
        findings: List[Finding] = []
        for module in project.iter_modules():
            for node, call, info in iter_call_sites(module):
                func = call.func
                if not (
                    isinstance(func, ast.Attribute) and func.attr == "count"
                ):
                    continue
                receiver = func.value
                receiver_name = None
                if isinstance(receiver, ast.Name):
                    receiver_name = receiver.id
                elif isinstance(receiver, ast.Attribute):
                    receiver_name = receiver.attr
                if receiver_name not in COUNTER_RECEIVERS:
                    continue
                if not call.args or not isinstance(call.args[0], ast.Constant):
                    continue
                name = call.args[0].value
                if not isinstance(name, str):
                    continue
                namespace = name.split(".", 1)[0]
                if namespace in namespaces:
                    continue
                findings.append(
                    self.finding(
                        module,
                        call.lineno,
                        f"counter {name!r} uses unregistered namespace "
                        f"{namespace!r} (register it in "
                        "repro.perf.counters.COUNTER_NAMESPACES)",
                        info,
                    )
                )
        return findings


class NoWallclockRule(Rule):
    """``time.time()`` is banned in the pure algorithmic layers."""

    id = "no-wallclock"

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            package = module.relpath.split("/", 1)[0]
            if package not in PURE_PACKAGES:
                continue
            for node, call, info in iter_call_sites(module):
                if dotted_name(call.func) != "time.time":
                    continue
                findings.append(
                    self.finding(
                        module,
                        call.lineno,
                        "time.time() in a pure algorithmic module; take a "
                        "deadline parameter instead",
                        info,
                    )
                )
        return findings


class NoForkRule(Rule):
    """Process creation is banned outside the harness and pool supervisor."""

    id = "no-fork"

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            package = module.relpath.split("/", 1)[0]
            # The supervised worker pool is the one non-harness module
            # that legitimately owns child processes.
            if package == "harness" or module.relpath == "service/pool.py":
                continue
            for node, call, info in iter_call_sites(module):
                dotted = dotted_name(call.func)
                message = None
                if dotted in FORK_CALLS:
                    message = f"{FORK_CALLS[dotted]} outside repro.harness"
                elif (
                    dotted is not None
                    and dotted.split(".")[-1] in FORK_NAMES
                    and len(dotted.split(".")) <= 2
                    and (
                        dotted in FORK_NAMES
                        or dotted.split(".")[0]
                        in ("mp", "multiprocessing", "ctx")
                    )
                ):
                    message = (
                        f"{dotted}() spawns a process outside repro.harness"
                    )
                if message is not None:
                    findings.append(
                        self.finding(
                            module,
                            call.lineno,
                            message
                            + " (route child processes through the "
                            "sandbox/racer in repro.harness)",
                            info,
                        )
                    )
        return findings


class NoObjectDDRule(Rule):
    """Array-native DD modules must never allocate legacy node objects."""

    id = "no-object-dd"

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for module in project.iter_modules():
            parts = module.relpath.split("/")
            if parts[0] != "dd" or not parts[-1].startswith("array_"):
                continue
            for node, call, info in iter_call_sites(module):
                dotted = dotted_name(call.func)
                if (
                    dotted is None
                    or dotted.split(".")[-1] not in OBJECT_DD_NAMES
                ):
                    continue
                findings.append(
                    self.finding(
                        module,
                        call.lineno,
                        f"{dotted}() allocates a legacy DD object in an "
                        "array-native module; use handles and packed "
                        "integer edges",
                        info,
                    )
                )
        return findings
