"""Rule registry of the :mod:`repro.lint` engine.

Every rule is a :class:`~repro.lint.rules.base.Rule` subclass with a
stable ``id`` (the name used in ``# repro: allow(<id>): reason``
suppressions and baseline entries).  ``default_rules()`` builds the
production rule set; tests instantiate individual rules directly.
"""

from __future__ import annotations

from typing import List

from repro.lint.rules.base import Rule
from repro.lint.rules.deadlines import DeadlineLoopRule, DeadlinePropagationRule
from repro.lint.rules.resources import ResourceLeakRule
from repro.lint.rules.syntactic import (
    CounterNamespaceRule,
    NoForkRule,
    NoObjectDDRule,
    NoWallclockRule,
    SeededRngRule,
)
from repro.lint.rules.taint import SoundnessTaintRule
from repro.lint.rules.taxonomy import ErrorTaxonomyRule

__all__ = [
    "Rule",
    "default_rules",
    "CounterNamespaceRule",
    "DeadlineLoopRule",
    "DeadlinePropagationRule",
    "ErrorTaxonomyRule",
    "NoForkRule",
    "NoObjectDDRule",
    "NoWallclockRule",
    "ResourceLeakRule",
    "SeededRngRule",
    "SoundnessTaintRule",
]


def default_rules() -> List[Rule]:
    """The production rule set, in reporting order."""
    return [
        DeadlineLoopRule(),
        DeadlinePropagationRule(),
        SeededRngRule(),
        CounterNamespaceRule(),
        NoWallclockRule(),
        NoForkRule(),
        NoObjectDDRule(),
        SoundnessTaintRule(),
        ResourceLeakRule(),
        ErrorTaxonomyRule(),
    ]
