"""Shared contract and helpers of all lint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.cfg import CFG, CFGNode
from repro.lint.findings import Finding
from repro.lint.project import FunctionInfo, ModuleInfo, Project


class Rule:
    """One project-invariant check.

    ``run`` receives the whole :class:`Project` and returns raw findings
    — *without* applying suppressions; the engine filters them so it can
    also detect suppressions that no longer suppress anything
    (``stale-allow``).
    """

    #: Stable rule identifier, used in suppressions and baselines.
    id: str = ""

    def run(self, project: Project) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        message: str,
        function: Optional[FunctionInfo] = None,
    ) -> Finding:
        return Finding(
            module.path,
            line,
            self.id,
            message,
            function=None if function is None else function.qname,
        )


def iter_scopes(
    module: ModuleInfo,
) -> Iterator[Tuple[CFG, Optional[FunctionInfo]]]:
    """Every CFG of a module: the module body, then each function."""
    yield module.module_cfg, None
    for _name, info in sorted(module.functions.items()):
        yield info.cfg, info


def iter_call_sites(
    module: ModuleInfo,
) -> Iterator[Tuple[CFGNode, ast.Call, Optional[FunctionInfo]]]:
    """Every call expression in a module, with its CFG node and scope."""
    for cfg, info in iter_scopes(module):
        for node in cfg.statements():
            for call in node.calls():
                yield node, call, info
