"""Command-line front end of the lint engine.

Exit code contract (unchanged from the original ``tools/check_repro.py``):
``0`` when the tree is clean, ``1`` when there are actionable findings.
``2`` is reserved for operational errors (unreadable root).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.engine import run_lint

DEFAULT_BASELINE = Path("tools") / "lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant lint for the repro codebase.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: auto-detected from this file)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the findings report as JSON to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as actionable",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write current findings to the baseline file (with blank "
            "reasons, which must be filled in) and exit 0"
        ),
    )
    return parser


def _detect_root(explicit: Optional[Path]) -> Path:
    if explicit is not None:
        return explicit
    # src/repro/lint/cli.py -> repository root is four levels up.
    return Path(__file__).resolve().parents[3]


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    root = _detect_root(args.root)
    if not (root / "src" / "repro").is_dir():
        print(f"error: {root} has no src/repro tree", file=sys.stderr)
        return 2

    baseline_path = args.baseline or (root / DEFAULT_BASELINE)
    baseline = None
    if not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(baseline_path)

    report = run_lint(root, baseline=baseline)

    if args.write_baseline:
        write_baseline(baseline_path, report.findings)
        print(
            f"wrote {len(report.findings)} entries to {baseline_path}; "
            "fill in the 'reason' fields before committing"
        )
        return 0

    # With ``--json -`` the machine-readable report owns stdout; the
    # human-readable rendering moves to stderr so the output stays
    # parseable (``check_repro --json - | jq …``).
    human = sys.stdout
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if str(args.json) == "-":
            print(payload)
            human = sys.stderr
        else:
            args.json.write_text(payload + "\n")

    for finding in report.findings:
        print(finding, file=human)
    for finding in report.grandfathered:
        print(f"{finding}  [baselined]", file=human)
    if report.findings:
        print(
            f"\n{len(report.findings)} finding(s). Fix them, or suppress a "
            "deliberate exception with '# repro: allow(<rule-id>): <reason>'.",
            file=human,
        )
        return 1
    suffix = (
        f" ({len(report.grandfathered)} baselined finding(s) remain)"
        if report.grandfathered
        else ""
    )
    print(f"check_repro: all invariants hold{suffix}", file=human)
    return 0
