"""Finding records of the :mod:`repro.lint` engine.

A :class:`Finding` is one rule violation at one source location.  The
class deliberately keeps the attribute surface of the historical
``tools/check_repro.py`` findings (``path``/``line``/``rule``/
``message`` and the ``str()`` rendering) so existing callers and tests
keep working, and adds the machine-readable pieces the baseline and the
``--json`` report need: a stable ``fingerprint`` that survives
unrelated-line churn, and a ``to_dict`` wire format.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Optional, Sequence


class Finding:
    """One rule violation at a source location."""

    def __init__(
        self,
        path: Path,
        line: int,
        rule: str,
        message: str,
        *,
        function: Optional[str] = None,
    ) -> None:
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        #: Qualified name of the enclosing function, when the rule knows it.
        self.function = function
        #: Content-based identity, filled in by the engine (it knows the
        #: repository root and the source text).
        self.fingerprint: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Finding({str(self)!r})"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe view for the ``--json`` findings report."""
        return {
            "rule": self.rule,
            "path": str(self.path),
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def compute_fingerprint(
    rule: str,
    relpath: str,
    source_lines: Sequence[str],
    line: int,
    occurrence: int,
) -> str:
    """Content-addressed identity of one finding.

    Hashes the rule id, the repository-relative path, the *stripped text*
    of the flagged line and an occurrence index (disambiguating several
    identical findings on textually identical lines).  The line *number*
    stays out of the hash on purpose: inserting an unrelated line above a
    grandfathered finding must not turn it into a "new" finding.
    """
    text = ""
    if 1 <= line <= len(source_lines):
        text = source_lines[line - 1].strip()
    payload = f"{rule}\x00{relpath}\x00{text}\x00{occurrence}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
