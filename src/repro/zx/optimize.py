"""ZX-calculus based circuit optimization.

The round trip *circuit -> graph-like diagram -> full_reduce ->
extraction* is the optimization pipeline of Kissinger & van de Wetering
("Reducing T-count with the ZX-calculus", reference [29] of the paper) and
Duncan et al. [28].  Within this reproduction it serves as a second,
independent producer of "optimized circuits" for the case study's second
use-case — optimized by a *different paradigm* than the peephole passes of
:mod:`repro.compile.optimize`, which makes the equivalence checkers work
harder (the ZX-optimized circuit is structurally unrelated to the input).

Extraction is limited to gadget-free diagrams (see
:mod:`repro.zx.extract`), which always covers Clifford circuits;
:func:`zx_optimize` falls back to the input circuit when extraction is not
possible.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.compile.optimize import optimize_circuit
from repro.zx.circuit_conv import circuit_to_zx
from repro.zx.extract import ExtractionError, extract_circuit
from repro.zx.simplify import full_reduce


def zx_optimize(
    circuit: QuantumCircuit, cleanup: bool = True
) -> Tuple[QuantumCircuit, bool]:
    """Optimize a circuit through the ZX round trip.

    Returns ``(circuit, extracted)`` — the optimized circuit and whether
    the ZX round trip succeeded (``False`` means the diagram was not
    gadget-free and the input is returned, optionally peephole-cleaned).
    """
    diagram = circuit_to_zx(circuit)
    full_reduce(diagram)
    try:
        extracted = extract_circuit(diagram)
    except ExtractionError:
        fallback = optimize_circuit(circuit) if cleanup else circuit.copy()
        fallback.name = f"{circuit.name}_zxopt_fallback"
        return fallback, False
    if cleanup:
        extracted = optimize_circuit(extracted)
    extracted.name = f"{circuit.name}_zxopt"
    return extracted, True
