"""Converting circuits to ZX-diagrams.

Every gate of the circuit IR becomes a small gadget of spiders appended to
the growing diagram (paper Fig. 6 shows the result for the GHZ circuits):

* Z-axis rotations (``z``/``s``/``t``/``rz``/``p``) — one Z spider,
* X-axis rotations (``x``/``sx``/``rx``) — one X spider,
* ``h`` — a pending Hadamard on the wire (realized as the edge type of the
  next connection, keeping the diagram small),
* ``cx`` — Z spider on the control joined to an X spider on the target,
* ``cz`` — two Z spiders joined by a Hadamard edge,
* everything else — decomposed first via
  :func:`repro.compile.decompose.decompose_for_zx` (mirroring the paper's
  observation that pyzx needs circuits compiled to a supported gate set).

Global scalars/phases are not tracked; all downstream equivalence checks
are up to global phase anyway (and the test suite compares tensors with
:func:`repro.zx.tensor.diagrams_proportional`).
"""

from __future__ import annotations

import math
from typing import List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.phase import radians_to_phase

_PI = math.pi

#: Single-qubit gates translated to one Z spider with the given phase (pi units).
_Z_PHASES = {
    "z": 1.0,
    "s": 0.5,
    "sdg": -0.5,
    "t": 0.25,
    "tdg": -0.25,
}
#: Single-qubit gates translated to one X spider with the given phase.
_X_PHASES = {
    "x": 1.0,
    "sx": 0.5,
    "sxdg": -0.5,
}


class _Builder:
    """Tracks the open end of each wire while gates are appended."""

    def __init__(self, num_qubits: int) -> None:
        self.diagram = ZXDiagram()
        self.ends: List[int] = []
        self.pending_hadamard: List[bool] = [False] * num_qubits
        for _ in range(num_qubits):
            vertex = self.diagram.add_vertex(VertexType.BOUNDARY)
            self.diagram.inputs.append(vertex)
            self.ends.append(vertex)

    def _edge_type(self, qubit: int) -> EdgeType:
        if self.pending_hadamard[qubit]:
            self.pending_hadamard[qubit] = False
            return EdgeType.HADAMARD
        return EdgeType.SIMPLE

    def spider(self, qubit: int, vertex_type: VertexType, phase) -> int:
        """Append a spider on a wire and return its vertex id."""
        vertex = self.diagram.add_vertex(vertex_type, phase)
        self.diagram.connect(self.ends[qubit], vertex, self._edge_type(qubit))
        self.ends[qubit] = vertex
        return vertex

    def hadamard(self, qubit: int) -> None:
        self.pending_hadamard[qubit] = not self.pending_hadamard[qubit]

    def finish(self) -> ZXDiagram:
        for qubit, end in enumerate(self.ends):
            boundary = self.diagram.add_vertex(VertexType.BOUNDARY)
            self.diagram.connect(end, boundary, self._edge_type(qubit))
            self.diagram.outputs.append(boundary)
        return self.diagram


def _convert_operation(builder: _Builder, op: Operation) -> None:
    name = op.name
    if not op.controls:
        if len(op.targets) == 1:
            (q,) = op.targets
            if name == "id":
                return
            if name == "h":
                builder.hadamard(q)
                return
            if name in _Z_PHASES:
                builder.spider(q, VertexType.Z, _Z_PHASES[name])
                return
            if name in _X_PHASES:
                builder.spider(q, VertexType.X, _X_PHASES[name])
                return
            if name in ("rz", "p"):
                builder.spider(q, VertexType.Z, radians_to_phase(op.params[0]))
                return
            if name == "rx":
                builder.spider(q, VertexType.X, radians_to_phase(op.params[0]))
                return
            if name == "y":
                # Y = i X Z — spiders in circuit order Z then X.
                builder.spider(q, VertexType.Z, 1.0)
                builder.spider(q, VertexType.X, 1.0)
                return
            if name == "ry":
                # RY(t) = S X(t) S† up to phase: sdg, rx, s in circuit order.
                builder.spider(q, VertexType.Z, -0.5)
                builder.spider(q, VertexType.X, radians_to_phase(op.params[0]))
                builder.spider(q, VertexType.Z, 0.5)
                return
            if name == "u2":
                phi, lam = op.params
                _convert_u3(builder, q, _PI / 2, phi, lam)
                return
            if name == "u3":
                _convert_u3(builder, q, *op.params)
                return
        elif name == "swap":
            a, b = op.targets
            builder.ends[a], builder.ends[b] = builder.ends[b], builder.ends[a]
            builder.pending_hadamard[a], builder.pending_hadamard[b] = (
                builder.pending_hadamard[b],
                builder.pending_hadamard[a],
            )
            return
        elif name == "rzz":
            a, b = op.targets
            (theta,) = op.params
            # Phase gadget: an X spider linking both wires to a phase-leaf.
            hub_a = builder.spider(a, VertexType.Z, 0)
            hub_b = builder.spider(b, VertexType.Z, 0)
            axis = builder.diagram.add_vertex(VertexType.X)
            leaf = builder.diagram.add_vertex(
                VertexType.Z, radians_to_phase(theta)
            )
            builder.diagram.connect(hub_a, axis)
            builder.diagram.connect(hub_b, axis)
            builder.diagram.connect(axis, leaf)
            return
    elif len(op.controls) == 1:
        control = op.controls[0]
        if name == "x":
            (target,) = op.targets
            z_spider = builder.spider(control, VertexType.Z, 0)
            x_spider = builder.spider(target, VertexType.X, 0)
            builder.diagram.connect(z_spider, x_spider, EdgeType.SIMPLE)
            return
        if name == "z":
            (target,) = op.targets
            z1 = builder.spider(control, VertexType.Z, 0)
            z2 = builder.spider(target, VertexType.Z, 0)
            builder.diagram.connect(z1, z2, EdgeType.HADAMARD)
            return
    raise ValueError(f"operation {op} is not ZX-native; decompose first")


def _convert_u3(builder: _Builder, q: int, theta, phi, lam) -> None:
    """u3 as the Euler sequence RZ(lam) . RY(theta) . RZ(phi) (circuit order
    rz(lam), ry(theta), rz(phi)), with RY expanded around an X spider."""
    builder.spider(q, VertexType.Z, radians_to_phase(lam))
    builder.spider(q, VertexType.Z, -0.5)
    builder.spider(q, VertexType.X, radians_to_phase(theta))
    builder.spider(q, VertexType.Z, 0.5)
    builder.spider(q, VertexType.Z, radians_to_phase(phi))


def circuit_to_zx(circuit: QuantumCircuit, decompose: bool = True) -> ZXDiagram:
    """Convert a circuit to a ZX-diagram.

    With ``decompose=True`` (default), gates outside the native set are
    first lowered via :func:`repro.compile.decompose.decompose_for_zx`.
    """
    if decompose:
        from repro.compile.decompose import decompose_for_zx

        circuit = decompose_for_zx(circuit)
    builder = _Builder(circuit.num_qubits)
    for op in circuit:
        try:
            _convert_operation(builder, op)
        except ValueError:
            if not decompose:
                raise
            from repro.compile.decompose import decompose_to_cx_and_singles

            single = QuantumCircuit(circuit.num_qubits, operations=[op])
            for lowered in decompose_to_cx_and_singles(single):
                _convert_operation(builder, lowered)
    return builder.finish()
