"""The ZX-diagram graph structure.

A ZX-diagram is an undirected multigraph of *spiders* (green Z, red X) and
*boundary* vertices (circuit inputs/outputs), with two edge kinds: simple
wires and Hadamard wires.  Following the "only topology matters" paradigm
(Section 5 of the paper) the structure is a plain adjacency map; parallel
edges never need to be stored because the only situation producing them —
rewrites in graph-like form — resolves them eagerly via the Hopf law
(:meth:`ZXDiagram.toggle_hadamard_edge`).

The class stores no geometry; inputs and outputs are ordered lists of
boundary vertices, which is all composition and permutation extraction
need.
"""

from __future__ import annotations

from enum import IntEnum
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.zx.phase import Phase, add_phases, negate_phase, normalize_phase


class VertexType(IntEnum):
    """Kinds of vertices in a ZX-diagram."""

    BOUNDARY = 0
    Z = 1
    X = 2


class EdgeType(IntEnum):
    """Kinds of edges in a ZX-diagram."""

    SIMPLE = 1
    HADAMARD = 2


class ZXDiagram:
    """A mutable ZX-diagram.

    A *mutation tracker* (see :class:`repro.zx.worklist.DirtyTracker`) can be
    attached; while attached, every mutation that can change a rewrite-rule
    match — phase, type, or incident-edge changes — notifies the tracker with
    the affected vertex ids.  The hooks are a single ``is not None`` check
    when no tracker is attached, so the legacy (untracked) paths pay nothing.
    """

    def __init__(self) -> None:
        self._types: Dict[int, VertexType] = {}
        self._phases: Dict[int, Phase] = {}
        self._adjacency: Dict[int, Dict[int, EdgeType]] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self._next_id = 0
        self._tracker = None

    # ------------------------------------------------------------------
    # mutation tracking
    # ------------------------------------------------------------------
    def attach_tracker(self, tracker) -> None:
        """Attach a mutation tracker (one at a time)."""
        if self._tracker is not None:
            raise ValueError("a tracker is already attached")
        self._tracker = tracker

    def detach_tracker(self) -> None:
        self._tracker = None

    # ------------------------------------------------------------------
    # vertices
    # ------------------------------------------------------------------
    def add_vertex(
        self, vertex_type: VertexType, phase: Phase = Fraction(0)
    ) -> int:
        """Add a vertex and return its id."""
        vertex = self._next_id
        self._next_id += 1
        self._types[vertex] = vertex_type
        self._phases[vertex] = normalize_phase(phase)
        self._adjacency[vertex] = {}
        if self._tracker is not None:
            self._tracker.touch(vertex)
        return vertex

    def remove_vertex(self, vertex: int) -> None:
        """Remove a vertex and all incident edges."""
        neighbors = tuple(self._adjacency[vertex])
        for neighbor in neighbors:
            del self._adjacency[neighbor][vertex]
        del self._adjacency[vertex]
        del self._types[vertex]
        del self._phases[vertex]
        if self._tracker is not None:
            self._tracker.forget(vertex)
            for neighbor in neighbors:
                self._tracker.touch_edges(neighbor)

    def vertices(self) -> Iterator[int]:
        return iter(tuple(self._types))

    @property
    def num_vertices(self) -> int:
        return len(self._types)

    @property
    def num_spiders(self) -> int:
        """Vertices that are not boundaries — the paper's diagram size metric."""
        return sum(
            1 for t in self._types.values() if t is not VertexType.BOUNDARY
        )

    def vertex_type(self, vertex: int) -> VertexType:
        return self._types[vertex]

    def set_vertex_type(self, vertex: int, vertex_type: VertexType) -> None:
        self._types[vertex] = vertex_type
        if self._tracker is not None:
            self._tracker.touch(vertex)

    def phase(self, vertex: int) -> Phase:
        return self._phases[vertex]

    def set_phase(self, vertex: int, phase: Phase) -> None:
        self._phases[vertex] = normalize_phase(phase)
        if self._tracker is not None:
            self._tracker.touch(vertex)

    def add_to_phase(self, vertex: int, phase: Phase) -> None:
        self._phases[vertex] = add_phases(self._phases[vertex], phase)
        if self._tracker is not None:
            self._tracker.touch(vertex)

    def is_boundary(self, vertex: int) -> bool:
        return self._types[vertex] is VertexType.BOUNDARY

    def is_interior(self, vertex: int) -> bool:
        """True if no neighbor of ``vertex`` is a boundary vertex."""
        return all(not self.is_boundary(n) for n in self._adjacency[vertex])

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def connect(self, u: int, v: int, edge_type: EdgeType = EdgeType.SIMPLE) -> None:
        """Add an edge; raises if the vertices are already connected."""
        if u == v:
            raise ValueError("use toggle_hadamard_edge for self-loops")
        if v in self._adjacency[u]:
            raise ValueError(f"vertices {u} and {v} already connected")
        self._adjacency[u][v] = edge_type
        self._adjacency[v][u] = edge_type
        if self._tracker is not None:
            self._tracker.touch_edges(u)
            self._tracker.touch_edges(v)

    def disconnect(self, u: int, v: int) -> None:
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        if self._tracker is not None:
            self._tracker.touch_edges(u)
            self._tracker.touch_edges(v)

    def connected(self, u: int, v: int) -> bool:
        return v in self._adjacency[u]

    def edge_type(self, u: int, v: int) -> EdgeType:
        return self._adjacency[u][v]

    def set_edge_type(self, u: int, v: int, edge_type: EdgeType) -> None:
        self._adjacency[u][v] = edge_type
        self._adjacency[v][u] = edge_type
        if self._tracker is not None:
            self._tracker.touch_edges(u)
            self._tracker.touch_edges(v)

    def neighbors(self, vertex: int) -> Tuple[int, ...]:
        """Neighbors as a fresh tuple (stable under mutation, indexable)."""
        return tuple(self._adjacency[vertex])

    def neighbor_view(self, vertex: int):
        """Zero-copy view of the neighbors (a dict keys view).

        For hot-loop callers that only iterate or test membership:
        :meth:`neighbors` materializes a tuple on every call, which dominated
        profile time in the simplification match loops.  The view is live —
        callers that mutate the diagram while iterating must use
        :meth:`neighbors` (or copy) instead.
        """
        return self._adjacency[vertex].keys()

    def degree(self, vertex: int) -> int:
        return len(self._adjacency[vertex])

    def edges(self) -> Iterator[Tuple[int, int, EdgeType]]:
        """Iterate over edges as ``(u, v, type)`` with ``u < v``."""
        for u, nbrs in self._adjacency.items():
            for v, edge_type in nbrs.items():
                if u < v:
                    yield (u, v, edge_type)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def toggle_hadamard_edge(self, u: int, v: int) -> None:
        """Toggle a Hadamard edge between two Z spiders (Hopf law).

        Used by local complementation and pivoting in graph-like diagrams:
        adding a Hadamard edge where one exists removes both (up to scalar),
        and an H self-loop on a Z spider contributes a pi phase.
        """
        if u == v:
            self.add_to_phase(u, Fraction(1))
            return
        if v in self._adjacency[u]:
            existing = self._adjacency[u][v]
            if existing is not EdgeType.HADAMARD:
                raise ValueError(
                    "toggle_hadamard_edge on a simple edge — diagram is not "
                    "graph-like"
                )
            self.disconnect(u, v)
        else:
            self.connect(u, v, EdgeType.HADAMARD)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def non_clifford_count(self) -> int:
        """Number of spiders carrying a non-Clifford phase."""
        from repro.zx.phase import is_clifford_phase

        return sum(
            1
            for v, t in self._types.items()
            if t is not VertexType.BOUNDARY
            and not is_clifford_phase(self._phases[v])
        )

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def copy(self) -> "ZXDiagram":
        out = ZXDiagram()
        out._types = dict(self._types)
        out._phases = dict(self._phases)
        out._adjacency = {v: dict(nbrs) for v, nbrs in self._adjacency.items()}
        out.inputs = list(self.inputs)
        out.outputs = list(self.outputs)
        out._next_id = self._next_id
        return out

    def adjoint(self) -> "ZXDiagram":
        """The dagger of the diagram: phases negated, inputs/outputs swapped."""
        out = self.copy()
        for vertex in out.vertices():
            out.set_phase(vertex, negate_phase(out.phase(vertex)))
        out.inputs, out.outputs = out.outputs, out.inputs
        return out

    def compose(self, other: "ZXDiagram") -> "ZXDiagram":
        """Horizontal composition: run ``self`` first, then ``other``.

        Each output of ``self`` is joined to the corresponding input of
        ``other`` through a fresh phase-0 Z spider (a representation of the
        plain wire), which sidesteps every boundary-boundary corner case;
        the junction spiders disappear again during identity removal.
        """
        if len(self.outputs) != len(other.inputs):
            raise ValueError("output/input arity mismatch in composition")
        out = self.copy()
        mapping: Dict[int, int] = {}
        for vertex in other.vertices():
            mapping[vertex] = out.add_vertex(
                other.vertex_type(vertex), other.phase(vertex)
            )
        for u, v, edge_type in other.edges():
            out.connect(mapping[u], mapping[v], edge_type)
        for out_b, in_b in zip(list(out.outputs), [mapping[i] for i in other.inputs]):
            junction = out.add_vertex(VertexType.Z)
            for boundary in (out_b, in_b):
                (neighbor,) = out.neighbors(boundary)
                edge_type = out.edge_type(boundary, neighbor)
                out.disconnect(boundary, neighbor)
                if out.connected(junction, neighbor):
                    # Both stubs end on the same vertex; merge the parallel
                    # edge via the Hopf law if both are Hadamard, or fuse
                    # into a simple connection otherwise.
                    existing = out.edge_type(junction, neighbor)
                    if (
                        existing is EdgeType.HADAMARD
                        and edge_type is EdgeType.HADAMARD
                    ):
                        out.disconnect(junction, neighbor)
                    elif (
                        existing is EdgeType.SIMPLE
                        and edge_type is EdgeType.SIMPLE
                        and out.vertex_type(neighbor) is VertexType.Z
                    ):
                        # Two simple wires between Z spiders: keep one; the
                        # doubled connection is a fused self-loop, a no-op.
                        pass
                    else:
                        raise ValueError(
                            "unresolvable parallel edge during composition"
                        )
                else:
                    out.connect(junction, neighbor, edge_type)
                out.remove_vertex(boundary)
        out.outputs = [mapping[o] for o in other.outputs]
        return out

    # ------------------------------------------------------------------
    # permutation extraction
    # ------------------------------------------------------------------
    def wire_permutation(self) -> Optional[Dict[int, int]]:
        """If the diagram is a bare permutation of wires, return it.

        Returns a mapping ``input position -> output position`` when every
        vertex is a boundary and every input is joined to exactly one output
        by a *simple* edge; ``None`` otherwise (leftover spiders or Hadamard
        wires mean the reduction did not reach a permutation diagram).
        """
        if self.num_spiders:
            return None
        output_position = {v: i for i, v in enumerate(self.outputs)}
        permutation: Dict[int, int] = {}
        for position, vertex in enumerate(self.inputs):
            if self.degree(vertex) != 1:
                return None
            (neighbor,) = self.neighbors(vertex)
            if self.edge_type(vertex, neighbor) is not EdgeType.SIMPLE:
                return None
            if neighbor not in output_position:
                return None
            permutation[position] = output_position[neighbor]
        if len(set(permutation.values())) != len(self.inputs):
            return None
        return permutation

    def is_identity_diagram(self) -> bool:
        """True if the diagram is the identity wiring (no permutation)."""
        permutation = self.wire_permutation()
        return permutation is not None and all(
            src == dst for src, dst in permutation.items()
        )


def diagram_to_dot(diagram: "ZXDiagram", name: str = "zx") -> str:
    """Graphviz DOT rendering of a ZX-diagram.

    Z spiders are green circles, X spiders red circles, boundaries small
    points; Hadamard edges are dashed and blue, following the usual
    ZX-calculus visual conventions (paper Figs. 5-6).
    """
    lines = [f"graph {name} {{", "  layout=neato;"]
    for vertex in diagram.vertices():
        vertex_type = diagram.vertex_type(vertex)
        if vertex_type is VertexType.BOUNDARY:
            role = (
                "in" if vertex in diagram.inputs
                else "out" if vertex in diagram.outputs else "b"
            )
            lines.append(
                f'  v{vertex} [label="{role}", shape=none, fontsize=10];'
            )
            continue
        color = "green" if vertex_type is VertexType.Z else "red"
        phase = diagram.phase(vertex)
        label = "" if phase == 0 else f"{phase}π" if not isinstance(
            phase, float
        ) else f"{phase:.3g}π"
        lines.append(
            f'  v{vertex} [label="{label}", shape=circle, '
            f"style=filled, fillcolor={color}];"
        )
    for u, v, edge_type in diagram.edges():
        style = (
            "[style=dashed, color=blue]"
            if edge_type is EdgeType.HADAMARD
            else ""
        )
        lines.append(f"  v{u} -- v{v} {style};".rstrip() + "")
    lines.append("}")
    return "\n".join(lines)
