"""ZX-calculus engine.

A pure-Python re-implementation of the PyZX core the paper's case study
uses (Section 5): ZX-diagrams as undirected graphs of Z/X spiders with
simple and Hadamard edges, conversion from the circuit IR, the *graph-like*
normal form, and the simplification strategy built on spider fusion,
identity removal, local complementation, pivoting and phase gadgets
(``full_reduce``), plus equivalence checking by composing one circuit with
the adjoint of the other and reducing towards a bare-wire permutation
diagram.

A tensor-network evaluator (:mod:`repro.zx.tensor`) provides exact dense
semantics for small diagrams so every rewrite rule is testable against the
matrix ground truth.
"""

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.phase import normalize_phase, phase_to_radians, is_pauli_phase, is_proper_clifford_phase
from repro.zx.circuit_conv import circuit_to_zx
from repro.zx.tensor import diagram_to_matrix, diagrams_proportional
from repro.zx.simplify import (
    contract_unitary_chains,
    full_reduce,
    interior_clifford_simp,
    to_graph_like,
)
from repro.zx.extract import ExtractionError, extract_circuit
from repro.zx.optimize import zx_optimize

__all__ = [
    "EdgeType",
    "VertexType",
    "ZXDiagram",
    "circuit_to_zx",
    "diagram_to_matrix",
    "diagrams_proportional",
    "ExtractionError",
    "contract_unitary_chains",
    "extract_circuit",
    "full_reduce",
    "zx_optimize",
    "interior_clifford_simp",
    "to_graph_like",
    "normalize_phase",
    "phase_to_radians",
    "is_pauli_phase",
    "is_proper_clifford_phase",
]
