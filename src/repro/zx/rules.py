"""Primitive ZX rewrite rules (the paper's Fig. 5 axioms, operationalized).

The simplification pipeline in :mod:`repro.zx.simplify` applies these rules
wholesale; this module exposes them one application at a time, which is
what Example 6/7-style manual derivations and the axiom-soundness tests
(against the tensor semantics) need.

Mapping to the paper's axiom names:

* ``(f)``  spider fusion                      -> :func:`fuse`
* ``(id)`` identity removal                   -> :func:`remove_identity`
* ``(h)/(hh)`` color change / H-cancellation  -> :func:`color_change`
* Hopf law (derived rule (1) in the paper)    -> :func:`hopf`
* local complementation (graph-like)          -> :func:`local_complement`
* pivot (graph-like)                          -> :func:`pivot`
"""

from __future__ import annotations

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.simplify import (
    _fuse,
    lcomp_step,
    pivot_step,
)

__all__ = [
    "fuse",
    "remove_identity",
    "color_change",
    "hopf",
    "local_complement",
    "pivot",
]


def fuse(diagram: ZXDiagram, keep: int, merge: int) -> None:
    """Spider fusion — rule (f): merge two same-color spiders joined by a
    simple edge, adding their phases.

    Both vertices must be Z spiders (run in graph-like form, or recolor
    first with :func:`color_change`).
    """
    if diagram.vertex_type(keep) is not VertexType.Z or diagram.vertex_type(
        merge
    ) is not VertexType.Z:
        raise ValueError("fusion requires two Z spiders")
    if diagram.edge_type(keep, merge) is not EdgeType.SIMPLE:
        raise ValueError("fusion requires a simple connecting edge")
    _fuse(diagram, keep, merge)


def remove_identity(diagram: ZXDiagram, vertex: int) -> None:
    """Identity removal — rule (id): drop a phase-0, degree-2 spider."""
    if diagram.phase(vertex) != 0 or diagram.degree(vertex) != 2:
        raise ValueError("identity removal needs a phase-0 degree-2 spider")
    n1, n2 = diagram.neighbors(vertex)
    t1 = diagram.edge_type(vertex, n1)
    t2 = diagram.edge_type(vertex, n2)
    combined = EdgeType.SIMPLE if t1 is t2 else EdgeType.HADAMARD
    diagram.remove_vertex(vertex)
    if diagram.connected(n1, n2):
        raise ValueError("identity removal would create a parallel edge")
    diagram.connect(n1, n2, combined)


def color_change(diagram: ZXDiagram, vertex: int) -> None:
    """Color change — rules (h)/(hh): flip a spider's color and toggle the
    Hadamard-ness of every incident edge."""
    current = diagram.vertex_type(vertex)
    if current is VertexType.BOUNDARY:
        raise ValueError("cannot recolor a boundary vertex")
    diagram.set_vertex_type(
        vertex, VertexType.X if current is VertexType.Z else VertexType.Z
    )
    for neighbor in diagram.neighbors(vertex):
        edge = diagram.edge_type(vertex, neighbor)
        diagram.set_edge_type(
            vertex,
            neighbor,
            EdgeType.SIMPLE if edge is EdgeType.HADAMARD else EdgeType.HADAMARD,
        )


def hopf(diagram: ZXDiagram, u: int, v: int) -> None:
    """Hopf law: a *doubled* Hadamard edge between Z spiders cancels.

    The adjacency structure stores parallel edges implicitly (adding a
    Hadamard edge where one exists is exactly the doubled situation), so
    applying the Hopf law means removing the stored edge.  Use
    :meth:`ZXDiagram.toggle_hadamard_edge` when building rewrites; this
    explicit spelling exists for the axiom tests.
    """
    if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
        raise ValueError("Hopf cancellation needs a Hadamard edge")
    diagram.disconnect(u, v)


def local_complement(diagram: ZXDiagram, vertex: int) -> None:
    """One local-complementation application (see
    :func:`repro.zx.simplify.lcomp_simp` for the applicability conditions,
    which are *not* re-checked here)."""
    lcomp_step(diagram, vertex)


def pivot(diagram: ZXDiagram, u: int, v: int) -> None:
    """One pivot application along the Hadamard edge ``(u, v)`` (conditions
    as in :func:`repro.zx.simplify.pivot_simp`, not re-checked here)."""
    pivot_step(diagram, u, v)
