"""Incremental worklist-driven ZX simplification engine.

The legacy drivers in :mod:`repro.zx.simplify` rescan *every* vertex/edge
after each rewrite, giving O(rounds × |G|) work even when a rewrite only
perturbs a small neighborhood.  This module replaces that architecture
with a dirty-vertex worklist (PyZX-style match-then-rewrite):

* A :class:`DirtyTracker` attaches to the :class:`~repro.zx.diagram.ZXDiagram`
  and receives a ``touch(v)`` notification for every mutation that can
  change a rewrite-rule match at ``v`` — phase, type, or incident-edge
  changes (vertex removal touches all former neighbors).  Each rule keeps
  its *own* dirty set, seeded with every vertex, so a vertex dirtied while
  one rule runs is still pending for all the others.

* Every rule match is *local*: whether a rule applies at a vertex (or
  edge) depends only on that vertex and its direct neighbors — plus, for
  the gadget guards, neighbor degrees, which are themselves invalidated
  only by edge mutations that touch the middle vertex.  Draining a rule's
  dirty set therefore returns the dirty vertices **plus their current
  neighbors** as the complete candidate set; everything else is provably
  still a non-match.

* The tracker additionally maintains *phase-indexed spider sets*
  (:attr:`DirtyTracker.pauli_spiders` / ``clifford_spiders``) so the
  pivot-family and local-complementation rules intersect their candidates
  down to the few phases they can fire on; interior-ness (a neighbor
  property) is validated at match time.

* Each round a rule batch-collects **non-overlapping** matches: a match
  claims the vertices it will read or write (anchor + neighborhood), and
  later matches intersecting an earlier claim are deferred to the next
  round via :meth:`DirtyTracker.retry`.  Collected matches are re-validated
  immediately before application, because a spider-fusion cascade inside
  ``id_step`` may reach beyond its claim.

Rewrite *steps* and match *predicates* are shared with the legacy module —
both engines apply bit-identical rewrites; only the scheduling differs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.simplify import (
    _check_deadline,
    _gadget_shape,
    _id_applicable,
    _lcomp_applicable,
    _pivot_boundary_partner_applicable,
    _pivot_endpoint_applicable,
    _pivot_gadget_anchor_applicable,
    _pivot_gadget_partner_applicable,
    _ZERO,
    gadget_fuse_step,
    id_step,
    lcomp_step,
    pivot_boundary_step,
    pivot_gadget_step,
    pivot_step,
    to_graph_like,
)
from repro.zx.phase import Phase

#: Rule identifiers — one dirty set each.
RULES = (
    "id", "lcomp", "pivot", "pivot_gadget", "pivot_boundary", "gadget",
)


class DirtyTracker:
    """Per-rule dirty sets plus phase-indexed candidate sets.

    Invariants while attached (checked by ``tests/zx/test_incremental.py``):

    * every live vertex whose neighborhood changed since rule ``r`` last
      drained is in ``_dirty[r]`` (removal instead touches the neighbors);
    * ``v in pauli_spiders`` iff ``v`` is a live Z spider with phase
      0 or pi, and ``v in clifford_spiders`` iff its phase is ±pi/2
      (interior-ness is *not* part of the invariant — it is a neighbor
      property, re-checked at match time);
    * ``gadget_supports`` is a cache, validated on every hit — a stale
      entry can cost a lookup, never a wrong fusion.
    """

    __slots__ = (
        "diagram", "_dirty", "pauli_spiders", "clifford_spiders",
        "gadget_supports", "_axis_key",
    )

    def __init__(self, diagram: ZXDiagram) -> None:
        self.diagram = diagram
        seed = tuple(diagram._types)
        self._dirty: Dict[str, Set[int]] = {
            rule: set(seed) for rule in RULES
        }
        self.pauli_spiders: Set[int] = set()
        self.clifford_spiders: Set[int] = set()
        #: support -> (axis, leaf) of a registered phase gadget
        self.gadget_supports: Dict[FrozenSet[int], Tuple[int, int]] = {}
        self._axis_key: Dict[int, FrozenSet[int]] = {}
        for vertex in seed:
            self._reindex(vertex)

    # -- notifications from the diagram ---------------------------------
    def touch(self, vertex: int) -> None:
        """The vertex's phase or type changed (re-examines + re-indexes)."""
        for dirty in self._dirty.values():
            dirty.add(vertex)
        self._reindex(vertex)

    def touch_edges(self, vertex: int) -> None:
        """An incident edge changed — phase and type are intact, so the
        vertex only needs re-examination, not re-indexing."""
        for dirty in self._dirty.values():
            dirty.add(vertex)

    def forget(self, vertex: int) -> None:
        """The vertex was removed."""
        for dirty in self._dirty.values():
            dirty.discard(vertex)
        self.pauli_spiders.discard(vertex)
        self.clifford_spiders.discard(vertex)
        key = self._axis_key.pop(vertex, None)
        if key is not None:
            entry = self.gadget_supports.get(key)
            if entry is not None and entry[0] == vertex:
                del self.gadget_supports[key]

    # -- worklist access -------------------------------------------------
    def retry(self, rule: str, vertex: int) -> None:
        """Re-queue a deferred or invalidated match anchor for ``rule``."""
        self._dirty[rule].add(vertex)

    def pending(self, rule: str) -> bool:
        return bool(self._dirty[rule])

    def drain(self, rule: str) -> List[int]:
        """Consume the rule's dirty set; return sorted live candidates.

        Candidates are the dirty vertices plus their *current* neighbors —
        the complete set of vertices at which a match may have appeared or
        disappeared (sorted for deterministic rewrite order).
        """
        dirty = self._dirty[rule]
        if not dirty:
            return []
        self._dirty[rule] = set()
        alive = self.diagram._types
        adjacency = self.diagram._adjacency
        candidates: Set[int] = set()
        for vertex in dirty:
            if vertex in alive:
                candidates.add(vertex)
                candidates.update(adjacency[vertex])
        return sorted(candidates)

    # -- phase-indexed candidate sets ------------------------------------
    def _reindex(self, vertex: int) -> None:
        types = self.diagram._types
        if types.get(vertex) is VertexType.Z:
            phase: Phase = self.diagram._phases[vertex]
            # Stored phases are normalized to [0, 2): denominator 1 means
            # 0 or pi (Pauli), denominator 2 means ±pi/2 (proper Clifford)
            # — same integrality test as simplify._stored_pauli, inlined
            # because touch() is the hottest tracker path.
            if type(phase) is Fraction:
                denominator = phase.denominator
                if denominator == 1:
                    self.pauli_spiders.add(vertex)
                    self.clifford_spiders.discard(vertex)
                    return
                if denominator == 2:
                    self.clifford_spiders.add(vertex)
                    self.pauli_spiders.discard(vertex)
                    return
        self.pauli_spiders.discard(vertex)
        self.clifford_spiders.discard(vertex)


def _count(counters, name: str, amount: int) -> None:
    if counters is not None and amount:
        counters.count(name, amount)


# ---------------------------------------------------------------------------
# per-rule incremental drivers
# ---------------------------------------------------------------------------
def _id_round(diagram: ZXDiagram, tracker: DirtyTracker, counters) -> int:
    candidates = tracker.drain("id")
    if not candidates:
        return 0
    alive = diagram._types
    adjacency = diagram._adjacency
    matches: List[int] = []
    claimed: Set[int] = set()
    for vertex in candidates:
        if vertex not in alive or not _id_applicable(diagram, vertex):
            continue
        n1, n2 = adjacency[vertex]
        if vertex in claimed or n1 in claimed or n2 in claimed:
            tracker.retry("id", vertex)
            continue
        claimed.add(vertex)
        claimed.add(n1)
        claimed.add(n2)
        matches.append(vertex)
    _count(counters, "zx.id.matches", len(matches))
    applied = 0
    for vertex in matches:
        # Re-validate: an earlier id_step's fusion cascade can reach
        # beyond its claim.
        if vertex in alive and _id_applicable(diagram, vertex):
            id_step(diagram, vertex)
            applied += 1
        else:
            tracker.retry("id", vertex)
    _count(counters, "zx.id.rewrites", applied)
    return applied


def _lcomp_round(diagram: ZXDiagram, tracker: DirtyTracker, counters) -> int:
    candidates = tracker.drain("lcomp")
    if not candidates:
        return 0
    index = tracker.clifford_spiders
    alive = diagram._types
    adjacency = diagram._adjacency
    matches: List[int] = []
    claimed: Set[int] = set()
    for vertex in candidates:
        if vertex not in index or not _lcomp_applicable(diagram, vertex):
            continue
        neighborhood = adjacency[vertex].keys()
        if vertex in claimed or not claimed.isdisjoint(neighborhood):
            tracker.retry("lcomp", vertex)
            continue
        claimed.add(vertex)
        claimed.update(neighborhood)
        matches.append(vertex)
    _count(counters, "zx.lcomp.matches", len(matches))
    applied = 0
    for vertex in matches:
        if vertex in alive and _lcomp_applicable(diagram, vertex):
            lcomp_step(diagram, vertex)
            applied += 1
        else:
            tracker.retry("lcomp", vertex)
    _count(counters, "zx.lcomp.rewrites", applied)
    return applied


def _edge_round(
    diagram: ZXDiagram,
    tracker: DirtyTracker,
    rule: str,
    anchors: Iterable[int],
    anchor_ok,
    partner_ok,
    step,
    counters,
    oriented: bool,
) -> int:
    """One batch round of an edge-anchored pivot-family rule.

    ``anchors`` are candidate first-endpoints.  The match predicate is
    split: ``anchor_ok(diagram, a)`` covers everything depending on the
    anchor alone and runs **once per anchor** (the diagram is static
    during collection), ``partner_ok(diagram, b)`` covers the other
    endpoint and runs per Hadamard edge — without the split, an anchor of
    degree *d* would re-scan its own neighborhood *d* times.  ``oriented``
    rules (gadget/boundary pivots) distinguish the two endpoints, plain
    pivots do not (each undirected edge is tested once).
    """
    alive = diagram._types
    adjacency = diagram._adjacency
    matches: List[Tuple[int, int]] = []
    claimed: Set[int] = set()
    seen: Set[Tuple[int, int]] = set()
    # The diagram is static during collection, so both predicates are
    # memoized for the duration of the round — without this, a partner of
    # in-degree k is re-scanned k times.
    partner_cache: Dict[int, bool] = {}
    for a in anchors:
        if a not in alive or not anchor_ok(diagram, a):
            continue
        for b in sorted(adjacency[a]):
            edge = (a, b) if (oriented or a < b) else (b, a)
            if edge in seen:
                continue
            seen.add(edge)
            if adjacency[a][b] is not EdgeType.HADAMARD:
                continue
            ok = partner_cache.get(b)
            if ok is None:
                ok = partner_cache[b] = partner_ok(diagram, b)
            if not ok:
                continue
            claim = {a, b}
            claim.update(adjacency[a])
            claim.update(adjacency[b])
            if not claimed.isdisjoint(claim):
                tracker.retry(rule, a)
                continue
            claimed.update(claim)
            matches.append((a, b))
    _count(counters, f"zx.{rule}.matches", len(matches))
    applied = 0
    for a, b in matches:
        if (
            a in alive
            and b in alive
            and b in adjacency[a]
            and adjacency[a][b] is EdgeType.HADAMARD
            and anchor_ok(diagram, a)
            and partner_ok(diagram, b)
        ):
            step(diagram, a, b)
            applied += 1
        else:
            if a in alive:
                tracker.retry(rule, a)
    _count(counters, f"zx.{rule}.rewrites", applied)
    return applied


def _pivot_round(diagram: ZXDiagram, tracker: DirtyTracker, counters) -> int:
    candidates = tracker.drain("pivot")
    if not candidates:
        return 0
    anchors = [v for v in candidates if v in tracker.pauli_spiders]
    return _edge_round(
        diagram, tracker, "pivot", anchors,
        _pivot_endpoint_applicable, _pivot_endpoint_applicable, pivot_step,
        counters, oriented=False,
    )


def _pivot_gadget_round(
    diagram: ZXDiagram, tracker: DirtyTracker, counters
) -> int:
    candidates = tracker.drain("pivot_gadget")
    if not candidates:
        return 0
    # The Pauli anchor is drained directly, or is a neighbor of the dirty
    # non-Pauli partner — drain() already added those neighbors.
    anchors = [v for v in candidates if v in tracker.pauli_spiders]
    return _edge_round(
        diagram, tracker, "pivot_gadget", anchors,
        _pivot_gadget_anchor_applicable, _pivot_gadget_partner_applicable,
        pivot_gadget_step, counters, oriented=True,
    )


def _pivot_boundary_round(
    diagram: ZXDiagram, tracker: DirtyTracker, counters
) -> int:
    candidates = tracker.drain("pivot_boundary")
    if not candidates:
        return 0
    anchors = [v for v in candidates if v in tracker.pauli_spiders]
    return _edge_round(
        diagram, tracker, "pivot_boundary", anchors,
        _pivot_endpoint_applicable, _pivot_boundary_partner_applicable,
        pivot_boundary_step, counters, oriented=True,
    )


def _gadget_round(
    diagram: ZXDiagram, tracker: DirtyTracker, counters
) -> int:
    candidates = tracker.drain("gadget")
    if not candidates:
        return 0
    supports = tracker.gadget_supports
    axis_key = tracker._axis_key
    # Invalidate cache entries whose axis neighborhood may have changed.
    for vertex in candidates:
        key = axis_key.pop(vertex, None)
        if key is not None:
            entry = supports.get(key)
            if entry is not None and entry[0] == vertex:
                del supports[key]
    alive = diagram._types
    matched = 0
    applied = 0
    for leaf in candidates:
        if leaf not in alive:
            continue
        shape = _gadget_shape(diagram, leaf)
        if shape is None:
            continue
        axis, support = shape
        existing = supports.get(support)
        if existing is not None and existing[0] != axis:
            other_axis, other_leaf = existing
            # Validate the cached entry against the live diagram — it may
            # be stale (e.g. the axis grew a second leaf and was later
            # re-registered under a different key).
            stale = (
                other_axis not in alive
                or other_leaf not in alive
                or diagram.phase(other_axis) != _ZERO
                or _gadget_shape(diagram, other_leaf) != (other_axis, support)
            )
            if stale:
                del supports[support]
                axis_key.pop(other_axis, None)
                existing = None
        if existing is not None and existing[0] != axis:
            matched += 1
            gadget_fuse_step(diagram, existing[1], axis, leaf)
            applied += 1
        else:
            supports[support] = (axis, leaf)
            axis_key[axis] = support
    _count(counters, "zx.gadget.matches", matched)
    _count(counters, "zx.gadget.rewrites", applied)
    return applied


_ROUNDS = {
    "id": _id_round,
    "lcomp": _lcomp_round,
    "pivot": _pivot_round,
    "pivot_gadget": _pivot_gadget_round,
    "pivot_boundary": _pivot_boundary_round,
    "gadget": _gadget_round,
}


def _run_rule(
    diagram: ZXDiagram, tracker: DirtyTracker, rule: str, deadline, counters
) -> int:
    """Drive one rule to its local fixpoint over its own dirty set."""
    round_fn = _ROUNDS[rule]
    applied = 0
    while tracker.pending(rule):
        _check_deadline(deadline)
        applied += round_fn(diagram, tracker, counters)
    return applied


# ---------------------------------------------------------------------------
# pipelines (scheduling mirrors the legacy ones in repro.zx.simplify)
# ---------------------------------------------------------------------------
def _interior_clifford(diagram, tracker, deadline, counters) -> int:
    total = 0
    while True:
        applied = _run_rule(diagram, tracker, "id", deadline, counters)
        applied += _run_rule(diagram, tracker, "pivot", deadline, counters)
        applied += _run_rule(diagram, tracker, "lcomp", deadline, counters)
        total += applied
        if not applied:
            return total


def _clifford(diagram, tracker, deadline, counters) -> int:
    total = 0
    while True:
        applied = _interior_clifford(diagram, tracker, deadline, counters)
        applied += _run_rule(
            diagram, tracker, "pivot_boundary", deadline, counters
        )
        total += applied
        if not applied:
            return total


def _with_tracker(diagram: ZXDiagram, body) -> int:
    """Graph-like normalization, tracker attach/run/detach."""
    to_graph_like(diagram)
    tracker = DirtyTracker(diagram)
    diagram.attach_tracker(tracker)
    try:
        return body(tracker)
    finally:
        diagram.detach_tracker()


def interior_clifford_simp_incremental(
    diagram: ZXDiagram, deadline=None, counters=None
) -> int:
    """Worklist-driven :func:`repro.zx.simplify.interior_clifford_simp`."""
    return _with_tracker(
        diagram,
        lambda tracker: _interior_clifford(
            diagram, tracker, deadline, counters
        ),
    )


def clifford_simp_incremental(
    diagram: ZXDiagram, deadline=None, counters=None
) -> int:
    """Worklist-driven :func:`repro.zx.simplify.clifford_simp`."""
    return _with_tracker(
        diagram,
        lambda tracker: _clifford(diagram, tracker, deadline, counters),
    )


def full_reduce_incremental(
    diagram: ZXDiagram,
    max_rounds: int = 10_000,
    deadline=None,
    counters=None,
) -> int:
    """Worklist-driven :func:`repro.zx.simplify.full_reduce`.

    Same rule schedule as the legacy pipeline; after the initial sweep
    (every rule's dirty set starts full) each subsequent pass only touches
    vertices whose neighborhood a rewrite actually changed, so the
    quiescent passes that dominate the legacy engine degenerate to empty
    set checks.
    """

    def body(tracker: DirtyTracker) -> int:
        total = _interior_clifford(diagram, tracker, deadline, counters)
        total += _run_rule(
            diagram, tracker, "pivot_gadget", deadline, counters
        )
        rounds = 0
        for _ in range(max_rounds):
            rounds += 1
            applied = _clifford(diagram, tracker, deadline, counters)
            applied += _run_rule(
                diagram, tracker, "gadget", deadline, counters
            )
            applied += _interior_clifford(diagram, tracker, deadline, counters)
            applied += _run_rule(
                diagram, tracker, "pivot_gadget", deadline, counters
            )
            total += applied
            if not applied:
                break
        _count(counters, "zx.rounds", rounds)
        return total

    return _with_tracker(diagram, body)
