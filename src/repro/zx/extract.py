"""Circuit extraction from graph-like ZX-diagrams.

The inverse direction of :func:`repro.zx.circuit_conv.circuit_to_zx`,
following the frontier-based algorithm of Backens et al., "There and back
again: a circuit extraction tale" (reference [40] of the paper), restricted
to *gadget-free* diagrams — which covers everything ``full_reduce``
produces from Clifford circuits and any diagram whose non-Clifford phases
ended up on wires rather than phase gadgets.

The extractor peels gates off the output side:

1. Hadamard edges into outputs become H gates,
2. frontier phases become RZ gates,
3. Hadamard edges between frontier spiders become CZ gates,
4. frontier spiders with a single back-neighbour advance the frontier
   (one H gate), and
5. when nothing advances, GF(2) Gaussian elimination on the
   frontier/back-neighbour biadjacency emits CNOTs until some row has a
   single 1.

The leftover bare-wire permutation is realized with SWAP gates.  The
extractor covers every ``full_reduce`` output of a Clifford circuit, plus
many diagrams with simple phase gadgets (the gadget axis behaves as an
ordinary back-neighbour column); diagrams needing the full gflow machinery
of [40] raise :class:`ExtractionError` — never a wrong circuit.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.dd.gates import permutation_to_transpositions
from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.phase import phase_to_radians
from repro.zx.simplify import to_graph_like


class ExtractionError(RuntimeError):
    """Raised when a diagram cannot be extracted (e.g. phase gadgets)."""


def extract_circuit(diagram: ZXDiagram) -> QuantumCircuit:
    """Extract an equivalent circuit from a graph-like diagram.

    The diagram is not modified (extraction works on a copy).  The result
    realizes the diagram's linear map up to global scalar.
    """
    g = diagram.copy()
    to_graph_like(g)
    num_qubits = len(g.outputs)
    if len(g.inputs) != num_qubits:
        raise ExtractionError("diagram is not unitary (input/output arity)")
    # gates in reverse order (peeled from the output side)
    reversed_gates: List[Operation] = []
    input_positions = {v: i for i, v in enumerate(g.inputs)}

    budget = 20 * (g.num_vertices + g.num_edges) + 100
    while budget > 0:
        budget -= 1
        if _normalize_output_edges(g, reversed_gates):
            continue
        frontier = _frontier(g, input_positions)
        if frontier is None:
            break  # every output wire reaches an input directly
        if _extract_phases_and_czs(g, frontier, reversed_gates):
            continue
        if _advance_single_neighbor(g, frontier, input_positions):
            continue
        if _eliminate_with_cnots(g, frontier, reversed_gates):
            continue
        raise ExtractionError(
            "extraction is stuck — the diagram contains phase gadgets "
            "or lacks gflow"
        )
    else:
        raise ExtractionError("extraction did not terminate")

    circuit = QuantumCircuit(num_qubits, name="extracted")
    # the remaining diagram is a bare-wire permutation: input i -> output q
    permutation: Dict[int, int] = {}
    output_positions = {v: q for q, v in enumerate(g.outputs)}
    for i, input_vertex in enumerate(g.inputs):
        (neighbor,) = g.neighbor_view(input_vertex)
        if neighbor not in output_positions or g.edge_type(
            input_vertex, neighbor
        ) is not EdgeType.SIMPLE:
            raise ExtractionError("residual diagram is not a permutation")
        permutation[i] = output_positions[neighbor]
    for a, b in permutation_to_transpositions(permutation, num_qubits):
        circuit.swap(a, b)
    for op in reversed(reversed_gates):
        circuit.append(op)
    return circuit


def _normalize_output_edges(
    g: ZXDiagram, reversed_gates: List[Operation]
) -> bool:
    """Turn H edges into outputs into H gates; returns True on change."""
    changed = False
    for q, output in enumerate(g.outputs):
        (neighbor,) = g.neighbor_view(output)
        if g.edge_type(output, neighbor) is EdgeType.HADAMARD:
            reversed_gates.append(Operation("h", (q,)))
            g.set_edge_type(output, neighbor, EdgeType.SIMPLE)
            changed = True
    return changed


def _frontier(
    g: ZXDiagram, input_positions: Dict[int, int]
) -> Optional[Dict[int, int]]:
    """Map qubit -> frontier spider; None when all wires are finished."""
    frontier: Dict[int, int] = {}
    for q, output in enumerate(g.outputs):
        (neighbor,) = g.neighbor_view(output)
        if neighbor in input_positions:
            continue  # finished wire
        if g.is_boundary(neighbor):
            raise ExtractionError("output connected to another output")
        if neighbor in frontier.values():
            raise ExtractionError(
                "spider adjacent to multiple outputs — not supported by "
                "the gadget-free extractor"
            )
        frontier[q] = neighbor
    return frontier or None


def _extract_phases_and_czs(
    g: ZXDiagram, frontier: Dict[int, int], reversed_gates: List[Operation]
) -> bool:
    """Peel RZ phases and frontier-frontier CZs; returns True on change."""
    changed = False
    vertex_to_qubit = {v: q for q, v in frontier.items()}
    for q, vertex in frontier.items():
        phase = g.phase(vertex)
        if phase != 0:
            reversed_gates.append(
                Operation("rz", (q,), params=(phase_to_radians(phase),))
            )
            g.set_phase(vertex, Fraction(0))
            changed = True
    for q, vertex in list(frontier.items()):
        for neighbor in list(g.neighbors(vertex)):
            other = vertex_to_qubit.get(neighbor)
            if other is not None and other > q:
                reversed_gates.append(Operation("z", (other,), (q,)))
                g.disconnect(vertex, neighbor)
                changed = True
    return changed


def _back_neighbors(
    g: ZXDiagram, vertex: int
) -> List[int]:
    """Neighbours of a frontier spider other than its output boundary."""
    return [
        n
        for n in g.neighbor_view(vertex)
        if not (g.is_boundary(n) and g.degree(n) == 1 and _is_output(g, n))
    ]


def _is_output(g: ZXDiagram, vertex: int) -> bool:
    return vertex in g.outputs


def _advance_single_neighbor(
    g: ZXDiagram, frontier: Dict[int, int], input_positions: Dict[int, int]
) -> bool:
    """Remove frontier spiders that act as plain or Hadamard wires."""
    changed = False
    for q, vertex in frontier.items():
        if g.phase(vertex) != 0:
            continue
        back = _back_neighbors(g, vertex)
        if len(back) != 1:
            continue
        (w,) = back
        output = g.outputs[q]
        wire_type = g.edge_type(vertex, w)
        g.remove_vertex(vertex)
        # vertex had a SIMPLE edge to the output (normalized earlier), so
        # the composite edge type equals the back-edge type.
        g.connect(w, output, wire_type)
        changed = True
    return changed


def _eliminate_with_cnots(
    g: ZXDiagram, frontier: Dict[int, int], reversed_gates: List[Operation]
) -> bool:
    """GF(2)-eliminate the frontier biadjacency, emitting CNOT gates.

    A row operation ``row_t ^= row_c`` on the biadjacency matrix between
    frontier spiders (phase 0, all-Hadamard back edges) and their back
    neighbours corresponds to peeling a CNOT with *control* ``q_t`` and
    *target* ``q_c`` off the circuit (the H edges swap the roles relative
    to the naive guess).  Returns True if progress was made (some row
    reached weight one).
    """
    qubits = sorted(frontier)
    rows = []
    columns: List[int] = []
    column_index: Dict[int, int] = {}
    for q in qubits:
        vertex = frontier[q]
        if g.phase(vertex) != 0:
            return False
        back = _back_neighbors(g, vertex)
        for n in back:
            if g.edge_type(vertex, n) is not EdgeType.HADAMARD:
                # buffer a simple frontier-input edge into two H edges
                if g.is_boundary(n):
                    buffer = g.add_vertex(VertexType.Z)
                    g.disconnect(vertex, n)
                    g.connect(vertex, buffer, EdgeType.HADAMARD)
                    g.connect(buffer, n, EdgeType.HADAMARD)
                    return True  # diagram changed; recompute frontier
                return False
        rows.append(set(back))
    for row in rows:
        for n in sorted(row):
            if n not in column_index:
                column_index[n] = len(columns)
                columns.append(n)

    matrix = [
        [1 if n in row else 0 for n in columns] for row in rows
    ]
    operations: List[Tuple[int, int]] = []  # (source_row, target_row)
    pivot_row = 0
    for column in range(len(columns)):
        pivot = next(
            (
                r
                for r in range(pivot_row, len(matrix))
                if matrix[r][column]
            ),
            None,
        )
        if pivot is None:
            continue
        if pivot != pivot_row:
            # swapping rows is two CNOTs + relabel; emulate with three
            # row additions (a ^= b, b ^= a, a ^= b)
            for source, target in (
                (pivot, pivot_row),
                (pivot_row, pivot),
                (pivot, pivot_row),
            ):
                _row_add(matrix, operations, source, target)
        for r in range(len(matrix)):
            if r != pivot_row and matrix[r][column]:
                _row_add(matrix, operations, pivot_row, r)
        pivot_row += 1

    # check that elimination produced at least one weight-1 row
    if not any(sum(row) == 1 for row in matrix):
        return False
    # apply the row operations to the diagram and emit the CNOTs
    for source, target in operations:
        q_source, q_target = qubits[source], qubits[target]
        v_source, v_target = frontier[q_source], frontier[q_target]
        for neighbor in _back_neighbors(g, v_source):
            g.toggle_hadamard_edge(v_target, neighbor)
        reversed_gates.append(Operation("x", (q_source,), (q_target,)))
    return True


def _row_add(matrix, operations, source: int, target: int) -> None:
    for c in range(len(matrix[0])):
        matrix[target][c] ^= matrix[source][c]
    operations.append((source, target))
