"""Spider phases, stored in units of pi.

Phases are kept *exact* whenever possible: a phase is either a
:class:`fractions.Fraction` (``Fraction(1, 2)`` means pi/2) or, for truly
arbitrary angles, a float (also in units of pi).  Floats that are within
``SNAP_TOLERANCE`` of a small-denominator fraction are snapped to the exact
fraction on insertion.

This mirrors the behaviour the paper attributes to the ZX paradigm in
Section 6.2: phases merely *add* during rewriting, so numerical error does
not compound structurally — and dyadic phases (Clifford+T circuits, QFT
angles) stay exact throughout.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

Phase = Union[Fraction, float]

#: Maximum denominator considered when snapping float phases to fractions.
SNAP_MAX_DENOMINATOR = 1 << 12
#: Absolute snapping tolerance, in units of pi.
SNAP_TOLERANCE = 1e-9

_PI = 3.141592653589793


def normalize_phase(phase: Phase) -> Phase:
    """Reduce a phase to the half-open interval ``[0, 2)`` (units of pi).

    Float phases close to a dyadic fraction are converted to the exact
    :class:`Fraction`; everything else stays a float.
    """
    if isinstance(phase, Fraction):
        return phase % 2
    if isinstance(phase, int):
        return Fraction(phase) % 2
    value = float(phase) % 2.0
    snapped = Fraction(value).limit_denominator(SNAP_MAX_DENOMINATOR)
    if abs(float(snapped) - value) <= SNAP_TOLERANCE:
        return snapped % 2
    return value


def add_phases(a: Phase, b: Phase) -> Phase:
    """Sum of two phases, normalized."""
    return normalize_phase(a + b)


def negate_phase(a: Phase) -> Phase:
    """Additive inverse of a phase, normalized."""
    return normalize_phase(-a)


def phase_to_radians(phase: Phase) -> float:
    """Convert a phase in units of pi to radians."""
    return float(phase) * _PI


def radians_to_phase(angle: float) -> Phase:
    """Convert an angle in radians to a normalized phase in units of pi."""
    return normalize_phase(angle / _PI)


def is_zero_phase(phase: Phase) -> bool:
    """True for phase 0 (the identity spider phase)."""
    return normalize_phase(phase) == 0


def is_pauli_phase(phase: Phase) -> bool:
    """True for phases 0 or pi (the *Pauli* spiders pivoting acts on)."""
    p = normalize_phase(phase)
    return p == 0 or p == 1


def is_proper_clifford_phase(phase: Phase) -> bool:
    """True for phases ±pi/2 (the spiders local complementation acts on)."""
    p = normalize_phase(phase)
    return p == Fraction(1, 2) or p == Fraction(3, 2)


def is_clifford_phase(phase: Phase) -> bool:
    """True for any multiple of pi/2."""
    p = normalize_phase(phase)
    return isinstance(p, Fraction) and (2 * p).denominator == 1
