"""Spider phases, stored in units of pi.

Phases are kept *exact* whenever possible: a phase is either a
:class:`fractions.Fraction` (``Fraction(1, 2)`` means pi/2) or, for truly
arbitrary angles, a float (also in units of pi).  Floats that are within
``SNAP_TOLERANCE`` of a small-denominator fraction are snapped to the exact
fraction on insertion.

This mirrors the behaviour the paper attributes to the ZX paradigm in
Section 6.2: phases merely *add* during rewriting, so numerical error does
not compound structurally — and dyadic phases (Clifford+T circuits, QFT
angles) stay exact throughout.

Parameterized circuits add a third phase kind: :class:`SymbolicPhase`, a
linear form over named parameters (each interpreted as *its radian value
divided by pi*) with exact rational coefficients plus a concrete
:data:`Phase` offset.  Symbolic phases ride through fusion and the other
phase-uniform rewrites (which only ever *add* phases), while the
Clifford-specific rules (pivot, local complementation) skip them because
their ``type(phase) is Fraction`` gates exclude symbolic spiders — which
is exactly what keeps symbolic simplification sound for *every*
valuation of the parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Mapping, Tuple, Union

from repro.circuit.symbolic import ParamExpr

Phase = Union[Fraction, float]

#: Maximum denominator considered when snapping float phases to fractions.
SNAP_MAX_DENOMINATOR = 1 << 12
#: Absolute snapping tolerance, in units of pi.
SNAP_TOLERANCE = 1e-9

_PI = 3.141592653589793


@dataclass(frozen=True)
class SymbolicPhase:
    """A symbolic spider phase: linear form over parameters plus offset.

    ``terms`` maps parameter names to exact rational coefficients; each
    parameter stands for *its radian value divided by pi*, so the phase
    (in units of pi) under a valuation ``v`` is
    ``const + sum_i c_i * v[name_i] / pi``.  ``terms`` is canonical
    (sorted, nonzero) and ``const`` is a normalized :data:`Phase`; build
    instances through :func:`symbolic_phase` or the phase arithmetic
    helpers, which auto-collapse to a plain :data:`Phase` when the last
    symbolic term cancels.
    """

    terms: Tuple[Tuple[str, Fraction], ...]
    const: Phase

    def evaluate(self, valuation: Mapping[str, float]) -> Phase:
        """The concrete phase (units of pi) under ``valuation``."""
        total = float(self.const)
        for name, coeff in self.terms:
            if name not in valuation:
                raise ValueError(f"valuation is missing parameter {name!r}")
            total += float(coeff) * float(valuation[name]) / _PI
        return normalize_phase(total)

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.terms:
            if coeff == 1:
                rendered = f"{name}/π"
            elif coeff == -1:
                rendered = f"-{name}/π"
            else:
                rendered = f"({coeff})*{name}/π"
            if parts and not rendered.startswith("-"):
                parts.append(f"+{rendered}")
            else:
                parts.append(rendered)
        if self.const != 0:
            rendered = str(self.const)
            if not rendered.startswith("-"):
                rendered = f"+{rendered}"
            parts.append(rendered)
        return "".join(parts)


def symbolic_phase(
    terms: Mapping[str, Fraction], const: Phase
) -> Union[SymbolicPhase, Phase]:
    """Canonical symbolic phase; collapses to :data:`Phase` when concrete."""
    kept = tuple(
        (name, coeff) for name, coeff in sorted(terms.items()) if coeff != 0
    )
    normalized = normalize_phase(const)
    if not kept:
        return normalized
    return SymbolicPhase(kept, normalized)


def normalize_phase(phase):
    """Reduce a phase to the half-open interval ``[0, 2)`` (units of pi).

    Float phases close to a dyadic fraction are converted to the exact
    :class:`Fraction`; everything else stays a float.  For symbolic
    phases only the constant offset is normalized — the coefficients of
    the free parameters must stay untouched (the parameters range over
    all reals, so there is nothing to reduce them modulo).
    """
    if isinstance(phase, SymbolicPhase):
        return SymbolicPhase(phase.terms, normalize_phase(phase.const))
    if isinstance(phase, Fraction):
        return phase % 2
    if isinstance(phase, int):
        return Fraction(phase) % 2
    value = float(phase) % 2.0
    snapped = Fraction(value).limit_denominator(SNAP_MAX_DENOMINATOR)
    if abs(float(snapped) - value) <= SNAP_TOLERANCE:
        return snapped % 2
    return value


def add_phases(a, b):
    """Sum of two phases, normalized."""
    if isinstance(a, SymbolicPhase) or isinstance(b, SymbolicPhase):
        terms: Dict[str, Fraction] = {}
        const = 0
        for operand in (a, b):
            if isinstance(operand, SymbolicPhase):
                for name, coeff in operand.terms:
                    terms[name] = terms.get(name, Fraction(0)) + coeff
                const = const + operand.const
            else:
                const = const + operand
        return symbolic_phase(terms, const)
    return normalize_phase(a + b)


def negate_phase(a):
    """Additive inverse of a phase, normalized."""
    if isinstance(a, SymbolicPhase):
        return symbolic_phase(
            {name: -coeff for name, coeff in a.terms}, -a.const
        )
    return normalize_phase(-a)


def phase_to_radians(phase: Phase) -> float:
    """Convert a phase in units of pi to radians."""
    if isinstance(phase, SymbolicPhase):
        raise TypeError(
            "cannot convert a symbolic phase to radians; instantiate the "
            "parameters first"
        )
    return float(phase) * _PI


def radians_to_phase(angle):
    """Convert an angle in radians to a normalized phase in units of pi.

    Symbolic angles (:class:`~repro.circuit.symbolic.ParamExpr`) map to
    :class:`SymbolicPhase` with identical coefficients: a term ``c * v``
    in radians is ``c * (v/pi)`` in units of pi.
    """
    if isinstance(angle, ParamExpr):
        return symbolic_phase(dict(angle.terms), angle.const / _PI)
    return normalize_phase(angle / _PI)


def is_zero_phase(phase: Phase) -> bool:
    """True for phase 0 (the identity spider phase)."""
    return normalize_phase(phase) == 0


def is_pauli_phase(phase: Phase) -> bool:
    """True for phases 0 or pi (the *Pauli* spiders pivoting acts on)."""
    p = normalize_phase(phase)
    return p == 0 or p == 1


def is_proper_clifford_phase(phase: Phase) -> bool:
    """True for phases ±pi/2 (the spiders local complementation acts on)."""
    p = normalize_phase(phase)
    return p == Fraction(1, 2) or p == Fraction(3, 2)


def is_clifford_phase(phase: Phase) -> bool:
    """True for any multiple of pi/2."""
    p = normalize_phase(phase)
    return isinstance(p, Fraction) and (2 * p).denominator == 1
