"""Exact tensor-network semantics of ZX-diagrams.

Evaluating a diagram to its matrix is exponential in the number of open
wires and in the cut-width of the contraction, so this module exists for
*testing*: every rewrite rule in :mod:`repro.zx.rules` and the whole
simplification pipeline are validated against these dense semantics on
small diagrams (the reproduction's analogue of the paper's Fig. 5 axiom
soundness).

Conventions match :mod:`repro.circuit.unitary`: qubit 0 is the least
significant index bit; the returned matrix maps the input space to the
output space.  ZX-diagrams only determine matrices up to a global scalar,
hence :func:`diagrams_proportional` is the right comparison.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.phase import phase_to_radians

_HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2.0)


def _spider_tensor(vertex_type: VertexType, phase, degree: int) -> np.ndarray:
    """Dense tensor of a spider with ``degree`` legs."""
    if degree == 0:
        value = 1 + cmath.exp(1j * phase_to_radians(phase))
        return np.array(value, dtype=complex)
    tensor = np.zeros((2,) * degree, dtype=complex)
    tensor[(0,) * degree] = 1.0
    tensor[(1,) * degree] = cmath.exp(1j * phase_to_radians(phase))
    if vertex_type is VertexType.X:
        for leg in range(degree):
            tensor = np.tensordot(tensor, _HADAMARD, axes=([leg], [0]))
            tensor = np.moveaxis(tensor, -1, leg)
    return tensor


class _Network:
    """A list of tensors with labelled legs, contracted greedily."""

    def __init__(self) -> None:
        self.tensors: List[Tuple[np.ndarray, List[object]]] = []

    def add(self, tensor: np.ndarray, legs: List[object]) -> None:
        self.tensors.append((tensor, legs))

    def contract(self) -> Tuple[np.ndarray, List[object]]:
        """Contract everything; returns the final tensor and its open legs."""
        while True:
            pair = self._find_pair()
            if pair is None:
                break
            i, j = pair
            tensor_j, legs_j = self.tensors.pop(j)
            tensor_i, legs_i = self.tensors.pop(i)
            shared = [leg for leg in legs_i if leg in legs_j]
            axes_i = [legs_i.index(leg) for leg in shared]
            axes_j = [legs_j.index(leg) for leg in shared]
            result = np.tensordot(tensor_i, tensor_j, axes=(axes_i, axes_j))
            remaining = [leg for leg in legs_i if leg not in shared] + [
                leg for leg in legs_j if leg not in shared
            ]
            self.tensors.append((result, remaining))
        # Multiply disconnected components (scalars and open-leg pieces).
        tensor, legs = self.tensors[0]
        for other, other_legs in self.tensors[1:]:
            tensor = np.tensordot(tensor, other, axes=0)
            legs = legs + other_legs
        return tensor, legs

    def _find_pair(self) -> Optional[Tuple[int, int]]:
        best = None
        best_rank = None
        for i in range(len(self.tensors)):
            legs_i = set(self.tensors[i][1])
            for j in range(i + 1, len(self.tensors)):
                legs_j = set(self.tensors[j][1])
                shared = legs_i & legs_j
                if not shared:
                    continue
                rank = len(legs_i) + len(legs_j) - 2 * len(shared)
                if best_rank is None or rank < best_rank:
                    best = (i, j)
                    best_rank = rank
        return best


def diagram_to_tensor(diagram: ZXDiagram) -> Tuple[np.ndarray, List[object]]:
    """Contract the diagram; open legs are labelled ``("in", k)``/``("out", k)``."""
    network = _Network()
    input_positions = {v: k for k, v in enumerate(diagram.inputs)}
    output_positions = {v: k for k, v in enumerate(diagram.outputs)}

    def edge_leg(u: int, v: int) -> Tuple[str, int, int]:
        a, b = (u, v) if u < v else (v, u)
        return ("edge", a, b)

    for u, v, edge_type in diagram.edges():
        if edge_type is EdgeType.HADAMARD:
            leg_u = ("half", u, v)
            leg_v = ("half", v, u)
            network.add(_HADAMARD.copy(), [leg_u, leg_v])

    def vertex_leg(vertex: int, neighbor: int) -> object:
        if diagram.edge_type(vertex, neighbor) is EdgeType.HADAMARD:
            return ("half", vertex, neighbor)
        return edge_leg(vertex, neighbor)

    for vertex in diagram.vertices():
        vertex_type = diagram.vertex_type(vertex)
        neighbors = diagram.neighbors(vertex)
        if vertex_type is VertexType.BOUNDARY:
            if len(neighbors) != 1:
                raise ValueError("boundary vertex must have exactly one edge")
            label = (
                ("in", input_positions[vertex])
                if vertex in input_positions
                else ("out", output_positions[vertex])
            )
            network.add(
                np.eye(2, dtype=complex), [label, vertex_leg(vertex, neighbors[0])]
            )
        else:
            tensor = _spider_tensor(
                vertex_type, diagram.phase(vertex), len(neighbors)
            )
            network.add(tensor, [vertex_leg(vertex, n) for n in neighbors])
    if not network.tensors:
        return np.array(1.0, dtype=complex), []
    return network.contract()


def diagram_to_matrix(diagram: ZXDiagram) -> np.ndarray:
    """Dense matrix of the diagram (rows: outputs, columns: inputs)."""
    tensor, legs = diagram_to_tensor(diagram)
    num_in = len(diagram.inputs)
    num_out = len(diagram.outputs)
    if len(legs) != num_in + num_out:
        raise ValueError("contraction left unexpected open legs")
    # Order legs as (out_{m-1}, ..., out_0, in_{n-1}, ..., in_0) so that
    # qubit 0 is the least significant bit of both indices.
    order = []
    for k in reversed(range(num_out)):
        order.append(legs.index(("out", k)))
    for k in reversed(range(num_in)):
        order.append(legs.index(("in", k)))
    tensor = np.transpose(tensor, order)
    return tensor.reshape(2**num_out, 2**num_in)


def diagrams_proportional(
    a: np.ndarray, b: np.ndarray, tol: float = 1e-8
) -> bool:
    """True if two matrices are equal up to a non-zero global scalar."""
    if a.shape != b.shape:
        return False
    norm_a = np.linalg.norm(a)
    norm_b = np.linalg.norm(b)
    if norm_a < tol or norm_b < tol:
        return norm_a < tol and norm_b < tol
    a = a / norm_a
    b = b / norm_b
    # Align global phase on the largest entry of a.
    index = np.unravel_index(np.argmax(np.abs(a)), a.shape)
    phase = b[index] / a[index] if abs(a[index]) > tol else 1.0
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(a * phase, b, atol=tol))
