"""Graph-like simplification of ZX-diagrams.

This module re-implements the simplification strategy of Duncan et al.
("Graph-theoretic simplification of quantum circuits with the ZX-calculus")
that PyZX's ``full_reduce`` uses and that the paper's case study relies on
(Section 5.1 / 6.1: "the ZX-diagrams of the circuits are combined [...],
transformed into a graph-like diagram and then simplified as much as
possible using the local complementation and pivoting rules").

A diagram is *graph-like* when every spider is a Z spider, spiders are only
connected by Hadamard edges, and there are no parallel edges or self-loops.
On graph-like diagrams the following rewrite families apply:

* ``id_simp`` — remove phase-0 degree-2 spiders,
* ``lcomp_simp`` — local complementation, eliminating interior spiders with
  phase ±pi/2,
* ``pivot_simp`` — pivoting, eliminating pairs of adjacent interior Pauli
  spiders,
* ``pivot_gadget_simp`` / ``pivot_boundary_simp`` — pivot variants that
  first gadgetize a non-Pauli partner or detach a boundary-adjacent one,
* ``gadget_simp`` — fusion of phase gadgets with identical support.

All rewrites hold up to a global scalar, which the equivalence-checking
use-case does not need (tensor tests compare up to proportionality).
The number of spiders never increases — the property the paper highlights
("because the number of spiders are non-increasing [...] the size of the
diagram does not blow up").
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.phase import (
    is_pauli_phase,
    is_proper_clifford_phase,
    negate_phase,
    normalize_phase,
)

_ZERO = Fraction(0)
_HALF = Fraction(1, 2)
_ONE = Fraction(1)


class SimplificationTimeout(Exception):
    """Raised when a simplification exceeds its wall-clock deadline."""


def _check_deadline(deadline) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise SimplificationTimeout()


# ---------------------------------------------------------------------------
# graph-like transformation
# ---------------------------------------------------------------------------
def _fuse(diagram: ZXDiagram, keep: int, merge: int) -> None:
    """Fuse spider ``merge`` into ``keep`` (both Z, simple-edge connected).

    Parallel-edge conflicts created by the fusion are resolved on the fly:
    a doubled simple edge between Z spiders is idempotent, a doubled
    Hadamard edge cancels (Hopf), and a simple/Hadamard pair is a simple
    edge plus a pi phase (the Hadamard edge becomes a self-loop once the
    simple edge is fused).
    """
    worklist = [merge]
    while worklist:
        merge = worklist.pop()
        if (
            merge not in diagram._types
            or not diagram.connected(keep, merge)
            or diagram.edge_type(keep, merge) is not EdgeType.SIMPLE
            or diagram.vertex_type(merge) is not VertexType.Z
        ):
            continue
        diagram.add_to_phase(keep, diagram.phase(merge))
        diagram.disconnect(keep, merge)
        for neighbor in list(diagram.neighbors(merge)):
            edge_type = diagram.edge_type(merge, neighbor)
            diagram.disconnect(merge, neighbor)
            if neighbor == keep:
                # Self-loop after fusion: simple loops vanish, H loops: pi.
                if edge_type is EdgeType.HADAMARD:
                    diagram.add_to_phase(keep, _ONE)
                continue
            if not diagram.connected(keep, neighbor):
                diagram.connect(keep, neighbor, edge_type)
            else:
                existing = diagram.edge_type(keep, neighbor)
                if existing is edge_type:
                    if edge_type is EdgeType.HADAMARD:
                        # Hopf: parallel H edges cancel.
                        diagram.disconnect(keep, neighbor)
                    # parallel simple edges between Z spiders: idempotent
                else:
                    # simple + Hadamard pair -> simple edge plus a pi phase
                    diagram.set_edge_type(keep, neighbor, EdgeType.SIMPLE)
                    diagram.add_to_phase(keep, _ONE)
            # Fusing may leave fresh simple Z-Z edges; queue them so the
            # graph-like invariant is restored before returning.
            if (
                diagram.connected(keep, neighbor)
                and diagram.edge_type(keep, neighbor) is EdgeType.SIMPLE
                and diagram.vertex_type(neighbor) is VertexType.Z
            ):
                worklist.append(neighbor)
        diagram.remove_vertex(merge)


def to_graph_like(diagram: ZXDiagram) -> ZXDiagram:
    """Transform in place to graph-like form; returns the diagram.

    X spiders are recolored to Z (toggling the type of every incident
    edge), then all simple edges between Z spiders are fused away.
    """
    for vertex in list(diagram.vertices()):
        if diagram.vertex_type(vertex) is VertexType.X:
            diagram.set_vertex_type(vertex, VertexType.Z)
            for neighbor in diagram.neighbors(vertex):
                current = diagram.edge_type(vertex, neighbor)
                flipped = (
                    EdgeType.SIMPLE
                    if current is EdgeType.HADAMARD
                    else EdgeType.HADAMARD
                )
                diagram.set_edge_type(vertex, neighbor, flipped)
    changed = True
    while changed:
        changed = False
        for u, v, edge_type in list(diagram.edges()):
            if edge_type is not EdgeType.SIMPLE:
                continue
            if u not in diagram._types or v not in diagram._types:
                continue  # removed by an earlier fusion this sweep
            if (
                diagram.connected(u, v)
                and diagram.edge_type(u, v) is EdgeType.SIMPLE
                and diagram.vertex_type(u) is VertexType.Z
                and diagram.vertex_type(v) is VertexType.Z
            ):
                _fuse(diagram, u, v)
                changed = True
    return diagram


# ---------------------------------------------------------------------------
# identity removal
# ---------------------------------------------------------------------------
def id_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Remove phase-0 Z spiders of degree two; returns number removed."""
    removed = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        for vertex in list(diagram.vertices()):
            if vertex not in diagram._types:
                continue
            if diagram.vertex_type(vertex) is not VertexType.Z:
                continue
            if normalize_phase(diagram.phase(vertex)) != 0:
                continue
            if diagram.degree(vertex) != 2:
                continue
            n1, n2 = diagram.neighbors(vertex)
            t1 = diagram.edge_type(vertex, n1)
            t2 = diagram.edge_type(vertex, n2)
            combined = EdgeType.SIMPLE if t1 is t2 else EdgeType.HADAMARD
            diagram.remove_vertex(vertex)
            removed += 1
            again = True
            if not diagram.connected(n1, n2):
                diagram.connect(n1, n2, combined)
            else:
                both_z = (
                    diagram.vertex_type(n1) is VertexType.Z
                    and diagram.vertex_type(n2) is VertexType.Z
                )
                if not both_z:
                    raise ValueError(
                        "parallel edge through a boundary — malformed diagram"
                    )
                existing = diagram.edge_type(n1, n2)
                if existing is combined:
                    if combined is EdgeType.HADAMARD:
                        diagram.disconnect(n1, n2)  # Hopf
                    # doubled simple edge between Z spiders: idempotent
                else:
                    diagram.set_edge_type(n1, n2, EdgeType.SIMPLE)
                    diagram.add_to_phase(n1, _ONE)
            # A surviving simple edge between two Z spiders must be fused to
            # keep the diagram graph-like.
            if (
                diagram.connected(n1, n2)
                and diagram.edge_type(n1, n2) is EdgeType.SIMPLE
                and diagram.vertex_type(n1) is VertexType.Z
                and diagram.vertex_type(n2) is VertexType.Z
            ):
                _fuse(diagram, n1, n2)
    return removed


# ---------------------------------------------------------------------------
# local complementation
# ---------------------------------------------------------------------------
def _is_interior_spider(diagram: ZXDiagram, vertex: int) -> bool:
    return diagram.vertex_type(
        vertex
    ) is VertexType.Z and diagram.is_interior(vertex)


def _all_hadamard(diagram: ZXDiagram, vertex: int) -> bool:
    return all(
        diagram.edge_type(vertex, n) is EdgeType.HADAMARD
        for n in diagram.neighbors(vertex)
    )


def lcomp_step(diagram: ZXDiagram, vertex: int) -> None:
    """Apply local complementation at ``vertex`` and delete it."""
    phase = diagram.phase(vertex)
    neighbors = list(diagram.neighbors(vertex))
    diagram.remove_vertex(vertex)
    for i in range(len(neighbors)):
        diagram.add_to_phase(neighbors[i], negate_phase(phase))
        for j in range(i + 1, len(neighbors)):
            diagram.toggle_hadamard_edge(neighbors[i], neighbors[j])


def _lcomp_applicable(diagram: ZXDiagram, vertex: int) -> bool:
    return (
        _is_interior_spider(diagram, vertex)
        and is_proper_clifford_phase(diagram.phase(vertex))
        and _all_hadamard(diagram, vertex)
        and all(
            diagram.vertex_type(n) is VertexType.Z
            for n in diagram.neighbors(vertex)
        )
    )


def lcomp_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Eliminate interior ±pi/2 spiders via local complementation."""
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        for vertex in list(diagram.vertices()):
            if vertex not in diagram._types:
                continue
            if _lcomp_applicable(diagram, vertex):
                lcomp_step(diagram, vertex)
                applied += 1
                again = True
    return applied


# ---------------------------------------------------------------------------
# pivoting
# ---------------------------------------------------------------------------
def pivot_step(diagram: ZXDiagram, u: int, v: int) -> None:
    """Pivot along the Hadamard edge ``(u, v)`` and delete both spiders."""
    phase_u = diagram.phase(u)
    phase_v = diagram.phase(v)
    neighbors_u = set(diagram.neighbors(u)) - {v}
    neighbors_v = set(diagram.neighbors(v)) - {u}
    common = neighbors_u & neighbors_v
    only_u = neighbors_u - common
    only_v = neighbors_v - common
    diagram.remove_vertex(u)
    diagram.remove_vertex(v)
    for a in only_u:
        for b in only_v:
            diagram.toggle_hadamard_edge(a, b)
    for a in only_u:
        for c in common:
            diagram.toggle_hadamard_edge(a, c)
    for b in only_v:
        for c in common:
            diagram.toggle_hadamard_edge(b, c)
    for a in only_u:
        diagram.add_to_phase(a, phase_v)
    for b in only_v:
        diagram.add_to_phase(b, phase_u)
    for c in common:
        diagram.add_to_phase(c, phase_u)
        diagram.add_to_phase(c, phase_v)
        diagram.add_to_phase(c, _ONE)


def _pivot_applicable(diagram: ZXDiagram, u: int, v: int) -> bool:
    return (
        _is_interior_spider(diagram, u)
        and _is_interior_spider(diagram, v)
        and is_pauli_phase(diagram.phase(u))
        and is_pauli_phase(diagram.phase(v))
        and diagram.edge_type(u, v) is EdgeType.HADAMARD
        and _all_hadamard(diagram, u)
        and _all_hadamard(diagram, v)
        and all(
            diagram.vertex_type(n) is VertexType.Z
            for n in diagram.neighbors(u) + diagram.neighbors(v)
        )
    )


def pivot_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Eliminate adjacent interior Pauli spider pairs via pivoting."""
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        for u, v, edge_type in list(diagram.edges()):
            if u not in diagram._types or v not in diagram._types:
                continue
            if not diagram.connected(u, v):
                continue  # edge toggled away by an earlier rewrite
            if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
                continue
            if _pivot_applicable(diagram, u, v):
                pivot_step(diagram, u, v)
                applied += 1
                again = True
    return applied


# ---------------------------------------------------------------------------
# pivot variants: gadgetization and boundary handling
# ---------------------------------------------------------------------------
def _gadgetize(diagram: ZXDiagram, vertex: int) -> None:
    """Move the phase of ``vertex`` onto a fresh phase gadget."""
    phase = diagram.phase(vertex)
    diagram.set_phase(vertex, _ZERO)
    axis = diagram.add_vertex(VertexType.Z)
    leaf = diagram.add_vertex(VertexType.Z, phase)
    diagram.connect(vertex, axis, EdgeType.HADAMARD)
    diagram.connect(axis, leaf, EdgeType.HADAMARD)


def _is_gadget_leaf(diagram: ZXDiagram, vertex: int) -> bool:
    """True for degree-1 spiders hanging off a gadget axis."""
    if diagram.degree(vertex) != 1:
        return False
    (axis,) = diagram.neighbors(vertex)
    return (
        diagram.vertex_type(vertex) is VertexType.Z
        and diagram.vertex_type(axis) is VertexType.Z
        and diagram.edge_type(vertex, axis) is EdgeType.HADAMARD
    )


def pivot_gadget_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Pivot interior Pauli spiders against non-Pauli partners.

    The non-Pauli partner's phase is first extracted into a phase gadget,
    making the partner a Pauli spider, after which a regular pivot removes
    the original pair.  This is what drives non-Clifford circuits towards
    the reduced gadget form of Kissinger & van de Wetering.
    """
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        for u, v, edge_type in list(diagram.edges()):
            if u not in diagram._types or v not in diagram._types:
                continue
            if not diagram.connected(u, v):
                continue  # edge toggled away by an earlier rewrite
            if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
                continue
            for a, b in ((u, v), (v, u)):
                if (
                    _is_interior_spider(diagram, a)
                    and is_pauli_phase(diagram.phase(a))
                    and _all_hadamard(diagram, a)
                    and _is_interior_spider(diagram, b)
                    and not is_pauli_phase(diagram.phase(b))
                    and _all_hadamard(diagram, b)
                    and not _is_gadget_leaf(diagram, a)
                    and not _is_gadget_leaf(diagram, b)
                    # Neither endpoint may belong to an existing gadget
                    # (be adjacent to a degree-1 leaf): re-gadgetizing
                    # gadget structure would cycle forever.
                    and not any(
                        diagram.degree(n) == 1 for n in diagram.neighbors(a)
                    )
                    and not any(
                        diagram.degree(n) == 1 for n in diagram.neighbors(b)
                    )
                    and all(
                        diagram.vertex_type(n) is VertexType.Z
                        for n in diagram.neighbors(a) + diagram.neighbors(b)
                    )
                ):
                    _gadgetize(diagram, b)
                    pivot_step(diagram, a, b)
                    applied += 1
                    again = True
                    break
    return applied


def pivot_boundary_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Pivot interior Pauli spiders against boundary-adjacent partners.

    The partner's boundary wires are first buffered with fresh spiders so
    it becomes interior; the net effect removes one interior Pauli spider
    per application without growing the spider count (one removed by the
    pivot for each one inserted).
    """
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        for u, v, edge_type in list(diagram.edges()):
            if u not in diagram._types or v not in diagram._types:
                continue
            if not diagram.connected(u, v):
                continue  # edge toggled away by an earlier rewrite
            if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
                continue
            for a, b in ((u, v), (v, u)):
                if not (
                    _is_interior_spider(diagram, a)
                    and is_pauli_phase(diagram.phase(a))
                    and _all_hadamard(diagram, a)
                    and diagram.vertex_type(b) is VertexType.Z
                    and is_pauli_phase(diagram.phase(b))
                    and not diagram.is_interior(b)
                ):
                    continue
                if not all(
                    diagram.vertex_type(n) is VertexType.Z
                    or diagram.is_boundary(n)
                    for n in diagram.neighbors(a) + diagram.neighbors(b)
                ):
                    continue
                if any(
                    diagram.is_boundary(n) for n in diagram.neighbors(a)
                ):
                    continue
                # Buffer every boundary wire of b with a fresh spider so b
                # becomes interior with all-Hadamard edges.
                for boundary in [
                    n for n in diagram.neighbors(b) if diagram.is_boundary(n)
                ]:
                    wire_type = diagram.edge_type(b, boundary)
                    buffer = diagram.add_vertex(VertexType.Z)
                    diagram.disconnect(b, boundary)
                    diagram.connect(b, buffer, EdgeType.HADAMARD)
                    diagram.connect(
                        buffer,
                        boundary,
                        EdgeType.SIMPLE
                        if wire_type is EdgeType.HADAMARD
                        else EdgeType.HADAMARD,
                    )
                pivot_step(diagram, a, b)
                applied += 1
                again = True
                break
    return applied


# ---------------------------------------------------------------------------
# phase-gadget fusion
# ---------------------------------------------------------------------------
def gadget_simp(diagram: ZXDiagram) -> int:
    """Fuse phase gadgets with identical support (reduced gadget form)."""
    applied = 0
    gadgets: Dict[FrozenSet[int], Tuple[int, int]] = {}
    for leaf in list(diagram.vertices()):
        if leaf not in diagram._types or not _is_gadget_leaf(diagram, leaf):
            continue
        (axis,) = diagram.neighbors(leaf)
        if not _all_hadamard(diagram, axis):
            continue
        if not is_pauli_phase(diagram.phase(axis)):
            continue
        support = frozenset(diagram.neighbors(axis)) - {leaf}
        if any(diagram.is_boundary(s) for s in support):
            continue
        # Normalize an axis phase of pi into the leaf (negating its phase).
        if normalize_phase(diagram.phase(axis)) == _ONE:
            diagram.set_phase(axis, _ZERO)
            diagram.set_phase(leaf, negate_phase(diagram.phase(leaf)))
        if support in gadgets:
            other_axis, other_leaf = gadgets[support]
            diagram.add_to_phase(other_leaf, diagram.phase(leaf))
            diagram.remove_vertex(leaf)
            diagram.remove_vertex(axis)
            applied += 1
        else:
            gadgets[support] = (axis, leaf)
    return applied


# ---------------------------------------------------------------------------
# pipelines
# ---------------------------------------------------------------------------
def interior_clifford_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Spider fusion + identity + pivoting + local complementation loop."""
    total = 0
    to_graph_like(diagram)
    while True:
        applied = id_simp(diagram, deadline)
        applied += pivot_simp(diagram, deadline)
        applied += lcomp_simp(diagram, deadline)
        total += applied
        if not applied:
            return total


def clifford_simp(diagram: ZXDiagram, deadline=None) -> int:
    """Interior Clifford simplification plus boundary pivots."""
    total = 0
    while True:
        applied = interior_clifford_simp(diagram, deadline)
        applied += pivot_boundary_simp(diagram, deadline)
        total += applied
        if not applied:
            return total


def full_reduce(diagram: ZXDiagram, max_rounds: int = 10_000, deadline=None) -> int:
    """The full simplification strategy (PyZX's ``full_reduce``).

    Returns the total number of rewrite applications.  Termination is
    guaranteed because every constituent strictly reduces a well-founded
    measure; ``max_rounds`` is a safety backstop only.
    """
    total = interior_clifford_simp(diagram, deadline)
    total += pivot_gadget_simp(diagram, deadline)
    for _ in range(max_rounds):
        applied = clifford_simp(diagram, deadline)
        applied += gadget_simp(diagram)
        applied += interior_clifford_simp(diagram, deadline)
        applied += pivot_gadget_simp(diagram, deadline)
        total += applied
        if not applied:
            break
    return total


# ---------------------------------------------------------------------------
# numerical single-qubit chain contraction (reproduction extension)
# ---------------------------------------------------------------------------
def contract_unitary_chains(diagram: ZXDiagram, tolerance: float = 1e-9) -> int:
    """Remove degree-2 spider chains that multiply out to a wire or an H.

    After ``full_reduce``, a pair of circuits whose single-qubit gates were
    *decomposed with different Euler conventions* can leave a chain of
    degree-2 Z spiders with float phases on one wire — algebraically the
    identity, but invisible to the symbolic graph rules (PyZX exhibits the
    same residue; the paper sidesteps it by compiling both circuits with
    the same toolchain).  This pass multiplies each maximal degree-2 chain
    out numerically: if the resulting 2x2 unitary is the identity (up to
    global phase and ``tolerance``) the chain is replaced by a bare wire;
    if it is the Hadamard, by a Hadamard wire.  Returns chains removed.
    """
    import cmath
    import math

    removed = 0
    changed = True
    while changed:
        changed = False
        for start in list(diagram.vertices()):
            if start not in diagram._types:
                continue
            if diagram.vertex_type(start) is not VertexType.Z:
                continue
            if diagram.degree(start) != 2:
                continue
            # walk left and right to the anchors
            chain = [start]
            ends = []
            for direction in (0, 1):
                previous = start
                current = diagram.neighbors(start)[direction]
                while (
                    current not in ends
                    and diagram.vertex_type(current) is VertexType.Z
                    and diagram.degree(current) == 2
                    and current != start
                ):
                    chain.append(current)
                    nxt = [
                        n for n in diagram.neighbors(current) if n != previous
                    ][0]
                    previous, current = current, nxt
                ends.append((previous, current))
            (left_prev, left_anchor), (right_prev, right_anchor) = ends
            if left_anchor == right_anchor or left_anchor in chain or right_anchor in chain:
                continue  # loop or degenerate
            if diagram.connected(left_anchor, right_anchor):
                continue  # would need parallel-edge resolution; skip
            # multiply the chain out, walking from left anchor to right
            matrix = [[1 + 0j, 0j], [0j, 1 + 0j]]

            def apply_h(m):
                s = 1 / math.sqrt(2.0)
                return [
                    [s * (m[0][0] + m[1][0]), s * (m[0][1] + m[1][1])],
                    [s * (m[0][0] - m[1][0]), s * (m[0][1] - m[1][1])],
                ]

            def apply_phase(m, phase):
                factor = cmath.exp(1j * math.pi * float(phase))
                return [m[0], [factor * m[1][0], factor * m[1][1]]]

            # order the chain from left anchor inwards
            ordered = []
            previous, current = left_anchor, left_prev
            # left_prev is the chain vertex adjacent to left_anchor
            while current != right_anchor:
                ordered.append((previous, current))
                nxt = [n for n in diagram.neighbors(current) if n != previous][0]
                previous, current = current, nxt
            ordered.append((previous, current))  # final edge into right anchor
            for edge_from, edge_to in ordered:
                if diagram.edge_type(edge_from, edge_to) is EdgeType.HADAMARD:
                    matrix = apply_h(matrix)
                if edge_to != right_anchor:
                    matrix = apply_phase(matrix, diagram.phase(edge_to))
            # classify: identity or Hadamard up to phase?
            def proportional(m, target):
                ref = None
                for r in (0, 1):
                    for c in (0, 1):
                        if abs(target[r][c]) > 0.5:
                            if ref is None:
                                ref = m[r][c] / target[r][c]
                            elif abs(m[r][c] / target[r][c] - ref) > tolerance:
                                return False
                        elif abs(m[r][c]) > tolerance:
                            return False
                # any non-zero proportionality constant qualifies: the ZX
                # engine does not track global scalars
                return ref is not None and abs(ref) > tolerance

            identity = [[1, 0], [0, 1]]
            hadamard = [[1, 1], [1, -1]]
            if proportional(matrix, identity):
                new_edge = EdgeType.SIMPLE
            elif proportional(matrix, hadamard):
                new_edge = EdgeType.HADAMARD
            else:
                continue
            for vertex in set(
                v for _, v in ordered if v != right_anchor
            ):
                diagram.remove_vertex(vertex)
            diagram.connect(left_anchor, right_anchor, new_edge)
            removed += 1
            changed = True
            break  # vertex list is stale; restart the scan
    return removed
