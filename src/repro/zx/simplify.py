"""Graph-like simplification of ZX-diagrams.

This module re-implements the simplification strategy of Duncan et al.
("Graph-theoretic simplification of quantum circuits with the ZX-calculus")
that PyZX's ``full_reduce`` uses and that the paper's case study relies on
(Section 5.1 / 6.1: "the ZX-diagrams of the circuits are combined [...],
transformed into a graph-like diagram and then simplified as much as
possible using the local complementation and pivoting rules").

A diagram is *graph-like* when every spider is a Z spider, spiders are only
connected by Hadamard edges, and there are no parallel edges or self-loops.
On graph-like diagrams the following rewrite families apply:

* ``id_simp`` — remove phase-0 degree-2 spiders,
* ``lcomp_simp`` — local complementation, eliminating interior spiders with
  phase ±pi/2,
* ``pivot_simp`` — pivoting, eliminating pairs of adjacent interior Pauli
  spiders,
* ``pivot_gadget_simp`` / ``pivot_boundary_simp`` — pivot variants that
  first gadgetize a non-Pauli partner or detach a boundary-adjacent one,
* ``gadget_simp`` — fusion of phase gadgets with identical support.

All rewrites hold up to a global scalar, which the equivalence-checking
use-case does not need (tensor tests compare up to proportionality).
The number of spiders never increases — the property the paper highlights
("because the number of spiders are non-increasing [...] the size of the
diagram does not blow up").

Two execution engines share the rule *steps* and *match predicates* defined
here:

* the **legacy rescan drivers** in this module (``id_simp`` & friends)
  rescan every vertex/edge after each application — O(rounds × |G|); they
  are kept as the A/B baseline behind ``full_reduce(..., incremental=False)``
  (CLI ``--legacy-zx-simp``), and

* the **incremental worklist engine** in :mod:`repro.zx.worklist`, the
  default, which re-examines only vertices whose neighborhood changed.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.zx.diagram import EdgeType, VertexType, ZXDiagram
from repro.zx.phase import SymbolicPhase, negate_phase

_ZERO = Fraction(0)
_HALF = Fraction(1, 2)
_ONE = Fraction(1)


def _stored_pauli(phase) -> bool:
    """:func:`repro.zx.phase.is_pauli_phase` for already-stored phases.

    The diagram normalizes every phase to ``[0, 2)`` on mutation (floats
    near dyadic fractions are snapped to exact :class:`Fraction`), so the
    Pauli test reduces to an integrality check — no re-normalization in
    the match loops.
    """
    return type(phase) is Fraction and phase.denominator == 1


def _stored_proper_clifford(phase) -> bool:
    """:func:`repro.zx.phase.is_proper_clifford_phase` for stored phases."""
    return type(phase) is Fraction and phase.denominator == 2


class SimplificationTimeout(Exception):
    """Raised when a simplification exceeds its wall-clock deadline."""


def _check_deadline(deadline) -> None:
    if deadline is not None and time.monotonic() > deadline:
        raise SimplificationTimeout()


# ---------------------------------------------------------------------------
# graph-like transformation
# ---------------------------------------------------------------------------
def _fuse(diagram: ZXDiagram, keep: int, merge: int) -> None:
    """Fuse spider ``merge`` into ``keep`` (both Z, simple-edge connected).

    Parallel-edge conflicts created by the fusion are resolved on the fly:
    a doubled simple edge between Z spiders is idempotent, a doubled
    Hadamard edge cancels (Hopf), and a simple/Hadamard pair is a simple
    edge plus a pi phase (the Hadamard edge becomes a self-loop once the
    simple edge is fused).
    """
    worklist = [merge]
    # repro: allow(deadline-prop): each pop discards or fuses a spider; bounded
    while worklist:
        merge = worklist.pop()
        if (
            merge not in diagram._types
            or not diagram.connected(keep, merge)
            or diagram.edge_type(keep, merge) is not EdgeType.SIMPLE
            or diagram.vertex_type(merge) is not VertexType.Z
        ):
            continue
        diagram.add_to_phase(keep, diagram.phase(merge))
        diagram.disconnect(keep, merge)
        for neighbor in list(diagram.neighbors(merge)):
            edge_type = diagram.edge_type(merge, neighbor)
            diagram.disconnect(merge, neighbor)
            if neighbor == keep:
                # Self-loop after fusion: simple loops vanish, H loops: pi.
                if edge_type is EdgeType.HADAMARD:
                    diagram.add_to_phase(keep, _ONE)
                continue
            if not diagram.connected(keep, neighbor):
                diagram.connect(keep, neighbor, edge_type)
            else:
                existing = diagram.edge_type(keep, neighbor)
                if existing is edge_type:
                    if edge_type is EdgeType.HADAMARD:
                        # Hopf: parallel H edges cancel.
                        diagram.disconnect(keep, neighbor)
                    # parallel simple edges between Z spiders: idempotent
                else:
                    # simple + Hadamard pair -> simple edge plus a pi phase
                    diagram.set_edge_type(keep, neighbor, EdgeType.SIMPLE)
                    diagram.add_to_phase(keep, _ONE)
            # Fusing may leave fresh simple Z-Z edges; queue them so the
            # graph-like invariant is restored before returning.
            if (
                diagram.connected(keep, neighbor)
                and diagram.edge_type(keep, neighbor) is EdgeType.SIMPLE
                and diagram.vertex_type(neighbor) is VertexType.Z
            ):
                worklist.append(neighbor)
        diagram.remove_vertex(merge)


def to_graph_like(diagram: ZXDiagram, deadline=None) -> ZXDiagram:
    """Transform in place to graph-like form; returns the diagram.

    X spiders are recolored to Z (toggling the type of every incident
    edge), then all simple edges between Z spiders are fused away.  The
    fusion sweep consults the cooperative ``deadline`` between passes.
    """
    # repro: allow(deadline-loop): single recolor pass over the vertex list
    for vertex in list(diagram.vertices()):
        if diagram.vertex_type(vertex) is VertexType.X:
            diagram.set_vertex_type(vertex, VertexType.Z)
            # set_edge_type only rewrites values, so the live view is safe
            # repro: allow(deadline-loop): bounded by the vertex degree
            for neighbor in diagram.neighbor_view(vertex):
                current = diagram.edge_type(vertex, neighbor)
                flipped = (
                    EdgeType.SIMPLE
                    if current is EdgeType.HADAMARD
                    else EdgeType.HADAMARD
                )
                diagram.set_edge_type(vertex, neighbor, flipped)
    changed = True
    while changed:
        changed = False
        _check_deadline(deadline)
        # repro: allow(deadline-loop): one sweep over a materialized edge list
        for u, v, edge_type in list(diagram.edges()):
            if edge_type is not EdgeType.SIMPLE:
                continue
            if u not in diagram._types or v not in diagram._types:
                continue  # removed by an earlier fusion this sweep
            if (
                diagram.connected(u, v)
                and diagram.edge_type(u, v) is EdgeType.SIMPLE
                and diagram.vertex_type(u) is VertexType.Z
                and diagram.vertex_type(v) is VertexType.Z
            ):
                _fuse(diagram, u, v)
                changed = True
    return diagram


# ---------------------------------------------------------------------------
# identity removal
# ---------------------------------------------------------------------------
def _id_applicable(diagram: ZXDiagram, vertex: int) -> bool:
    """Phase-0 Z spider of degree two (phases are stored normalized).

    The degree test goes first: on dense mid-simplification diagrams it
    rejects nearly every candidate with a single length check.
    """
    return (
        len(diagram._adjacency[vertex]) == 2
        and diagram._types[vertex] is VertexType.Z
        and diagram._phases[vertex] == 0
    )


def id_step(diagram: ZXDiagram, vertex: int) -> None:
    """Remove the phase-0 degree-2 spider ``vertex``, splicing its wires."""
    n1, n2 = diagram.neighbors(vertex)
    t1 = diagram.edge_type(vertex, n1)
    t2 = diagram.edge_type(vertex, n2)
    combined = EdgeType.SIMPLE if t1 is t2 else EdgeType.HADAMARD
    diagram.remove_vertex(vertex)
    if not diagram.connected(n1, n2):
        diagram.connect(n1, n2, combined)
    else:
        both_z = (
            diagram.vertex_type(n1) is VertexType.Z
            and diagram.vertex_type(n2) is VertexType.Z
        )
        if not both_z:
            raise ValueError(
                "parallel edge through a boundary — malformed diagram"
            )
        existing = diagram.edge_type(n1, n2)
        if existing is combined:
            if combined is EdgeType.HADAMARD:
                diagram.disconnect(n1, n2)  # Hopf
            # doubled simple edge between Z spiders: idempotent
        else:
            diagram.set_edge_type(n1, n2, EdgeType.SIMPLE)
            diagram.add_to_phase(n1, _ONE)
    # A surviving simple edge between two Z spiders must be fused to
    # keep the diagram graph-like.
    if (
        diagram.connected(n1, n2)
        and diagram.edge_type(n1, n2) is EdgeType.SIMPLE
        and diagram.vertex_type(n1) is VertexType.Z
        and diagram.vertex_type(n2) is VertexType.Z
    ):
        _fuse(diagram, n1, n2)


def id_simp(diagram: ZXDiagram, deadline=None, counters=None) -> int:
    """Remove phase-0 Z spiders of degree two; returns number removed.

    Legacy rescan driver (the incremental engine lives in
    :mod:`repro.zx.worklist`).
    """
    removed = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        # repro: allow(deadline-loop): deadline is consulted once per rescan round by the enclosing while; a per-vertex check would skew the legacy A/B baseline
        for vertex in list(diagram.vertices()):
            if vertex not in diagram._types:
                continue
            if not _id_applicable(diagram, vertex):
                continue
            id_step(diagram, vertex)
            removed += 1
            again = True
    if counters is not None and removed:
        counters.count("zx.id.matches", removed)
        counters.count("zx.id.rewrites", removed)
    return removed


# ---------------------------------------------------------------------------
# local complementation
# ---------------------------------------------------------------------------
def _all_hadamard(diagram: ZXDiagram, vertex: int) -> bool:
    edges = diagram._adjacency[vertex]
    return all(t is EdgeType.HADAMARD for t in edges.values())


def _hh_z_neighborhood(diagram: ZXDiagram, vertex: int) -> bool:
    """Every incident edge Hadamard and every neighbor a Z spider.

    Implies interior-ness (boundary vertices are not Z spiders).  A single
    pass over the adjacency replaces the separate interior / all-Hadamard
    / all-Z-neighbor scans the match predicates used to chain — this
    predicate dominates the match loops on dense mid-simplification
    diagrams.
    """
    types = diagram._types
    for neighbor, edge_type in diagram._adjacency[vertex].items():
        if (
            edge_type is not EdgeType.HADAMARD
            or types[neighbor] is not VertexType.Z
        ):
            return False
    return True


def _ungadgeted_hh_z_neighborhood(diagram: ZXDiagram, vertex: int) -> bool:
    """:func:`_hh_z_neighborhood` plus the pivot-gadget gadget guards.

    Rejects gadget leaves (degree-1 spiders — any degree-1 vertex passing
    the Hadamard/Z checks *is* a leaf) and spiders adjacent to one:
    re-gadgetizing existing gadget structure would cycle forever.
    """
    adjacency = diagram._adjacency
    types = diagram._types
    edges = adjacency[vertex]
    if len(edges) == 1:
        return False
    for neighbor, edge_type in edges.items():
        if (
            edge_type is not EdgeType.HADAMARD
            or types[neighbor] is not VertexType.Z
            or len(adjacency[neighbor]) == 1
        ):
            return False
    return True


def lcomp_step(diagram: ZXDiagram, vertex: int) -> None:
    """Apply local complementation at ``vertex`` and delete it."""
    phase = diagram.phase(vertex)
    neighbors = list(diagram.neighbors(vertex))
    diagram.remove_vertex(vertex)
    for i in range(len(neighbors)):
        diagram.add_to_phase(neighbors[i], negate_phase(phase))
        for j in range(i + 1, len(neighbors)):
            diagram.toggle_hadamard_edge(neighbors[i], neighbors[j])


def _lcomp_applicable(diagram: ZXDiagram, vertex: int) -> bool:
    return (
        diagram._types[vertex] is VertexType.Z
        and _stored_proper_clifford(diagram._phases[vertex])
        and _hh_z_neighborhood(diagram, vertex)
    )


def lcomp_simp(diagram: ZXDiagram, deadline=None, counters=None) -> int:
    """Eliminate interior ±pi/2 spiders via local complementation.

    Legacy rescan driver (the incremental engine lives in
    :mod:`repro.zx.worklist`).
    """
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        # repro: allow(deadline-loop): deadline is consulted once per rescan round by the enclosing while; a per-vertex check would skew the legacy A/B baseline
        for vertex in list(diagram.vertices()):
            if vertex not in diagram._types:
                continue
            if _lcomp_applicable(diagram, vertex):
                lcomp_step(diagram, vertex)
                applied += 1
                again = True
    if counters is not None and applied:
        counters.count("zx.lcomp.matches", applied)
        counters.count("zx.lcomp.rewrites", applied)
    return applied


# ---------------------------------------------------------------------------
# pivoting
# ---------------------------------------------------------------------------
def pivot_step(diagram: ZXDiagram, u: int, v: int) -> None:
    """Pivot along the Hadamard edge ``(u, v)`` and delete both spiders."""
    phase_u = diagram.phase(u)
    phase_v = diagram.phase(v)
    neighbors_u = set(diagram.neighbor_view(u)) - {v}
    neighbors_v = set(diagram.neighbor_view(v)) - {u}
    common = neighbors_u & neighbors_v
    only_u = neighbors_u - common
    only_v = neighbors_v - common
    diagram.remove_vertex(u)
    diagram.remove_vertex(v)
    for a in only_u:
        for b in only_v:
            diagram.toggle_hadamard_edge(a, b)
    for a in only_u:
        for c in common:
            diagram.toggle_hadamard_edge(a, c)
    for b in only_v:
        for c in common:
            diagram.toggle_hadamard_edge(b, c)
    for a in only_u:
        diagram.add_to_phase(a, phase_v)
    for b in only_v:
        diagram.add_to_phase(b, phase_u)
    for c in common:
        diagram.add_to_phase(c, phase_u)
        diagram.add_to_phase(c, phase_v)
        diagram.add_to_phase(c, _ONE)


def _pivot_endpoint_applicable(diagram: ZXDiagram, vertex: int) -> bool:
    """Interior Pauli Z spider with an all-Hadamard, all-Z neighborhood."""
    return (
        diagram._types[vertex] is VertexType.Z
        and _stored_pauli(diagram._phases[vertex])
        and _hh_z_neighborhood(diagram, vertex)
    )


def _pivot_applicable(diagram: ZXDiagram, u: int, v: int) -> bool:
    return (
        diagram._adjacency[u].get(v) is EdgeType.HADAMARD
        and _pivot_endpoint_applicable(diagram, u)
        and _pivot_endpoint_applicable(diagram, v)
    )


def pivot_simp(diagram: ZXDiagram, deadline=None, counters=None) -> int:
    """Eliminate adjacent interior Pauli spider pairs via pivoting.

    Legacy rescan driver (the incremental engine lives in
    :mod:`repro.zx.worklist`).
    """
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        # repro: allow(deadline-loop): deadline is consulted once per rescan round by the enclosing while; a per-edge check would skew the legacy A/B baseline
        for u, v, edge_type in list(diagram.edges()):
            if u not in diagram._types or v not in diagram._types:
                continue
            if not diagram.connected(u, v):
                continue  # edge toggled away by an earlier rewrite
            if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
                continue
            if _pivot_applicable(diagram, u, v):
                pivot_step(diagram, u, v)
                applied += 1
                again = True
    if counters is not None and applied:
        counters.count("zx.pivot.matches", applied)
        counters.count("zx.pivot.rewrites", applied)
    return applied


# ---------------------------------------------------------------------------
# pivot variants: gadgetization and boundary handling
# ---------------------------------------------------------------------------
def _gadgetize(diagram: ZXDiagram, vertex: int) -> None:
    """Move the phase of ``vertex`` onto a fresh phase gadget."""
    phase = diagram.phase(vertex)
    diagram.set_phase(vertex, _ZERO)
    axis = diagram.add_vertex(VertexType.Z)
    leaf = diagram.add_vertex(VertexType.Z, phase)
    diagram.connect(vertex, axis, EdgeType.HADAMARD)
    diagram.connect(axis, leaf, EdgeType.HADAMARD)


def _is_gadget_leaf(diagram: ZXDiagram, vertex: int) -> bool:
    """True for degree-1 spiders hanging off a gadget axis."""
    if diagram.degree(vertex) != 1:
        return False
    (axis,) = diagram.neighbor_view(vertex)
    return (
        diagram.vertex_type(vertex) is VertexType.Z
        and diagram.vertex_type(axis) is VertexType.Z
        and diagram.edge_type(vertex, axis) is EdgeType.HADAMARD
    )


def _pivot_gadget_anchor_applicable(diagram: ZXDiagram, a: int) -> bool:
    """Anchor side of pivot-gadget: interior, ungadgeted Pauli spider."""
    return (
        diagram._types[a] is VertexType.Z
        and _stored_pauli(diagram._phases[a])
        and _ungadgeted_hh_z_neighborhood(diagram, a)
    )


def _pivot_gadget_partner_applicable(diagram: ZXDiagram, b: int) -> bool:
    """Partner side of pivot-gadget: interior, ungadgeted non-Pauli spider."""
    return (
        diagram._types[b] is VertexType.Z
        and not _stored_pauli(diagram._phases[b])
        and _ungadgeted_hh_z_neighborhood(diagram, b)
    )


def _pivot_gadget_applicable(diagram: ZXDiagram, a: int, b: int) -> bool:
    """Interior Pauli spider ``a`` against interior non-Pauli partner ``b``.

    Neither endpoint may belong to an existing gadget (be, or be adjacent
    to, a degree-1 leaf): re-gadgetizing gadget structure would cycle
    forever.  The partner's phase screen goes first — during the
    Clifford-dominated rounds most partners are Pauli, so most calls exit
    after two dictionary loads.
    """
    return _pivot_gadget_partner_applicable(
        diagram, b
    ) and _pivot_gadget_anchor_applicable(diagram, a)


def pivot_gadget_step(diagram: ZXDiagram, a: int, b: int) -> None:
    """Gadgetize the non-Pauli partner ``b``, then pivot along ``(a, b)``."""
    _gadgetize(diagram, b)
    pivot_step(diagram, a, b)


def pivot_gadget_simp(diagram: ZXDiagram, deadline=None, counters=None) -> int:
    """Pivot interior Pauli spiders against non-Pauli partners.

    The non-Pauli partner's phase is first extracted into a phase gadget,
    making the partner a Pauli spider, after which a regular pivot removes
    the original pair.  This is what drives non-Clifford circuits towards
    the reduced gadget form of Kissinger & van de Wetering.

    Legacy rescan driver (the incremental engine lives in
    :mod:`repro.zx.worklist`).
    """
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        # repro: allow(deadline-loop): deadline is consulted once per rescan round by the enclosing while; a per-edge check would skew the legacy A/B baseline
        for u, v, edge_type in list(diagram.edges()):
            if u not in diagram._types or v not in diagram._types:
                continue
            if not diagram.connected(u, v):
                continue  # edge toggled away by an earlier rewrite
            if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
                continue
            # repro: allow(deadline-loop): bounded two-iteration orientation loop
            for a, b in ((u, v), (v, u)):
                if _pivot_gadget_applicable(diagram, a, b):
                    pivot_gadget_step(diagram, a, b)
                    applied += 1
                    again = True
                    break
    if counters is not None and applied:
        counters.count("zx.pivot_gadget.matches", applied)
        counters.count("zx.pivot_gadget.rewrites", applied)
    return applied


def _pivot_boundary_partner_applicable(diagram: ZXDiagram, b: int) -> bool:
    """Partner side of pivot-boundary: a boundary-adjacent Pauli spider
    whose remaining neighbors are all Z spiders."""
    if not (
        diagram._types[b] is VertexType.Z
        and _stored_pauli(diagram._phases[b])
    ):
        return False
    types = diagram._types
    boundary_adjacent = False
    for neighbor in diagram._adjacency[b]:
        neighbor_type = types[neighbor]
        if neighbor_type is VertexType.BOUNDARY:
            boundary_adjacent = True
        elif neighbor_type is not VertexType.Z:
            return False
    return boundary_adjacent


def _pivot_boundary_applicable(diagram: ZXDiagram, a: int, b: int) -> bool:
    """Interior Pauli spider ``a`` against boundary-adjacent partner ``b``."""
    return _pivot_boundary_partner_applicable(
        diagram, b
    ) and _pivot_endpoint_applicable(diagram, a)


def pivot_boundary_step(diagram: ZXDiagram, a: int, b: int) -> None:
    """Buffer ``b``'s boundary wires with fresh spiders, then pivot.

    The buffering makes ``b`` interior with all-Hadamard edges, so the
    regular pivot applies.
    """
    for boundary in [
        n for n in diagram.neighbors(b) if diagram.is_boundary(n)
    ]:
        wire_type = diagram.edge_type(b, boundary)
        buffer = diagram.add_vertex(VertexType.Z)
        diagram.disconnect(b, boundary)
        diagram.connect(b, buffer, EdgeType.HADAMARD)
        diagram.connect(
            buffer,
            boundary,
            EdgeType.SIMPLE
            if wire_type is EdgeType.HADAMARD
            else EdgeType.HADAMARD,
        )
    pivot_step(diagram, a, b)


def pivot_boundary_simp(diagram: ZXDiagram, deadline=None, counters=None) -> int:
    """Pivot interior Pauli spiders against boundary-adjacent partners.

    The partner's boundary wires are first buffered with fresh spiders so
    it becomes interior; the net effect removes one interior Pauli spider
    per application without growing the spider count (one removed by the
    pivot for each one inserted).

    Legacy rescan driver (the incremental engine lives in
    :mod:`repro.zx.worklist`).
    """
    applied = 0
    again = True
    while again:
        _check_deadline(deadline)
        again = False
        # repro: allow(deadline-loop): deadline is consulted once per rescan round by the enclosing while; a per-edge check would skew the legacy A/B baseline
        for u, v, edge_type in list(diagram.edges()):
            if u not in diagram._types or v not in diagram._types:
                continue
            if not diagram.connected(u, v):
                continue  # edge toggled away by an earlier rewrite
            if diagram.edge_type(u, v) is not EdgeType.HADAMARD:
                continue
            # repro: allow(deadline-loop): bounded two-iteration orientation loop
            for a, b in ((u, v), (v, u)):
                if _pivot_boundary_applicable(diagram, a, b):
                    pivot_boundary_step(diagram, a, b)
                    applied += 1
                    again = True
                    break
    if counters is not None and applied:
        counters.count("zx.pivot_boundary.matches", applied)
        counters.count("zx.pivot_boundary.rewrites", applied)
    return applied


# ---------------------------------------------------------------------------
# phase-gadget fusion
# ---------------------------------------------------------------------------
def _gadget_shape(
    diagram: ZXDiagram, leaf: int
) -> Optional[Tuple[int, FrozenSet[int]]]:
    """``(axis, support)`` if ``leaf`` hangs off a fusable phase gadget.

    As a side effect, an axis phase of pi is normalized into the leaf
    (negating its phase) so that equal-support gadgets always fuse by
    adding leaf phases.
    """
    if not _is_gadget_leaf(diagram, leaf):
        return None
    (axis,) = diagram.neighbor_view(leaf)
    if not _all_hadamard(diagram, axis):
        return None
    if not _stored_pauli(diagram.phase(axis)):
        return None
    support = frozenset(diagram.neighbor_view(axis)) - {leaf}
    if any(diagram.is_boundary(s) for s in support):
        return None
    if diagram.phase(axis) == _ONE:
        diagram.set_phase(axis, _ZERO)
        diagram.set_phase(leaf, negate_phase(diagram.phase(leaf)))
    return axis, support


def gadget_fuse_step(
    diagram: ZXDiagram, keep_leaf: int, merge_axis: int, merge_leaf: int
) -> None:
    """Fuse gadget ``(merge_axis, merge_leaf)`` into the one at ``keep_leaf``."""
    diagram.add_to_phase(keep_leaf, diagram.phase(merge_leaf))
    diagram.remove_vertex(merge_leaf)
    diagram.remove_vertex(merge_axis)


def gadget_simp(diagram: ZXDiagram, deadline=None, counters=None) -> int:
    """Fuse phase gadgets with identical support (reduced gadget form).

    Legacy rescan driver (the incremental engine lives in
    :mod:`repro.zx.worklist`).
    """
    applied = 0
    gadgets: Dict[FrozenSet[int], Tuple[int, int]] = {}
    for leaf in list(diagram.vertices()):
        _check_deadline(deadline)
        if leaf not in diagram._types:
            continue
        shape = _gadget_shape(diagram, leaf)
        if shape is None:
            continue
        axis, support = shape
        if support in gadgets:
            other_axis, other_leaf = gadgets[support]
            gadget_fuse_step(diagram, other_leaf, axis, leaf)
            applied += 1
        else:
            gadgets[support] = (axis, leaf)
    if counters is not None and applied:
        counters.count("zx.gadget.matches", applied)
        counters.count("zx.gadget.rewrites", applied)
    return applied


# ---------------------------------------------------------------------------
# pipelines
# ---------------------------------------------------------------------------
def interior_clifford_simp(
    diagram: ZXDiagram, deadline=None, incremental: bool = True, counters=None
) -> int:
    """Spider fusion + identity + pivoting + local complementation loop."""
    if incremental:
        from repro.zx.worklist import interior_clifford_simp_incremental

        return interior_clifford_simp_incremental(
            diagram, deadline=deadline, counters=counters
        )
    total = 0
    to_graph_like(diagram, deadline=deadline)
    while True:
        applied = id_simp(diagram, deadline, counters)
        applied += pivot_simp(diagram, deadline, counters)
        applied += lcomp_simp(diagram, deadline, counters)
        total += applied
        if not applied:
            return total


def clifford_simp(
    diagram: ZXDiagram, deadline=None, incremental: bool = True, counters=None
) -> int:
    """Interior Clifford simplification plus boundary pivots."""
    if incremental:
        from repro.zx.worklist import clifford_simp_incremental

        return clifford_simp_incremental(
            diagram, deadline=deadline, counters=counters
        )
    total = 0
    while True:
        applied = interior_clifford_simp(
            diagram, deadline, incremental=False, counters=counters
        )
        applied += pivot_boundary_simp(diagram, deadline, counters)
        total += applied
        if not applied:
            return total


def full_reduce(
    diagram: ZXDiagram,
    max_rounds: int = 10_000,
    deadline=None,
    incremental: bool = True,
    counters=None,
) -> int:
    """The full simplification strategy (PyZX's ``full_reduce``).

    Returns the total number of rewrite applications.  Termination is
    guaranteed because every constituent strictly reduces a well-founded
    measure; ``max_rounds`` is a safety backstop only.

    ``incremental`` selects the worklist engine of
    :mod:`repro.zx.worklist` (the default); ``False`` runs the legacy
    rescan-to-fixpoint drivers in this module (CLI ``--legacy-zx-simp``).
    ``counters``, when given, is a :class:`repro.perf.PerfCounters`-style
    object that receives per-rule ``zx.<rule>.matches`` /
    ``zx.<rule>.rewrites`` counts plus ``zx.rounds``.
    """
    # An expired deadline must fire even when the diagram offers no
    # matches (the per-rule checks only run inside match loops).
    _check_deadline(deadline)
    if incremental:
        from repro.zx.worklist import full_reduce_incremental

        return full_reduce_incremental(
            diagram, max_rounds=max_rounds, deadline=deadline,
            counters=counters,
        )
    total = interior_clifford_simp(
        diagram, deadline, incremental=False, counters=counters
    )
    total += pivot_gadget_simp(diagram, deadline, counters)
    rounds = 0
    for _ in range(max_rounds):
        rounds += 1
        applied = clifford_simp(
            diagram, deadline, incremental=False, counters=counters
        )
        applied += gadget_simp(diagram, deadline, counters)
        applied += interior_clifford_simp(
            diagram, deadline, incremental=False, counters=counters
        )
        applied += pivot_gadget_simp(diagram, deadline, counters)
        total += applied
        if not applied:
            break
    if counters is not None:
        counters.count("zx.rounds", rounds)
    return total


# ---------------------------------------------------------------------------
# numerical single-qubit chain contraction (reproduction extension)
# ---------------------------------------------------------------------------
def contract_unitary_chains(
    diagram: ZXDiagram, tolerance: float = 1e-9, deadline=None
) -> int:
    """Remove degree-2 spider chains that multiply out to a wire or an H.

    After ``full_reduce``, a pair of circuits whose single-qubit gates were
    *decomposed with different Euler conventions* can leave a chain of
    degree-2 Z spiders with float phases on one wire — algebraically the
    identity, but invisible to the symbolic graph rules (PyZX exhibits the
    same residue; the paper sidesteps it by compiling both circuits with
    the same toolchain).  This pass multiplies each maximal degree-2 chain
    out numerically: if the resulting 2x2 unitary is the identity (up to
    global phase and ``tolerance``) the chain is replaced by a bare wire;
    if it is the Hadamard, by a Hadamard wire.  Returns chains removed.
    """
    import cmath
    import math

    removed = 0
    changed = True
    while changed:
        changed = False
        for start in list(diagram.vertices()):
            _check_deadline(deadline)
            if start not in diagram._types:
                continue
            if diagram.vertex_type(start) is not VertexType.Z:
                continue
            if diagram.degree(start) != 2:
                continue
            # walk left and right to the anchors
            chain = [start]
            ends = []
            # repro: allow(deadline-loop): exactly two directions
            for direction in (0, 1):
                previous = start
                current = diagram.neighbors(start)[direction]
                # repro: allow(deadline-loop): bounded walk along a degree-2 chain
                while (
                    current not in ends
                    and diagram.vertex_type(current) is VertexType.Z
                    and diagram.degree(current) == 2
                    and current != start
                ):
                    chain.append(current)
                    nxt = [
                        n for n in diagram.neighbors(current) if n != previous
                    ][0]
                    previous, current = current, nxt
                ends.append((previous, current))
            (left_prev, left_anchor), (right_prev, right_anchor) = ends
            if left_anchor == right_anchor or left_anchor in chain or right_anchor in chain:
                continue  # loop or degenerate
            if any(
                isinstance(diagram.phase(v), SymbolicPhase) for v in chain
            ):
                continue  # symbolic phases cannot be multiplied out

            if diagram.connected(left_anchor, right_anchor):
                continue  # would need parallel-edge resolution; skip
            # multiply the chain out, walking from left anchor to right
            matrix = [[1 + 0j, 0j], [0j, 1 + 0j]]

            def apply_h(m):
                s = 1 / math.sqrt(2.0)
                return [
                    [s * (m[0][0] + m[1][0]), s * (m[0][1] + m[1][1])],
                    [s * (m[0][0] - m[1][0]), s * (m[0][1] - m[1][1])],
                ]

            def apply_phase(m, phase):
                factor = cmath.exp(1j * math.pi * float(phase))
                return [m[0], [factor * m[1][0], factor * m[1][1]]]

            # order the chain from left anchor inwards
            ordered = []
            previous, current = left_anchor, left_prev
            # left_prev is the chain vertex adjacent to left_anchor
            # repro: allow(deadline-loop): re-walks the chain found above
            while current != right_anchor:
                ordered.append((previous, current))
                nxt = [n for n in diagram.neighbors(current) if n != previous][0]
                previous, current = current, nxt
            ordered.append((previous, current))  # final edge into right anchor
            # repro: allow(deadline-loop): bounded by the chain just walked
            for edge_from, edge_to in ordered:
                if diagram.edge_type(edge_from, edge_to) is EdgeType.HADAMARD:
                    matrix = apply_h(matrix)
                if edge_to != right_anchor:
                    matrix = apply_phase(matrix, diagram.phase(edge_to))
            # classify: identity or Hadamard up to phase?
            def proportional(m, target):
                ref = None
                for r in (0, 1):
                    for c in (0, 1):
                        if abs(target[r][c]) > 0.5:
                            if ref is None:
                                ref = m[r][c] / target[r][c]
                            elif abs(m[r][c] / target[r][c] - ref) > tolerance:
                                return False
                        elif abs(m[r][c]) > tolerance:
                            return False
                # any non-zero proportionality constant qualifies: the ZX
                # engine does not track global scalars
                return ref is not None and abs(ref) > tolerance

            identity = [[1, 0], [0, 1]]
            hadamard = [[1, 1], [1, -1]]
            if proportional(matrix, identity):
                new_edge = EdgeType.SIMPLE
            elif proportional(matrix, hadamard):
                new_edge = EdgeType.HADAMARD
            else:
                continue
            # repro: allow(deadline-loop): bounded by the chain just walked
            for vertex in set(
                v for _, v in ordered if v != right_anchor
            ):
                diagram.remove_vertex(vertex)
            diagram.connect(left_anchor, right_anchor, new_edge)
            removed += 1
            changed = True
            break  # vertex list is stale; restart the scan
    return removed
