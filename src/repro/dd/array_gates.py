"""Batched gate application over stimulus columns.

The gate *builders* in :mod:`repro.dd.gates` are engine-polymorphic: they
only touch the package method surface (``layered_kron``, ``identity``,
``add``, ``make_matrix_node``, the ``apply_gate_*`` kernels), which the
array engine (:mod:`repro.dd.array_package`) implements over packed
integer edges.  What the array engine adds on top is *batching*: the
simulation checker propagates all ``num_simulations`` random stimuli as a
matrix of column states and applies each gate to every column in one
pass.

Batching amortizes the per-gate fixed costs across the batch width — the
gate-DD cache fetch happens once per gate instead of once per (gate,
stimulus), and because all columns live in one package, compute-table
entries populated by the first column are hits for every later column
that shares sub-structure with it (classical stimuli share almost
everything below the flipped qubits).

Semantics note: a batched pass always simulates every stimulus to
completion before fidelities are compared, so there is no per-stimulus
early exit mid-circuit; the verdict is unchanged (see
``Configuration.array_dd``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.dd.gates import compact_operation_dd, operation_dd


def apply_operation_columns(
    pkg,
    columns: Sequence[int],
    op: Operation,
    num_qubits: int,
    direct: bool = True,
) -> List[int]:
    """Apply one operation to every column state; returns the new columns.

    The gate diagram is built (or fetched from the per-package gate
    cache) exactly once for the whole batch.  Works with either engine —
    ``columns`` are whatever edge type ``pkg`` produces.
    """
    if direct:
        gate = compact_operation_dd(pkg, op)
        apply = pkg.apply_gate_vector
    else:
        gate = operation_dd(pkg, op, num_qubits)
        apply = pkg.multiply_matrix_vector
    return [apply(gate, column) for column in columns]


def simulate_circuit_columns(
    pkg,
    circuit: QuantumCircuit,
    columns: Sequence[int],
    direct: bool = True,
    deadline_check=None,
) -> List[int]:
    """Run a circuit over all columns, one batched pass per gate.

    ``deadline_check`` (optional nullary callable) is invoked once per
    gate so cooperative timeouts keep their per-gate granularity.
    """
    current = list(columns)
    for op in circuit:
        if deadline_check is not None:
            deadline_check()
        current = apply_operation_columns(
            pkg, current, op, circuit.num_qubits, direct=direct
        )
    return current
