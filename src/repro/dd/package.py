"""The decision-diagram package: unique tables, compute tables, algebra.

This is the algorithmic core of the DD-based equivalence checking paradigm
(Section 4 of the paper).  All diagrams handled by one :class:`DDPackage`
share its complex table, unique tables and compute tables; nodes are
canonical, i.e. two (sub-)diagrams represent the same function *iff* they
are the same Python object (up to the merging tolerance of the complex
table).

Levels are never skipped: an ``n``-qubit diagram always contains a node on
every path for every level, which keeps the algebra simple and matches the
explicit-level representation of the QMDD literature.

Two implementation choices matter for speed (see
``docs/architecture.md``, "Performance architecture"):

* Operation results are memoized in fixed-size, slot-indexed
  :class:`~repro.dd.compute_table.ComputeTable` instances (hash → one
  slot, overwrite on collision) instead of unbounded dicts that were
  cleared wholesale — long alternating runs never lose their entire
  memoization mid-recursion.  Cache keys are tuples of integers: node
  ``id()``s plus interned complex-weight ids from the complex table.
* The ``apply_gate_*`` kernels multiply a *compact* gate diagram (built
  only up to the highest qubit the gate touches) into a full-height
  diagram by passing identity levels through structurally, so per-gate
  cost is proportional to the diagram *below* the gate's top qubit rather
  than the full register height.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE
from repro.dd.compute_table import ComputeTable, DEFAULT_COMPUTE_TABLE_SIZE
from repro.dd.node import MEdge, MNode, TERMINAL, VEdge, VNode


class DDPackage:
    """Factory and algebra for canonical vector / matrix decision diagrams.

    Args:
        tolerance: Merging tolerance of the complex table.
        compute_table_size: Slots per compute table (rounded up to a power
            of two), or ``None`` for unbounded dict-backed tables (the
            seed behaviour, kept for ablation benchmarks).
        complex_table: An existing :class:`ComplexTable` to share instead
            of creating a fresh one.  The engine-agreement tests build an
            object package and an :class:`~repro.dd.array_package.\
ArrayDDPackage` over one shared table so that canonical weights — and
            hence root signatures — are bit-comparable across engines.
    """

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        compute_table_size: Optional[int] = DEFAULT_COMPUTE_TABLE_SIZE,
        complex_table: Optional[ComplexTable] = None,
    ) -> None:
        self.complex_table = (
            complex_table if complex_table is not None
            else ComplexTable(tolerance)
        )
        self._vector_unique: Dict[Tuple[int, Tuple[Tuple[int, complex], ...]], VNode] = {}
        self._matrix_unique: Dict[Tuple[int, Tuple[Tuple[int, complex], ...]], MNode] = {}
        self.matrix_nodes_created = 0
        self.vector_nodes_created = 0
        self._tables: Dict[str, ComputeTable] = {}

        def table(name: str) -> ComputeTable:
            t = ComputeTable(name, compute_table_size)
            self._tables[name] = t
            return t

        self._add_cache = table("add")
        self._add_vec_cache = table("add_vec")
        self._mul_cache = table("mul")
        self._mul_vec_cache = table("mul_vec")
        self._conj_cache = table("conj")
        self._trace_cache = table("trace")
        self._inner_cache = table("inner")
        self._apply_left_cache = table("apply_left")
        self._apply_right_cache = table("apply_right")
        self._apply_vec_cache = table("apply_vec")
        self._identity_cache: Dict[int, MEdge] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def tolerance(self) -> float:
        return self.complex_table.tolerance

    def clear_compute_tables(self) -> None:
        """Drop all memoized operation results (unique tables survive)."""
        for cache in self._tables.values():
            cache.clear()

    def num_unique_matrix_nodes(self) -> int:
        """Total matrix nodes ever created by this package."""
        return len(self._matrix_unique)

    def num_unique_vector_nodes(self) -> int:
        """Total vector nodes ever created by this package."""
        return len(self._vector_unique)

    def compute_table_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction counters for every compute table."""
        return {name: t.stats() for name, t in sorted(self._tables.items())}

    # Engine-uniform edge accessors: the checkers treat edges opaquely and
    # go through these, so the same checker code drives this object engine
    # and the array engine (whose edges are packed integers).
    @staticmethod
    def edge_node(edge) -> object:
        """An engine-specific node token usable for identity comparison."""
        return edge.node

    @staticmethod
    def edge_weight(edge) -> complex:
        """The complex weight carried by an edge."""
        return edge.weight

    @staticmethod
    def matrix_dd_size(edge: MEdge) -> int:
        """Distinct non-terminal nodes reachable from a matrix edge."""
        from repro.dd.export import matrix_dd_size

        return matrix_dd_size(edge)

    @staticmethod
    def vector_dd_size(edge: VEdge) -> int:
        """Distinct non-terminal nodes reachable from a vector edge."""
        from repro.dd.export import vector_dd_size

        return vector_dd_size(edge)

    # ------------------------------------------------------------------
    # construction with normalization
    # ------------------------------------------------------------------
    def lookup(self, value: complex) -> complex:
        """Intern a complex number in the package's complex table."""
        return self.complex_table.lookup(value)

    def _normalize(self, weights: List[complex]) -> Tuple[List[complex], complex]:
        """Normalize edge weights, returning (normalized, common factor).

        The edge with the largest magnitude (lowest index on exact ties)
        is scaled to exactly 1; its original weight becomes the common
        factor pulled out of the node.
        """
        max_index = 0
        max_mag = -1.0
        for index, weight in enumerate(weights):
            mag = abs(weight)
            if mag > max_mag:
                max_mag = mag
                max_index = index
        norm = weights[max_index]
        if norm == 0:
            return [0j] * len(weights), 0j
        normalized = []
        for index, weight in enumerate(weights):
            if index == max_index:
                normalized.append(1 + 0j)
            elif weight == 0:
                normalized.append(0j)
            else:
                normalized.append(self.lookup(weight / norm))
        return normalized, self.lookup(norm)

    def make_vector_node(self, level: int, edges: Tuple[VEdge, VEdge]) -> VEdge:
        """Create (or reuse) a normalized vector node; returns its edge."""
        weights, factor = self._normalize([e.weight for e in edges])
        if factor == 0:
            return self.zero_vector_edge()
        children = tuple(
            VEdge(TERMINAL, 0j) if w == 0 else VEdge(e.node, w)
            for e, w in zip(edges, weights)
        )
        key = (level, tuple((id(c.node), c.weight) for c in children))
        node = self._vector_unique.get(key)
        if node is None:
            self.vector_nodes_created += 1
            node = VNode(level, children, serial=self.vector_nodes_created)
            self._vector_unique[key] = node
        return VEdge(node, factor)

    def make_matrix_node(
        self, level: int, edges: Tuple[MEdge, MEdge, MEdge, MEdge]
    ) -> MEdge:
        """Create (or reuse) a normalized matrix node; returns its edge."""
        weights, factor = self._normalize([e.weight for e in edges])
        if factor == 0:
            return self.zero_matrix_edge()
        children = tuple(
            MEdge(TERMINAL, 0j) if w == 0 else MEdge(e.node, w)
            for e, w in zip(edges, weights)
        )
        key = (level, tuple((id(c.node), c.weight) for c in children))
        node = self._matrix_unique.get(key)
        if node is None:
            self.matrix_nodes_created += 1
            node = MNode(level, children, serial=self.matrix_nodes_created)
            self._matrix_unique[key] = node
        return MEdge(node, factor)

    # ------------------------------------------------------------------
    # elementary diagrams
    # ------------------------------------------------------------------
    @staticmethod
    def zero_vector_edge() -> VEdge:
        """The zero vector (an edge of weight 0)."""
        return VEdge(TERMINAL, 0j)

    @staticmethod
    def zero_matrix_edge() -> MEdge:
        """The zero matrix (an edge of weight 0)."""
        return MEdge(TERMINAL, 0j)

    @staticmethod
    def terminal_vector_edge(weight: complex = 1 + 0j) -> VEdge:
        return VEdge(TERMINAL, weight)

    @staticmethod
    def terminal_matrix_edge(weight: complex = 1 + 0j) -> MEdge:
        return MEdge(TERMINAL, weight)

    def basis_state(self, num_qubits: int, bits: int = 0) -> VEdge:
        """The computational basis state ``|bits>`` on ``num_qubits``."""
        edge = self.terminal_vector_edge()
        for level in range(num_qubits):
            zero = self.zero_vector_edge()
            if (bits >> level) & 1:
                edge = self.make_vector_node(level, (zero, edge))
            else:
                edge = self.make_vector_node(level, (edge, zero))
        return edge

    def identity(self, num_qubits: int) -> MEdge:
        """The identity matrix DD — linear in ``num_qubits`` (paper Fig. 3b)."""
        cached = self._identity_cache.get(num_qubits)
        if cached is not None:
            return cached
        edge = self.terminal_matrix_edge()
        for level in range(num_qubits):
            zero = self.zero_matrix_edge()
            edge = self.make_matrix_node(level, (edge, zero, zero, edge))
        self._identity_cache[num_qubits] = edge
        return edge

    def layered_kron(
        self, num_qubits: int, factors: Dict[int, "np.ndarray"]
    ) -> MEdge:
        """Build ``F_{n-1} ⊗ ... ⊗ F_1 ⊗ F_0`` with identity defaults.

        ``factors`` maps qubit index to a 2x2 complex matrix; unspecified
        qubits contribute the identity.  This is the workhorse used by the
        gate constructors in :mod:`repro.dd.gates`.
        """
        edge = self.terminal_matrix_edge()
        for level in range(num_qubits):
            factor = factors.get(level)
            if factor is None:
                zero = self.zero_matrix_edge()
                edge = self.make_matrix_node(level, (edge, zero, zero, edge))
            else:
                children = []
                for i in (0, 1):
                    for j in (0, 1):
                        value = complex(factor[i][j])
                        if value == 0 or edge.is_zero:
                            children.append(self.zero_matrix_edge())
                        else:
                            children.append(
                                MEdge(edge.node, self.lookup(value * edge.weight))
                            )
                edge = self.make_matrix_node(level, tuple(children))
        return edge

    # ------------------------------------------------------------------
    # addition
    # ------------------------------------------------------------------
    def add(self, a: MEdge, b: MEdge) -> MEdge:
        """Matrix addition ``A + B``."""
        if a.is_zero:
            return b
        if b.is_zero:
            return a
        if a.node is TERMINAL and b.node is TERMINAL:
            return MEdge(TERMINAL, self.lookup(a.weight + b.weight))
        # Canonical operand order for the cache.  Ordered by creation
        # serial, not ``id()``: the ratio below rounds differently under a
        # swap, and the serial matches the array engine's handle order, so
        # both engines perform bit-identical float operations.
        if a.node.serial > b.node.serial:
            a, b = b, a
        ratio = self.lookup(b.weight / a.weight)
        key = (id(a.node), id(b.node), self.complex_table.id_of(ratio))
        cached = self._add_cache.get(key)
        if cached is not None:
            return MEdge(cached.node, self.lookup(cached.weight * a.weight))
        node_a, node_b = a.node, b.node
        if node_a.level != node_b.level:
            raise ValueError("cannot add diagrams of different height")
        children = tuple(
            self.add(
                MEdge(ea.node, ea.weight),
                MEdge(eb.node, self.lookup(eb.weight * ratio)),
            )
            for ea, eb in zip(node_a.edges, node_b.edges)
        )
        result = self.make_matrix_node(node_a.level, children)
        self._add_cache.put(key, result)
        return MEdge(result.node, self.lookup(result.weight * a.weight))

    def add_vectors(self, a: VEdge, b: VEdge) -> VEdge:
        """Vector addition ``|a> + |b>``."""
        if a.is_zero:
            return b
        if b.is_zero:
            return a
        if a.node is TERMINAL and b.node is TERMINAL:
            return VEdge(TERMINAL, self.lookup(a.weight + b.weight))
        if a.node.serial > b.node.serial:
            a, b = b, a
        ratio = self.lookup(b.weight / a.weight)
        key = (id(a.node), id(b.node), self.complex_table.id_of(ratio))
        cached = self._add_vec_cache.get(key)
        if cached is not None:
            return VEdge(cached.node, self.lookup(cached.weight * a.weight))
        node_a, node_b = a.node, b.node
        if node_a.level != node_b.level:
            raise ValueError("cannot add diagrams of different height")
        children = tuple(
            self.add_vectors(
                VEdge(ea.node, ea.weight),
                VEdge(eb.node, self.lookup(eb.weight * ratio)),
            )
            for ea, eb in zip(node_a.edges, node_b.edges)
        )
        result = self.make_vector_node(node_a.level, children)
        self._add_vec_cache.put(key, result)
        return VEdge(result.node, self.lookup(result.weight * a.weight))

    # ------------------------------------------------------------------
    # multiplication
    # ------------------------------------------------------------------
    def multiply(self, a: MEdge, b: MEdge) -> MEdge:
        """Matrix product ``A @ B``."""
        if a.is_zero or b.is_zero:
            return self.zero_matrix_edge()
        weight = self.lookup(a.weight * b.weight)
        result = self._multiply_nodes(a.node, b.node)
        if result.is_zero:
            return result
        return MEdge(result.node, self.lookup(result.weight * weight))

    def _multiply_nodes(self, node_a, node_b) -> MEdge:
        if node_a is TERMINAL and node_b is TERMINAL:
            return self.terminal_matrix_edge()
        key = (id(node_a), id(node_b))
        cached = self._mul_cache.get(key)
        if cached is not None:
            return cached
        if node_a.level != node_b.level:
            raise ValueError("cannot multiply diagrams of different height")
        a = node_a.edges
        b = node_b.edges
        children = []
        for i in (0, 1):
            for j in (0, 1):
                term0 = self._scaled_multiply(a[2 * i + 0], b[0 + j])
                term1 = self._scaled_multiply(a[2 * i + 1], b[2 + j])
                children.append(self.add(term0, term1))
        result = self.make_matrix_node(node_a.level, tuple(children))
        self._mul_cache.put(key, result)
        return result

    def _scaled_multiply(self, a: MEdge, b: MEdge) -> MEdge:
        if a.is_zero or b.is_zero:
            return self.zero_matrix_edge()
        sub = self._multiply_nodes(a.node, b.node)
        if sub.is_zero:
            return sub
        return MEdge(sub.node, self.lookup(sub.weight * a.weight * b.weight))

    def multiply_matrix_vector(self, a: MEdge, v: VEdge) -> VEdge:
        """Matrix-vector product ``A |v>`` (DD-based simulation step)."""
        if a.is_zero or v.is_zero:
            return self.zero_vector_edge()
        weight = self.lookup(a.weight * v.weight)
        result = self._multiply_mv_nodes(a.node, v.node)
        if result.is_zero:
            return result
        return VEdge(result.node, self.lookup(result.weight * weight))

    def _multiply_mv_nodes(self, node_a, node_v) -> VEdge:
        if node_a is TERMINAL and node_v is TERMINAL:
            return self.terminal_vector_edge()
        key = (id(node_a), id(node_v))
        cached = self._mul_vec_cache.get(key)
        if cached is not None:
            return cached
        if node_a.level != node_v.level:
            raise ValueError("cannot multiply diagrams of different height")
        a = node_a.edges
        v = node_v.edges
        children = []
        for i in (0, 1):
            term0 = self._scaled_multiply_mv(a[2 * i + 0], v[0])
            term1 = self._scaled_multiply_mv(a[2 * i + 1], v[1])
            children.append(self.add_vectors(term0, term1))
        result = self.make_vector_node(node_a.level, tuple(children))
        self._mul_vec_cache.put(key, result)
        return result

    def _scaled_multiply_mv(self, a: MEdge, v: VEdge) -> VEdge:
        if a.is_zero or v.is_zero:
            return self.zero_vector_edge()
        sub = self._multiply_mv_nodes(a.node, v.node)
        if sub.is_zero:
            return sub
        return VEdge(sub.node, self.lookup(sub.weight * a.weight * v.weight))

    # ------------------------------------------------------------------
    # direct gate application (fast-path kernels)
    # ------------------------------------------------------------------
    #
    # A gate touching qubits up to level k-1 acts as ``I ⊗ G`` on the full
    # register: above level k-1 the operator is block-diagonal with
    # identical blocks, so ``(I ⊗ G) · M`` (and ``M · (I ⊗ G)``) descends
    # the target diagram structurally — each child is the recursive
    # application, no additions and no n-level gate diagram required.
    # Only at and below the gate's top level does an actual DD
    # multiplication happen, against the *compact* gate diagram ``G``.

    def apply_gate_left(self, gate: MEdge, target: MEdge) -> MEdge:
        """``(I ⊗ gate) @ target`` for a compact gate diagram.

        ``gate`` is a matrix DD whose root level is the highest qubit the
        gate touches; ``target``'s root level must be at least that high.
        Levels of ``target`` above the gate's root pass through untouched.
        """
        if gate.is_zero or target.is_zero:
            return self.zero_matrix_edge()
        weight = self.lookup(gate.weight * target.weight)
        result = self._apply_left_nodes(gate.node, target.node)
        if result.is_zero:
            return result
        return MEdge(result.node, self.lookup(result.weight * weight))

    def _apply_left_nodes(self, gate_node, target_node) -> MEdge:
        if target_node.level <= gate_node.level:
            return self._multiply_nodes(gate_node, target_node)
        key = (id(gate_node), id(target_node))
        cached = self._apply_left_cache.get(key)
        if cached is not None:
            return cached
        children = []
        for edge in target_node.edges:
            if edge.is_zero:
                children.append(self.zero_matrix_edge())
                continue
            sub = self._apply_left_nodes(gate_node, edge.node)
            if sub.is_zero:
                children.append(self.zero_matrix_edge())
            else:
                children.append(
                    MEdge(sub.node, self.lookup(sub.weight * edge.weight))
                )
        result = self.make_matrix_node(target_node.level, tuple(children))
        self._apply_left_cache.put(key, result)
        return result

    def apply_gate_right(self, target: MEdge, gate: MEdge) -> MEdge:
        """``target @ (I ⊗ gate)`` for a compact gate diagram."""
        if gate.is_zero or target.is_zero:
            return self.zero_matrix_edge()
        weight = self.lookup(target.weight * gate.weight)
        result = self._apply_right_nodes(target.node, gate.node)
        if result.is_zero:
            return result
        return MEdge(result.node, self.lookup(result.weight * weight))

    def _apply_right_nodes(self, target_node, gate_node) -> MEdge:
        if target_node.level <= gate_node.level:
            return self._multiply_nodes(target_node, gate_node)
        key = (id(target_node), id(gate_node))
        cached = self._apply_right_cache.get(key)
        if cached is not None:
            return cached
        children = []
        for edge in target_node.edges:
            if edge.is_zero:
                children.append(self.zero_matrix_edge())
                continue
            sub = self._apply_right_nodes(edge.node, gate_node)
            if sub.is_zero:
                children.append(self.zero_matrix_edge())
            else:
                children.append(
                    MEdge(sub.node, self.lookup(sub.weight * edge.weight))
                )
        result = self.make_matrix_node(target_node.level, tuple(children))
        self._apply_right_cache.put(key, result)
        return result

    def apply_gate_vector(self, gate: MEdge, state: VEdge) -> VEdge:
        """``(I ⊗ gate) |state>`` for a compact gate diagram."""
        if gate.is_zero or state.is_zero:
            return self.zero_vector_edge()
        weight = self.lookup(gate.weight * state.weight)
        result = self._apply_vec_nodes(gate.node, state.node)
        if result.is_zero:
            return result
        return VEdge(result.node, self.lookup(result.weight * weight))

    def _apply_vec_nodes(self, gate_node, state_node) -> VEdge:
        if state_node.level <= gate_node.level:
            return self._multiply_mv_nodes(gate_node, state_node)
        key = (id(gate_node), id(state_node))
        cached = self._apply_vec_cache.get(key)
        if cached is not None:
            return cached
        children = []
        for edge in state_node.edges:
            if edge.is_zero:
                children.append(self.zero_vector_edge())
                continue
            sub = self._apply_vec_nodes(gate_node, edge.node)
            if sub.is_zero:
                children.append(self.zero_vector_edge())
            else:
                children.append(
                    VEdge(sub.node, self.lookup(sub.weight * edge.weight))
                )
        result = self.make_vector_node(state_node.level, tuple(children))
        self._apply_vec_cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # conjugation, traces, inner products
    # ------------------------------------------------------------------
    def conjugate_transpose(self, a: MEdge) -> MEdge:
        """The adjoint ``A†`` of a matrix diagram."""
        if a.is_zero:
            return a
        result = self._conjugate_node(a.node)
        return MEdge(
            result.node, self.lookup(result.weight * a.weight.conjugate())
        )

    def _conjugate_node(self, node) -> MEdge:
        if node is TERMINAL:
            return self.terminal_matrix_edge()
        cached = self._conj_cache.get(id(node))
        if cached is not None:
            return cached
        e = node.edges
        children = []
        # adjoint: transpose block positions (swap 01 and 10), conjugate weights
        for source in (e[0], e[2], e[1], e[3]):
            if source.is_zero:
                children.append(self.zero_matrix_edge())
            else:
                sub = self._conjugate_node(source.node)
                children.append(
                    MEdge(
                        sub.node,
                        self.lookup(sub.weight * source.weight.conjugate()),
                    )
                )
        result = self.make_matrix_node(node.level, tuple(children))
        self._conj_cache.put(id(node), result)
        return result

    def trace(self, a: MEdge) -> complex:
        """The trace of a matrix diagram."""
        if a.is_zero:
            return 0j
        return a.weight * self._trace_node(a.node)

    def _trace_node(self, node) -> complex:
        if node is TERMINAL:
            return 1 + 0j
        cached = self._trace_cache.get(id(node))
        if cached is not None:
            return cached
        e = node.edges
        value = 0j
        if not e[0].is_zero:
            value += e[0].weight * self._trace_node(e[0].node)
        if not e[3].is_zero:
            value += e[3].weight * self._trace_node(e[3].node)
        self._trace_cache.put(id(node), value)
        return value

    def inner_product(self, a: VEdge, b: VEdge) -> complex:
        """The inner product ``<a|b>`` of two vector diagrams."""
        if a.is_zero or b.is_zero:
            return 0j
        return (
            a.weight.conjugate() * b.weight * self._inner_nodes(a.node, b.node)
        )

    def _inner_nodes(self, node_a, node_b) -> complex:
        if node_a is TERMINAL and node_b is TERMINAL:
            return 1 + 0j
        key = (id(node_a), id(node_b))
        cached = self._inner_cache.get(key)
        if cached is not None:
            return cached
        value = 0j
        for ea, eb in zip(node_a.edges, node_b.edges):
            if not ea.is_zero and not eb.is_zero:
                value += (
                    ea.weight.conjugate()
                    * eb.weight
                    * self._inner_nodes(ea.node, eb.node)
                )
        self._inner_cache.put(key, value)
        return value

    def fidelity(self, a: VEdge, b: VEdge) -> float:
        """``|<a|b>|^2`` between two (normalized) state diagrams."""
        overlap = self.inner_product(a, b)
        return abs(overlap) ** 2

    # ------------------------------------------------------------------
    # equivalence predicates
    # ------------------------------------------------------------------
    def is_identity(
        self, a: MEdge, num_qubits: int, up_to_global_phase: bool = True
    ) -> bool:
        """Structural identity test against the canonical identity DD."""
        identity = self.identity(num_qubits)
        if a.node is not identity.node:
            return False
        if up_to_global_phase:
            return abs(abs(a.weight) - 1.0) <= 16 * self.tolerance
        return abs(a.weight - 1.0) <= 16 * self.tolerance

    def hilbert_schmidt_fidelity(self, a: MEdge, num_qubits: int) -> float:
        """``|tr(A)| / 2^n`` — 1.0 iff ``A`` is a global-phase identity.

        During the alternating equivalence check ``A`` *is* the accumulated
        product ``U† U'``, so this realizes the paper's Section 3 check
        without any extra DD multiplication.
        """
        return abs(self.trace(a)) / float(2**num_qubits)
