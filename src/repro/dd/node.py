"""Node and edge types of the decision-diagram package.

A decision diagram is a DAG of nodes; every node belongs to a *level*
(the index of the qubit it decides on — level 0 is the least significant
qubit, the root of an ``n``-qubit diagram sits at level ``n - 1``).  Edges
carry complex weights; the represented function of an edge is the weight
times the function of the node it points to.

* :class:`VNode` — vector nodes with two successors (``|0>`` and ``|1>``
  branch of the decided qubit).
* :class:`MNode` — matrix nodes with four successors in row-major order
  ``(U00, U01, U10, U11)``, where ``U_ij`` is the sub-matrix mapping the
  decided qubit from ``j`` to ``i`` (exactly the decomposition of Section 4
  of the paper).

Both share the unique :data:`TERMINAL` node at level ``-1`` representing the
scalar 1.  Node objects are only ever created through the unique tables of
:class:`repro.dd.package.DDPackage`, hence structural equality of canonical
diagrams reduces to object identity.
"""

from __future__ import annotations

from typing import Tuple


class _Terminal:
    """The unique terminal node (scalar 1) shared by all diagrams."""

    __slots__ = ()
    level = -1
    serial = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TERMINAL"


#: The one terminal node.
TERMINAL = _Terminal()


class VNode:
    """A vector decision-diagram node with ``|0>`` / ``|1>`` successors."""

    __slots__ = ("level", "edges", "serial")

    def __init__(
        self, level: int, edges: Tuple["VEdge", "VEdge"], serial: int = 0
    ) -> None:
        self.level = level
        self.edges = edges
        # Creation order within the owning package's unique table; the
        # deterministic stand-in for ``id()`` when the algebra must pick a
        # canonical operand order (it mirrors the array engine's handle).
        self.serial = serial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VNode(level={self.level})"


class MNode:
    """A matrix decision-diagram node with four block successors."""

    __slots__ = ("level", "edges", "serial")

    def __init__(
        self,
        level: int,
        edges: Tuple["MEdge", "MEdge", "MEdge", "MEdge"],
        serial: int = 0,
    ) -> None:
        self.level = level
        self.edges = edges
        self.serial = serial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MNode(level={self.level})"


class VEdge:
    """A weighted edge into a vector diagram."""

    __slots__ = ("node", "weight")

    def __init__(self, node, weight: complex) -> None:
        self.node = node
        self.weight = weight

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, VEdge)
            and self.node is other.node
            and self.weight == other.weight
        )

    def __hash__(self) -> int:
        return hash((id(self.node), self.weight))

    @property
    def is_zero(self) -> bool:
        """True if this edge represents the zero vector."""
        return self.weight == 0

    @property
    def is_terminal(self) -> bool:
        return self.node is TERMINAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VEdge({self.node!r}, {self.weight})"


class MEdge:
    """A weighted edge into a matrix diagram."""

    __slots__ = ("node", "weight")

    def __init__(self, node, weight: complex) -> None:
        self.node = node
        self.weight = weight

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MEdge)
            and self.node is other.node
            and self.weight == other.weight
        )

    def __hash__(self) -> int:
        return hash((id(self.node), self.weight))

    @property
    def is_zero(self) -> bool:
        """True if this edge represents the zero matrix."""
        return self.weight == 0

    @property
    def is_terminal(self) -> bool:
        return self.node is TERMINAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MEdge({self.node!r}, {self.weight})"
