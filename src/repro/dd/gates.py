"""Constructing decision diagrams for gates and whole circuits.

A (multi-)controlled gate with base unitary ``G`` on target ``t`` and
controls ``C`` satisfies::

    U = I + (⊗_{c in C} P1) ⊗ (G - I) at t   (identity elsewhere)

i.e. the controlled gate is the identity plus a pure tensor-product
correction term (``P1 = |1><1|``).  Tensor products with identity defaults
are exactly what :meth:`repro.dd.package.DDPackage.layered_kron` builds, so
every standard-gate DD is one ``layered_kron`` plus one DD addition — and a
two-target base gate needs four correction terms (one per 2x2 block of
``G - I``).

Gate *application* has two code paths:

* the **direct** fast path (default): build a *compact* gate diagram only
  up to the highest qubit the operation touches and hand it to the
  ``apply_gate_*`` kernels of the package, which pass untouched upper
  levels through structurally;
* the **legacy** path (``direct=False``): build the full ``n``-qubit gate
  diagram and perform a full-depth DD multiplication — the seed behaviour,
  kept selectable through :class:`repro.ec.configuration.Configuration`
  for A/B ablation benchmarks.

All functions here are **engine-polymorphic**: they only call the package
method surface (``layered_kron``, ``identity``, ``add``,
``make_matrix_node``, ``apply_gate_*``, ``multiply*``), which
:class:`~repro.dd.package.DDPackage` and
:class:`~repro.dd.array_package.ArrayDDPackage` both implement — the
former over ``MEdge`` objects, the latter over packed integer edges.  The
``pkg``/edge type hints below are written against the object engine for
readability; batched column application lives in
:mod:`repro.dd.array_gates`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.dd.node import MEdge, VEdge
from repro.dd.package import DDPackage

_P1 = np.array([[0, 0], [0, 1]], dtype=complex)


def operation_dd(pkg: DDPackage, op: Operation, num_qubits: int) -> MEdge:
    """Build the full ``n``-qubit matrix DD of one operation.

    Results are memoized per package: circuits apply the same few gates
    over and over (16 simulation runs of a 1000-gate circuit hit this
    cache ~32000 times), and canonical nodes make the cached edge exact.
    """
    cache = getattr(pkg, "_gate_dd_cache", None)
    if cache is None:
        cache = {}
        pkg._gate_dd_cache = cache
    key = (op.name, op.targets, op.controls, op.params, num_qubits)
    cached = cache.get(key)
    if cached is not None:
        return cached
    result = _build_operation_dd(pkg, op, num_qubits)
    cache[key] = result
    return result


def compact_operation_dd(pkg: DDPackage, op: Operation) -> MEdge:
    """The gate DD built only up to the highest qubit the operation touches.

    The returned diagram's root level is ``max(op.qubits)``; the
    ``apply_gate_*`` kernels treat every level above it as identity.
    """
    return operation_dd(pkg, op, max(op.qubits) + 1)


def _build_operation_dd(pkg: DDPackage, op: Operation, num_qubits: int) -> MEdge:
    if op.name == "swap" and not op.controls:
        return swap_dd(pkg, op.targets[0], op.targets[1], num_qubits)
    base = op.matrix()
    if len(op.targets) == 1:
        delta = base - np.eye(2)
        factors: Dict[int, np.ndarray] = {c: _P1 for c in op.controls}
        factors[op.targets[0]] = delta
        term = pkg.layered_kron(num_qubits, factors)
        return pkg.add(pkg.identity(num_qubits), term)
    if len(op.targets) == 2:
        # targets[0] is the least significant qubit of the 4x4 base matrix.
        t_low, t_high = op.targets
        delta = base - np.eye(4)
        result = pkg.identity(num_qubits)
        for i in (0, 1):
            for j in (0, 1):
                block = np.array(
                    [
                        [delta[2 * i + 0, 2 * j + 0], delta[2 * i + 0, 2 * j + 1]],
                        [delta[2 * i + 1, 2 * j + 0], delta[2 * i + 1, 2 * j + 1]],
                    ]
                )
                if not block.any():
                    continue
                unit = np.zeros((2, 2), dtype=complex)
                unit[i, j] = 1.0
                factors = {c: _P1 for c in op.controls}
                factors[t_high] = unit
                factors[t_low] = block
                term = pkg.layered_kron(num_qubits, factors)
                result = pkg.add(result, term)
        return result
    raise ValueError(f"unsupported number of targets: {len(op.targets)}")


def swap_dd(pkg: DDPackage, qubit_a: int, qubit_b: int, num_qubits: int) -> MEdge:
    """Direct construction of the SWAP-gate matrix DD.

    ``SWAP = Σ_{i,j} |j><i| at the high qubit ⊗ |i><j| at the low qubit``
    (identity elsewhere), which is a four-chain diagram that can be built
    bottom-up in ``O(num_qubits)`` node creations — no ``layered_kron``
    tensor terms and no DD additions, unlike the generic two-target path.
    """
    low, high = sorted((qubit_a, qubit_b))
    if low == high:
        raise ValueError("swap needs two distinct qubits")
    if num_qubits <= high:
        raise ValueError("swap qubits exceed the register size")
    zero = pkg.zero_matrix_edge()
    below = pkg.identity(low)
    chains = {}
    for i in (0, 1):
        for j in (0, 1):
            # Low-qubit block mapping j -> i sits at row-major slot (i, j).
            edges = [zero, zero, zero, zero]
            edges[2 * i + j] = below
            chain = pkg.make_matrix_node(low, tuple(edges))
            for level in range(low + 1, high):
                chain = pkg.make_matrix_node(level, (chain, zero, zero, chain))
            chains[(i, j)] = chain
    # High-qubit block mapping i -> j picks up the (i, j) low chain.
    edges = [zero, zero, zero, zero]
    for (i, j), chain in chains.items():
        edges[2 * j + i] = chain
    edge = pkg.make_matrix_node(high, tuple(edges))
    for level in range(high + 1, num_qubits):
        edge = pkg.make_matrix_node(level, (edge, zero, zero, edge))
    return edge


def apply_operation_left(
    pkg: DDPackage,
    accumulated: MEdge,
    op: Operation,
    num_qubits: int,
    direct: bool = True,
) -> MEdge:
    """Return ``U_op @ accumulated`` (gate applied after the product)."""
    if direct:
        return pkg.apply_gate_left(compact_operation_dd(pkg, op), accumulated)
    return pkg.multiply(operation_dd(pkg, op, num_qubits), accumulated)


def apply_operation_right(
    pkg: DDPackage,
    accumulated: MEdge,
    op: Operation,
    num_qubits: int,
    direct: bool = True,
) -> MEdge:
    """Return ``accumulated @ U_op`` (gate applied before the product)."""
    if direct:
        return pkg.apply_gate_right(accumulated, compact_operation_dd(pkg, op))
    return pkg.multiply(accumulated, operation_dd(pkg, op, num_qubits))


def apply_operation_to_vector(
    pkg: DDPackage,
    state: VEdge,
    op: Operation,
    num_qubits: int,
    direct: bool = True,
) -> VEdge:
    """Return ``U_op |state>`` — one DD simulation step."""
    if direct:
        return pkg.apply_gate_vector(compact_operation_dd(pkg, op), state)
    return pkg.multiply_matrix_vector(operation_dd(pkg, op, num_qubits), state)


def circuit_dd(
    pkg: DDPackage, circuit: QuantumCircuit, direct: bool = True
) -> MEdge:
    """Build the full system-matrix DD ``U = U_{m-1} ... U_0`` of a circuit.

    This is the naive *construction* strategy of Section 4.1 — potentially
    exponential in intermediate size, but the baseline the alternating
    scheme improves on.
    """
    result = pkg.identity(circuit.num_qubits)
    for op in circuit:
        result = apply_operation_left(
            pkg, result, op, circuit.num_qubits, direct=direct
        )
    return result


def simulate_circuit_dd(
    pkg: DDPackage,
    circuit: QuantumCircuit,
    initial: Optional[VEdge] = None,
    direct: bool = True,
) -> VEdge:
    """Run the circuit on a vector DD (default ``|0...0>``)."""
    state = initial if initial is not None else pkg.basis_state(circuit.num_qubits)
    for op in circuit:
        state = apply_operation_to_vector(
            pkg, state, op, circuit.num_qubits, direct=direct
        )
    return state


def permutation_dd(
    pkg: DDPackage, permutation: Dict[int, int], num_qubits: int
) -> MEdge:
    """Matrix DD moving the state of wire ``k`` to wire ``permutation[k]``.

    Realized as a product of SWAP-gate DDs obtained from the cycle
    decomposition of the permutation.  Each SWAP is constructed directly
    (see :func:`swap_dd`) and merged with the fast-path application
    kernel, so untouched upper wires are never traversed.
    """
    result = pkg.identity(num_qubits)
    for a, b in permutation_to_transpositions(permutation, num_qubits):
        swap = swap_dd(pkg, a, b, max(a, b) + 1)
        result = pkg.apply_gate_left(swap, result)
    return result


def permutation_to_transpositions(
    permutation: Dict[int, int], num_qubits: int
) -> Iterable[Tuple[int, int]]:
    """Decompose a wire permutation into a list of transpositions."""
    full = {q: q for q in range(num_qubits)}
    full.update(permutation)
    if sorted(full.values()) != list(range(num_qubits)):
        raise ValueError(f"not a permutation: {permutation}")
    transpositions = []
    current = dict(full)
    # Greedy selection-sort style decomposition: after processing wire k,
    # current[k] == k.
    inverse = {v: k for k, v in current.items()}
    for wire in range(num_qubits):
        src = inverse[wire]
        if src != wire:
            # swap contents of wires src and wire
            transpositions.append((src, wire))
            moved = current[wire]
            current[src] = moved
            current[wire] = wire
            inverse[moved] = src
            inverse[wire] = wire
    return transpositions
