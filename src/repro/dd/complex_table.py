"""Tolerance-aware interning of complex edge weights.

Decision diagrams only stay compact if numerically close edge weights are
recognized as *the same* number — otherwise rounding errors during long
gate sequences make structurally identical sub-diagrams look different and
node sharing collapses (the effect Section 6.2 of the paper blames for the
DD blow-up on arbitrary-angle circuits).

The :class:`ComplexTable` therefore maps every complex number to a canonical
representative: values within ``tolerance`` of an already-stored value are
snapped to that value.  Lookup uses a uniform grid of buckets of edge length
``tolerance`` and probes the 3x3 neighborhood of the target bucket, so any
two values closer than ``tolerance`` are guaranteed to land on a probed
bucket pair.

Canonical values are plain Python ``complex`` objects, so edge comparisons
elsewhere in the package reduce to cheap ``==`` on interned values.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: Default merging tolerance, mirroring the magnitude used by QCEC's
#: underlying DD package.
DEFAULT_TOLERANCE = 1e-10

_NEIGHBORHOOD = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 0), (0, 1),
    (1, -1), (1, 0), (1, 1),
)


class ComplexTable:
    """Canonical storage of complex numbers with tolerance-based merging."""

    def __init__(self, tolerance: float = DEFAULT_TOLERANCE) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self._tolerance = tolerance
        # Bucket edge equals the tolerance: two values in the same bucket
        # are always within tolerance, so a bucket never holds two distinct
        # canonical values, and values within tolerance across a bucket
        # boundary are found by the 3x3 neighborhood probe.
        self._bucket = tolerance
        self._table: Dict[Tuple[int, int], complex] = {}
        # Every canonical value gets a small sequential integer id so that
        # compute-table keys can be pure integer tuples (cheap to hash and
        # compare) instead of hashing raw complex ratios.  ``_values`` is
        # the inverse map (id -> canonical value): the array-native DD
        # engine stores *only* weight ids in its node arrays and resolves
        # them through this list.
        self._ids: Dict[complex, int] = {}
        self._values: List[complex] = []
        self.hits = 0
        self.misses = 0
        # Seed the exact values every diagram relies on so that anything
        # within tolerance of them snaps to the crisp constant.
        for seed in (0j, 1 + 0j, -1 + 0j, 1j, -1j):
            self.lookup(seed)

    @property
    def tolerance(self) -> float:
        """The merging tolerance of this table."""
        return self._tolerance

    def __len__(self) -> int:
        return len(self._table)

    def _key(self, value: complex) -> Tuple[int, int]:
        return (
            int(math.floor(value.real / self._bucket)),
            int(math.floor(value.imag / self._bucket)),
        )

    def lookup(self, value: complex) -> complex:
        """Return the canonical representative of ``value``.

        If a stored value lies within ``tolerance`` (Chebyshev distance on
        the real/imaginary parts), that value is returned; otherwise
        ``value`` itself is stored and returned.
        """
        value = complex(value)
        key = self._key(value)
        tol = self._tolerance
        for dx, dy in _NEIGHBORHOOD:
            probe = (key[0] + dx, key[1] + dy)
            stored = self._table.get(probe)
            if stored is not None and (
                abs(stored.real - value.real) <= tol
                and abs(stored.imag - value.imag) <= tol
            ):
                self.hits += 1
                return stored
        self.misses += 1
        self._table[key] = value
        self._ids[value] = len(self._ids)
        self._values.append(value)
        return value

    def id_of(self, canonical: complex) -> int:
        """The integer id of an already-interned canonical value.

        Callers must pass a value previously returned by :meth:`lookup`;
        use :meth:`lookup_id` to intern and resolve in one step.
        """
        return self._ids[canonical]

    def lookup_id(self, value: complex) -> int:
        """Intern ``value`` and return its canonical integer id."""
        return self._ids[self.lookup(value)]

    def value_of(self, weight_id: int) -> complex:
        """The canonical value behind an integer id (inverse of ``id_of``)."""
        return self._values[weight_id]

    def num_ids(self) -> int:
        """Number of canonical ids handed out so far."""
        return len(self._values)

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus the final table size."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._table)}

    def clear(self) -> None:
        """Drop all stored values (the exact seeds are re-inserted)."""
        self._table.clear()
        self._ids.clear()
        self._values.clear()
        self.hits = 0
        self.misses = 0
        for seed in (0j, 1 + 0j, -1 + 0j, 1j, -1j):
            self.lookup(seed)
