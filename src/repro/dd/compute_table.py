"""Fixed-size, slot-indexed compute tables for memoized DD operations.

The seed package memoized operation results in unbounded Python dicts and
cleared a table *wholesale* the moment it crossed a size limit — in the
middle of a recursion, a long alternating run would periodically lose its
entire memoization and re-derive every sub-product from scratch.

Real QMDD packages instead use a fixed array of slots: the key hashes to
one slot, a collision simply overwrites that slot, and every other entry
stays hot.  Lookups and inserts are O(1), memory is bounded by
construction, and an unlucky collision costs one recomputation instead of
a full cold start.  :class:`ComputeTable` implements exactly that scheme,
with an optional *unbounded* mode (``size=None``, a plain dict) retained
for A/B ablations.

Keys must be hashable and cheap to compare — the package uses tuples of
integers (node ``id()``s and interned complex-weight ids from
:class:`repro.dd.complex_table.ComplexTable`).

The slot array is allocated lazily on the first insert, so packages that
never touch an operation (most test fixtures) pay nothing for its table.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

#: Default number of slots per compute table (power of two).
DEFAULT_COMPUTE_TABLE_SIZE = 1 << 14


def _round_up_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class ComputeTable:
    """One memoization table: hash-indexed slots with overwrite-on-collision.

    Args:
        name: Label used in statistics reporting.
        size: Number of slots (rounded up to a power of two), or ``None``
            for an unbounded dict-backed table.
    """

    __slots__ = (
        "name", "_mask", "_slots", "_dict", "_entries",
        "hits", "misses", "evictions",
    )

    def __init__(
        self, name: str = "", size: Optional[int] = DEFAULT_COMPUTE_TABLE_SIZE
    ) -> None:
        if size is not None and size < 1:
            raise ValueError("compute table size must be positive or None")
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries = 0
        if size is None:
            self._mask = None
            self._slots = None
            self._dict: Optional[Dict[Hashable, Any]] = {}
        else:
            self._mask = _round_up_power_of_two(size) - 1
            self._slots = None  # allocated lazily on first put
            self._dict = None

    @property
    def bounded(self) -> bool:
        """True if this table has a fixed number of slots."""
        return self._dict is None

    @property
    def size(self) -> Optional[int]:
        """Slot count of a bounded table, ``None`` if unbounded."""
        return None if self._mask is None else self._mask + 1

    def __len__(self) -> int:
        if self._dict is not None:
            return len(self._dict)
        return self._entries

    def get(self, key: Hashable) -> Any:
        """Return the memoized value for ``key`` or ``None`` on a miss."""
        if self._dict is not None:
            value = self._dict.get(key)
            if value is None:
                self.misses += 1
            else:
                self.hits += 1
            return value
        if self._slots is not None:
            entry = self._slots[hash(key) & self._mask]
            if entry is not None and entry[0] == key:
                self.hits += 1
                return entry[1]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Memoize ``value`` under ``key`` (collisions overwrite the slot)."""
        if self._dict is not None:
            self._dict[key] = value
            return
        slots = self._slots
        if slots is None:
            slots = self._slots = [None] * (self._mask + 1)
        slot = hash(key) & self._mask
        entry = slots[slot]
        if entry is None:
            self._entries += 1
        elif entry[0] != key:
            self.evictions += 1
        slots[slot] = (key, value)

    def clear(self) -> None:
        """Drop all memoized entries (statistics are reset too)."""
        if self._dict is not None:
            self._dict.clear()
        else:
            self._slots = None
        self._entries = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "unbounded" if self._dict is not None else f"{self._mask + 1} slots"
        return f"ComputeTable({self.name!r}, {kind}, {len(self)} entries)"
