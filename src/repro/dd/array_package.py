"""Array-native DD package: integer handles, packed edges, id arithmetic.

This is the performance twin of :class:`repro.dd.package.DDPackage`.  It
implements the *same* QMDD algebra — same normalization rule, same
recursion structure, same memoization points — over a struct-of-arrays
substrate (:mod:`repro.dd.array_store`) instead of linked ``VNode`` /
``MNode`` objects:

* **Nodes** are dense ``int`` handles into a :class:`NodeStore` (handle
  0 = terminal).  No node or edge objects are allocated on the hot path;
  ``tools/check_repro.py`` enforces this with the ``no-object-dd`` lint.
* **Edges** are single Python integers packing the target handle and the
  interned weight id of the :class:`~repro.dd.complex_table.ComplexTable`:
  ``edge = (handle << 32) | weight_id``.  The canonical zero edge is the
  literal ``0`` (terminal handle, weight id of ``0j``) and the terminal
  one-edge is the literal ``1`` — but zero *tests* always mask the weight
  id, because arithmetic can snap a weight to zero under a non-terminal
  handle (mirroring ``Edge.is_zero`` being a pure weight test in the
  object engine).
* **Weight arithmetic** happens on integer ids through small memo dicts
  (``mul``/``mul3``/``div``/``add``/``conj-mul``): each distinct id pair
  is computed once via the complex table and then replayed as a dict hit,
  so the recursions never re-hash complex numbers.
* **Compute tables** are the same slot-indexed
  :class:`~repro.dd.compute_table.ComputeTable` instances as the object
  engine, but keyed on ``(handle, handle, ...)`` integer tuples instead
  of ``id()`` pairs — stable, dense, and cheap to hash.

Because both engines normalize identically and intern through a
:class:`ComplexTable`, building the *same* circuit in an object package
and an array package sharing one complex table yields bit-identical root
signatures (see ``tests/dd/test_array_agreement.py``); ulp-level
differences in intermediate float products are absorbed by the table's
canonical snapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.dd.array_store import INITIAL_SLOT_CAPACITY, NodeStore
from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE
from repro.dd.compute_table import ComputeTable, DEFAULT_COMPUTE_TABLE_SIZE

#: Bits reserved for the weight id in a packed edge.
EDGE_SHIFT = 32
#: Mask extracting the weight id from a packed edge.
WEIGHT_MASK = (1 << EDGE_SHIFT) - 1

#: Weight ids of the exact constants seeded by :class:`ComplexTable`.
ZERO_ID = 0
ONE_ID = 1

#: The canonical zero edge (terminal handle, weight ``0j``).
ZERO_EDGE = 0
#: The terminal edge of weight exactly ``1`` (identity scalar).
ONE_EDGE = ONE_ID


class ArrayDDPackage:
    """Canonical vector / matrix DDs over struct-of-arrays node storage.

    Drop-in algebraic equivalent of :class:`repro.dd.package.DDPackage`;
    edges are packed integers (see module docstring) and node identity is
    handle equality.  The checker layer only touches edges through the
    engine-uniform accessors (``edge_node`` / ``edge_weight`` /
    ``matrix_dd_size`` / ``vector_dd_size``), so the same checker code
    drives either engine.

    Args:
        tolerance: Merging tolerance of the complex table.
        compute_table_size: Slots per compute table (``None`` = unbounded).
        complex_table: Existing table to share (engine-agreement tests).
        unique_table_slots: Initial open-addressed unique-table size; tiny
            values exercise the growth path in stress tests.
    """

    def __init__(
        self,
        tolerance: float = DEFAULT_TOLERANCE,
        compute_table_size: Optional[int] = DEFAULT_COMPUTE_TABLE_SIZE,
        complex_table: Optional[ComplexTable] = None,
        unique_table_slots: int = INITIAL_SLOT_CAPACITY,
    ) -> None:
        self.complex_table = (
            complex_table if complex_table is not None
            else ComplexTable(tolerance)
        )
        # The id->value list is hot (every weight operation resolves ids);
        # bind the live list once — ComplexTable.clear() keeps its identity.
        self._values: List[complex] = self.complex_table._values
        if (
            self.complex_table.id_of(0j) != ZERO_ID
            or self.complex_table.id_of(1 + 0j) != ONE_ID
        ):
            raise ValueError(
                "complex table must be seeded with 0j at id 0 and 1 at id 1"
            )
        self.vec = NodeStore(2, unique_table_slots)
        self.mat = NodeStore(4, unique_table_slots)
        # Id-pair memo dicts for weight arithmetic (module docstring).
        self._mul_w: Dict[Tuple[int, int], int] = {}
        self._mul3_w: Dict[Tuple[int, int, int], int] = {}
        self._div_w: Dict[Tuple[int, int], int] = {}
        self._add_w: Dict[Tuple[int, int], int] = {}
        self._conjmul_w: Dict[Tuple[int, int], int] = {}
        # |value| per weight id, extended lazily alongside the value list.
        self._abs_w: List[float] = []
        self._tables: Dict[str, ComputeTable] = {}

        def table(name: str) -> ComputeTable:
            t = ComputeTable(name, compute_table_size)
            self._tables[name] = t
            return t

        self._add_cache = table("add")
        self._add_vec_cache = table("add_vec")
        self._mul_cache = table("mul")
        self._mul_vec_cache = table("mul_vec")
        self._conj_cache = table("conj")
        self._trace_cache = table("trace")
        self._inner_cache = table("inner")
        self._apply_left_cache = table("apply_left")
        self._apply_right_cache = table("apply_right")
        self._apply_vec_cache = table("apply_vec")
        self._identity_cache: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def tolerance(self) -> float:
        return self.complex_table.tolerance

    @property
    def matrix_nodes_created(self) -> int:
        return self.mat.num_nodes

    @property
    def vector_nodes_created(self) -> int:
        return self.vec.num_nodes

    def num_unique_matrix_nodes(self) -> int:
        """Total matrix nodes ever created by this package."""
        return self.mat.num_nodes

    def num_unique_vector_nodes(self) -> int:
        """Total vector nodes ever created by this package."""
        return self.vec.num_nodes

    def clear_compute_tables(self) -> None:
        """Drop all memoized operation results (node stores survive)."""
        for cache in self._tables.values():
            cache.clear()

    def compute_table_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction counters for every compute table."""
        return {name: t.stats() for name, t in sorted(self._tables.items())}

    def store_statistics(self) -> Dict[str, Dict[str, int]]:
        """Node-store growth and unique-table probe counters."""
        return {
            "matrix_store": self.mat.stats(),
            "vector_store": self.vec.stats(),
        }

    # Engine-uniform edge accessors (the object engine exposes the same
    # four names; checkers never unpack edges themselves).
    @staticmethod
    def edge_node(edge: int) -> int:
        """The node token of an edge — compare with ``==``."""
        return edge >> EDGE_SHIFT

    def edge_weight(self, edge: int) -> complex:
        """The canonical complex weight carried by an edge."""
        return self._values[edge & WEIGHT_MASK]

    def matrix_dd_size(self, edge: int) -> int:
        """Distinct non-terminal nodes reachable from a matrix edge."""
        return self._dd_size(edge, self.mat)

    def vector_dd_size(self, edge: int) -> int:
        """Distinct non-terminal nodes reachable from a vector edge."""
        return self._dd_size(edge, self.vec)

    def _dd_size(self, edge: int, store: NodeStore) -> int:
        if edge & WEIGHT_MASK == 0:
            return 0
        arity = store.arity
        children = store.children
        weights = store.weights
        seen = set()
        stack = [edge >> EDGE_SHIFT]
        while stack:
            handle = stack.pop()
            if handle == 0 or handle in seen:
                continue
            seen.add(handle)
            base = handle * arity
            for k in range(arity):
                if weights[base + k] != 0:
                    stack.append(children[base + k])
        return len(seen)

    # ------------------------------------------------------------------
    # weight-id arithmetic
    # ------------------------------------------------------------------
    def lookup(self, value: complex) -> complex:
        """Intern a complex number in the package's complex table."""
        return self.complex_table.lookup(value)

    def lookup_id(self, value: complex) -> int:
        """Intern a complex number and return its weight id."""
        return self.complex_table.lookup_id(value)

    def weight_value(self, weight_id: int) -> complex:
        """The canonical value behind a weight id."""
        return self._values[weight_id]

    def _wabs(self, wid: int) -> float:
        abs_w = self._abs_w
        if wid >= len(abs_w):
            values = self._values
            for k in range(len(abs_w), len(values)):
                abs_w.append(abs(values[k]))
        return abs_w[wid]

    def _wmul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        if a == ONE_ID:
            return b
        if b == ONE_ID:
            return a
        key = (a, b)
        cached = self._mul_w.get(key)
        if cached is not None:
            return cached
        values = self._values
        result = self.complex_table.lookup_id(values[a] * values[b])
        self._mul_w[key] = result
        return result

    def _wmul3(self, a: int, b: int, c: int) -> int:
        # Mirrors the object engine's single-lookup triple product
        # ``lookup(va * vb * vc)`` (left-to-right).
        if a == 0 or b == 0 or c == 0:
            return 0
        if a == ONE_ID:
            return self._wmul(b, c)
        if b == ONE_ID:
            return self._wmul(a, c)
        if c == ONE_ID:
            return self._wmul(a, b)
        key = (a, b, c)
        cached = self._mul3_w.get(key)
        if cached is not None:
            return cached
        values = self._values
        result = self.complex_table.lookup_id(values[a] * values[b] * values[c])
        self._mul3_w[key] = result
        return result

    def _wdiv(self, a: int, b: int) -> int:
        if a == 0:
            return 0
        if b == ONE_ID:
            return a
        key = (a, b)
        cached = self._div_w.get(key)
        if cached is not None:
            return cached
        values = self._values
        result = self.complex_table.lookup_id(values[a] / values[b])
        self._div_w[key] = result
        return result

    def _wadd(self, a: int, b: int) -> int:
        if a == 0:
            return b
        if b == 0:
            return a
        key = (a, b)
        cached = self._add_w.get(key)
        if cached is not None:
            return cached
        values = self._values
        result = self.complex_table.lookup_id(values[a] + values[b])
        self._add_w[key] = result
        return result

    def _wconjmul(self, a: int, b: int) -> int:
        # ``lookup(va * conj(vb))`` — conjugation is exact, so only the
        # product needs interning.
        if a == 0 or b == 0:
            return 0
        if b == ONE_ID:
            return a
        key = (a, b)
        cached = self._conjmul_w.get(key)
        if cached is not None:
            return cached
        values = self._values
        result = self.complex_table.lookup_id(
            values[a] * values[b].conjugate()
        )
        self._conjmul_w[key] = result
        return result

    # ------------------------------------------------------------------
    # construction with normalization
    # ------------------------------------------------------------------
    def make_vector_node(self, level: int, edges: Sequence[int]) -> int:
        """Create (or reuse) a normalized vector node; returns its edge."""
        w0 = edges[0] & WEIGHT_MASK
        w1 = edges[1] & WEIGHT_MASK
        # Max-magnitude weight, lowest index on exact ties (object-engine
        # normalization rule — strictly-greater comparison).
        if self._wabs(w1) > self._wabs(w0):
            max_index = 1
            norm = w1
        else:
            max_index = 0
            norm = w0
        if norm == 0:
            return ZERO_EDGE
        fields = []
        for index, (edge, wid) in enumerate(((edges[0], w0), (edges[1], w1))):
            if index == max_index:
                fields.append(edge >> EDGE_SHIFT)
                fields.append(ONE_ID)
                continue
            nw = 0 if wid == 0 else self._wdiv(wid, norm)
            if nw == 0:
                fields.append(0)
                fields.append(0)
            else:
                fields.append(edge >> EDGE_SHIFT)
                fields.append(nw)
        handle, _ = self.vec.lookup_or_insert(level, tuple(fields))
        return (handle << EDGE_SHIFT) | norm

    def make_matrix_node(self, level: int, edges: Sequence[int]) -> int:
        """Create (or reuse) a normalized matrix node; returns its edge."""
        max_index = 0
        max_mag = -1.0
        wids = []
        for index, edge in enumerate(edges):
            wid = edge & WEIGHT_MASK
            wids.append(wid)
            mag = self._wabs(wid)
            if mag > max_mag:
                max_mag = mag
                max_index = index
        norm = wids[max_index]
        if norm == 0:
            return ZERO_EDGE
        fields = []
        for index, edge in enumerate(edges):
            if index == max_index:
                fields.append(edge >> EDGE_SHIFT)
                fields.append(ONE_ID)
                continue
            wid = wids[index]
            nw = 0 if wid == 0 else self._wdiv(wid, norm)
            if nw == 0:
                fields.append(0)
                fields.append(0)
            else:
                fields.append(edge >> EDGE_SHIFT)
                fields.append(nw)
        handle, _ = self.mat.lookup_or_insert(level, tuple(fields))
        return (handle << EDGE_SHIFT) | norm

    # ------------------------------------------------------------------
    # elementary diagrams
    # ------------------------------------------------------------------
    @staticmethod
    def zero_vector_edge() -> int:
        """The zero vector (an edge of weight 0)."""
        return ZERO_EDGE

    @staticmethod
    def zero_matrix_edge() -> int:
        """The zero matrix (an edge of weight 0)."""
        return ZERO_EDGE

    def terminal_vector_edge(self, weight: complex = 1 + 0j) -> int:
        return self.complex_table.lookup_id(weight)

    def terminal_matrix_edge(self, weight: complex = 1 + 0j) -> int:
        return self.complex_table.lookup_id(weight)

    def basis_state(self, num_qubits: int, bits: int = 0) -> int:
        """The computational basis state ``|bits>`` on ``num_qubits``."""
        edge = ONE_EDGE
        for level in range(num_qubits):
            if (bits >> level) & 1:
                edge = self.make_vector_node(level, (ZERO_EDGE, edge))
            else:
                edge = self.make_vector_node(level, (edge, ZERO_EDGE))
        return edge

    def identity(self, num_qubits: int) -> int:
        """The identity matrix DD — linear in ``num_qubits``."""
        cached = self._identity_cache.get(num_qubits)
        if cached is not None:
            return cached
        edge = ONE_EDGE
        for level in range(num_qubits):
            edge = self.make_matrix_node(
                level, (edge, ZERO_EDGE, ZERO_EDGE, edge)
            )
        self._identity_cache[num_qubits] = edge
        return edge

    def layered_kron(self, num_qubits: int, factors) -> int:
        """Build ``F_{n-1} ⊗ ... ⊗ F_1 ⊗ F_0`` with identity defaults.

        ``factors`` maps qubit index to a 2x2 complex matrix; unspecified
        qubits contribute the identity (same contract as the object
        engine's ``layered_kron``).
        """
        lookup_id = self.complex_table.lookup_id
        values = self._values
        edge = ONE_EDGE
        for level in range(num_qubits):
            factor = factors.get(level)
            if factor is None:
                edge = self.make_matrix_node(
                    level, (edge, ZERO_EDGE, ZERO_EDGE, edge)
                )
                continue
            ew = edge & WEIGHT_MASK
            node_bits = (edge >> EDGE_SHIFT) << EDGE_SHIFT
            children = []
            for i in (0, 1):
                for j in (0, 1):
                    value = complex(factor[i][j])
                    if value == 0 or ew == 0:
                        children.append(ZERO_EDGE)
                    else:
                        children.append(
                            node_bits | lookup_id(value * values[ew])
                        )
            edge = self.make_matrix_node(level, children)
        return edge

    # ------------------------------------------------------------------
    # addition
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Matrix addition ``A + B``."""
        wa = a & WEIGHT_MASK
        if wa == 0:
            return b
        wb = b & WEIGHT_MASK
        if wb == 0:
            return a
        na = a >> EDGE_SHIFT
        nb = b >> EDGE_SHIFT
        if na == 0 and nb == 0:
            return self._wadd(wa, wb)
        # Canonical operand order for the cache.
        if na > nb:
            na, nb = nb, na
            wa, wb = wb, wa
        ratio = self._wdiv(wb, wa)
        key = (na, nb, ratio)
        cached = self._add_cache.get(key)
        if cached is not None:
            return ((cached >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(
                cached & WEIGHT_MASK, wa
            )
        levels = self.mat.levels
        if levels[na] != levels[nb]:
            raise ValueError("cannot add diagrams of different height")
        children_arr = self.mat.children
        weights_arr = self.mat.weights
        base_a = na * 4
        base_b = nb * 4
        children = []
        for k in range(4):
            children.append(
                self.add(
                    (children_arr[base_a + k] << EDGE_SHIFT)
                    | weights_arr[base_a + k],
                    (children_arr[base_b + k] << EDGE_SHIFT)
                    | self._wmul(weights_arr[base_b + k], ratio),
                )
            )
        result = self.make_matrix_node(levels[na], children)
        self._add_cache.put(key, result)
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(
            result & WEIGHT_MASK, wa
        )

    def add_vectors(self, a: int, b: int) -> int:
        """Vector addition ``|a> + |b>``."""
        wa = a & WEIGHT_MASK
        if wa == 0:
            return b
        wb = b & WEIGHT_MASK
        if wb == 0:
            return a
        na = a >> EDGE_SHIFT
        nb = b >> EDGE_SHIFT
        if na == 0 and nb == 0:
            return self._wadd(wa, wb)
        if na > nb:
            na, nb = nb, na
            wa, wb = wb, wa
        ratio = self._wdiv(wb, wa)
        key = (na, nb, ratio)
        cached = self._add_vec_cache.get(key)
        if cached is not None:
            return ((cached >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(
                cached & WEIGHT_MASK, wa
            )
        levels = self.vec.levels
        if levels[na] != levels[nb]:
            raise ValueError("cannot add diagrams of different height")
        children_arr = self.vec.children
        weights_arr = self.vec.weights
        base_a = na * 2
        base_b = nb * 2
        children = []
        for k in range(2):
            children.append(
                self.add_vectors(
                    (children_arr[base_a + k] << EDGE_SHIFT)
                    | weights_arr[base_a + k],
                    (children_arr[base_b + k] << EDGE_SHIFT)
                    | self._wmul(weights_arr[base_b + k], ratio),
                )
            )
        result = self.make_vector_node(levels[na], children)
        self._add_vec_cache.put(key, result)
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(
            result & WEIGHT_MASK, wa
        )

    # ------------------------------------------------------------------
    # multiplication
    # ------------------------------------------------------------------
    def multiply(self, a: int, b: int) -> int:
        """Matrix product ``A @ B``."""
        wa = a & WEIGHT_MASK
        wb = b & WEIGHT_MASK
        if wa == 0 or wb == 0:
            return ZERO_EDGE
        weight = self._wmul(wa, wb)
        result = self._multiply_nodes(a >> EDGE_SHIFT, b >> EDGE_SHIFT)
        rw = result & WEIGHT_MASK
        if rw == 0:
            return result
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(rw, weight)

    def _multiply_nodes(self, node_a: int, node_b: int) -> int:
        if node_a == 0 and node_b == 0:
            return ONE_EDGE
        key = (node_a, node_b)
        cached = self._mul_cache.get(key)
        if cached is not None:
            return cached
        levels = self.mat.levels
        if levels[node_a] != levels[node_b]:
            raise ValueError("cannot multiply diagrams of different height")
        children_arr = self.mat.children
        weights_arr = self.mat.weights
        base_a = node_a * 4
        base_b = node_b * 4
        children = []
        for i in (0, 1):
            row = base_a + 2 * i
            for j in (0, 1):
                term0 = self._scaled_multiply(
                    children_arr[row], weights_arr[row],
                    children_arr[base_b + j], weights_arr[base_b + j],
                )
                term1 = self._scaled_multiply(
                    children_arr[row + 1], weights_arr[row + 1],
                    children_arr[base_b + 2 + j], weights_arr[base_b + 2 + j],
                )
                children.append(self.add(term0, term1))
        result = self.make_matrix_node(levels[node_a], children)
        self._mul_cache.put(key, result)
        return result

    def _scaled_multiply(self, an: int, aw: int, bn: int, bw: int) -> int:
        if aw == 0 or bw == 0:
            return ZERO_EDGE
        sub = self._multiply_nodes(an, bn)
        sw = sub & WEIGHT_MASK
        if sw == 0:
            return sub
        return ((sub >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul3(sw, aw, bw)

    def multiply_matrix_vector(self, a: int, v: int) -> int:
        """Matrix-vector product ``A |v>`` (DD-based simulation step)."""
        wa = a & WEIGHT_MASK
        wv = v & WEIGHT_MASK
        if wa == 0 or wv == 0:
            return ZERO_EDGE
        weight = self._wmul(wa, wv)
        result = self._multiply_mv_nodes(a >> EDGE_SHIFT, v >> EDGE_SHIFT)
        rw = result & WEIGHT_MASK
        if rw == 0:
            return result
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(rw, weight)

    def _multiply_mv_nodes(self, node_a: int, node_v: int) -> int:
        if node_a == 0 and node_v == 0:
            return ONE_EDGE
        key = (node_a, node_v)
        cached = self._mul_vec_cache.get(key)
        if cached is not None:
            return cached
        if self.mat.levels[node_a] != self.vec.levels[node_v]:
            raise ValueError("cannot multiply diagrams of different height")
        m_children = self.mat.children
        m_weights = self.mat.weights
        v_children = self.vec.children
        v_weights = self.vec.weights
        base_a = node_a * 4
        base_v = node_v * 2
        children = []
        for i in (0, 1):
            row = base_a + 2 * i
            term0 = self._scaled_multiply_mv(
                m_children[row], m_weights[row],
                v_children[base_v], v_weights[base_v],
            )
            term1 = self._scaled_multiply_mv(
                m_children[row + 1], m_weights[row + 1],
                v_children[base_v + 1], v_weights[base_v + 1],
            )
            children.append(self.add_vectors(term0, term1))
        result = self.make_vector_node(self.mat.levels[node_a], children)
        self._mul_vec_cache.put(key, result)
        return result

    def _scaled_multiply_mv(self, an: int, aw: int, vn: int, vw: int) -> int:
        if aw == 0 or vw == 0:
            return ZERO_EDGE
        sub = self._multiply_mv_nodes(an, vn)
        sw = sub & WEIGHT_MASK
        if sw == 0:
            return sub
        return ((sub >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul3(sw, aw, vw)

    # ------------------------------------------------------------------
    # direct gate application (fast-path kernels)
    # ------------------------------------------------------------------
    def apply_gate_left(self, gate: int, target: int) -> int:
        """``(I ⊗ gate) @ target`` for a compact gate diagram."""
        wg = gate & WEIGHT_MASK
        wt = target & WEIGHT_MASK
        if wg == 0 or wt == 0:
            return ZERO_EDGE
        weight = self._wmul(wg, wt)
        result = self._apply_left_nodes(
            gate >> EDGE_SHIFT, target >> EDGE_SHIFT
        )
        rw = result & WEIGHT_MASK
        if rw == 0:
            return result
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(rw, weight)

    def _apply_left_nodes(self, gate_node: int, target_node: int) -> int:
        levels = self.mat.levels
        if levels[target_node] <= levels[gate_node]:
            return self._multiply_nodes(gate_node, target_node)
        key = (gate_node, target_node)
        cached = self._apply_left_cache.get(key)
        if cached is not None:
            return cached
        children_arr = self.mat.children
        weights_arr = self.mat.weights
        base = target_node * 4
        children = []
        for k in range(4):
            ew = weights_arr[base + k]
            if ew == 0:
                children.append(ZERO_EDGE)
                continue
            sub = self._apply_left_nodes(gate_node, children_arr[base + k])
            sw = sub & WEIGHT_MASK
            if sw == 0:
                children.append(ZERO_EDGE)
            else:
                children.append(
                    ((sub >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(sw, ew)
                )
        result = self.make_matrix_node(levels[target_node], children)
        self._apply_left_cache.put(key, result)
        return result

    def apply_gate_right(self, target: int, gate: int) -> int:
        """``target @ (I ⊗ gate)`` for a compact gate diagram."""
        wt = target & WEIGHT_MASK
        wg = gate & WEIGHT_MASK
        if wg == 0 or wt == 0:
            return ZERO_EDGE
        weight = self._wmul(wt, wg)
        result = self._apply_right_nodes(
            target >> EDGE_SHIFT, gate >> EDGE_SHIFT
        )
        rw = result & WEIGHT_MASK
        if rw == 0:
            return result
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(rw, weight)

    def _apply_right_nodes(self, target_node: int, gate_node: int) -> int:
        levels = self.mat.levels
        if levels[target_node] <= levels[gate_node]:
            return self._multiply_nodes(target_node, gate_node)
        key = (target_node, gate_node)
        cached = self._apply_right_cache.get(key)
        if cached is not None:
            return cached
        children_arr = self.mat.children
        weights_arr = self.mat.weights
        base = target_node * 4
        children = []
        for k in range(4):
            ew = weights_arr[base + k]
            if ew == 0:
                children.append(ZERO_EDGE)
                continue
            sub = self._apply_right_nodes(children_arr[base + k], gate_node)
            sw = sub & WEIGHT_MASK
            if sw == 0:
                children.append(ZERO_EDGE)
            else:
                children.append(
                    ((sub >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(sw, ew)
                )
        result = self.make_matrix_node(levels[target_node], children)
        self._apply_right_cache.put(key, result)
        return result

    def apply_gate_vector(self, gate: int, state: int) -> int:
        """``(I ⊗ gate) |state>`` for a compact gate diagram."""
        wg = gate & WEIGHT_MASK
        ws = state & WEIGHT_MASK
        if wg == 0 or ws == 0:
            return ZERO_EDGE
        weight = self._wmul(wg, ws)
        result = self._apply_vec_nodes(gate >> EDGE_SHIFT, state >> EDGE_SHIFT)
        rw = result & WEIGHT_MASK
        if rw == 0:
            return result
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(rw, weight)

    def _apply_vec_nodes(self, gate_node: int, state_node: int) -> int:
        if self.vec.levels[state_node] <= self.mat.levels[gate_node]:
            return self._multiply_mv_nodes(gate_node, state_node)
        key = (gate_node, state_node)
        cached = self._apply_vec_cache.get(key)
        if cached is not None:
            return cached
        children_arr = self.vec.children
        weights_arr = self.vec.weights
        base = state_node * 2
        children = []
        for k in range(2):
            ew = weights_arr[base + k]
            if ew == 0:
                children.append(ZERO_EDGE)
                continue
            sub = self._apply_vec_nodes(gate_node, children_arr[base + k])
            sw = sub & WEIGHT_MASK
            if sw == 0:
                children.append(ZERO_EDGE)
            else:
                children.append(
                    ((sub >> EDGE_SHIFT) << EDGE_SHIFT) | self._wmul(sw, ew)
                )
        result = self.make_vector_node(self.vec.levels[state_node], children)
        self._apply_vec_cache.put(key, result)
        return result

    # ------------------------------------------------------------------
    # conjugation, traces, inner products
    # ------------------------------------------------------------------
    def conjugate_transpose(self, a: int) -> int:
        """The adjoint ``A†`` of a matrix diagram."""
        wa = a & WEIGHT_MASK
        if wa == 0:
            return a
        result = self._conjugate_node(a >> EDGE_SHIFT)
        return ((result >> EDGE_SHIFT) << EDGE_SHIFT) | self._wconjmul(
            result & WEIGHT_MASK, wa
        )

    def _conjugate_node(self, node: int) -> int:
        if node == 0:
            return ONE_EDGE
        cached = self._conj_cache.get(node)
        if cached is not None:
            return cached
        children_arr = self.mat.children
        weights_arr = self.mat.weights
        base = node * 4
        children = []
        # adjoint: transpose block positions (swap 01 and 10), conjugate weights
        for k in (0, 2, 1, 3):
            ew = weights_arr[base + k]
            if ew == 0:
                children.append(ZERO_EDGE)
                continue
            sub = self._conjugate_node(children_arr[base + k])
            children.append(
                ((sub >> EDGE_SHIFT) << EDGE_SHIFT)
                | self._wconjmul(sub & WEIGHT_MASK, ew)
            )
        result = self.make_matrix_node(self.mat.levels[node], children)
        self._conj_cache.put(node, result)
        return result

    def trace(self, a: int) -> complex:
        """The trace of a matrix diagram."""
        wa = a & WEIGHT_MASK
        if wa == 0:
            return 0j
        return self._values[wa] * self._trace_node(a >> EDGE_SHIFT)

    def _trace_node(self, node: int) -> complex:
        if node == 0:
            return 1 + 0j
        cached = self._trace_cache.get(node)
        if cached is not None:
            return cached
        children_arr = self.mat.children
        weights_arr = self.mat.weights
        values = self._values
        base = node * 4
        value = 0j
        w0 = weights_arr[base]
        if w0 != 0:
            value += values[w0] * self._trace_node(children_arr[base])
        w3 = weights_arr[base + 3]
        if w3 != 0:
            value += values[w3] * self._trace_node(children_arr[base + 3])
        self._trace_cache.put(node, value)
        return value

    def inner_product(self, a: int, b: int) -> complex:
        """The inner product ``<a|b>`` of two vector diagrams."""
        wa = a & WEIGHT_MASK
        wb = b & WEIGHT_MASK
        if wa == 0 or wb == 0:
            return 0j
        values = self._values
        return (
            values[wa].conjugate()
            * values[wb]
            * self._inner_nodes(a >> EDGE_SHIFT, b >> EDGE_SHIFT)
        )

    def _inner_nodes(self, node_a: int, node_b: int) -> complex:
        if node_a == 0 and node_b == 0:
            return 1 + 0j
        key = (node_a, node_b)
        cached = self._inner_cache.get(key)
        if cached is not None:
            return cached
        children_arr = self.vec.children
        weights_arr = self.vec.weights
        values = self._values
        base_a = node_a * 2
        base_b = node_b * 2
        value = 0j
        for k in (0, 1):
            aw = weights_arr[base_a + k]
            bw = weights_arr[base_b + k]
            if aw != 0 and bw != 0:
                value += (
                    values[aw].conjugate()
                    * values[bw]
                    * self._inner_nodes(
                        children_arr[base_a + k], children_arr[base_b + k]
                    )
                )
        self._inner_cache.put(key, value)
        return value

    def fidelity(self, a: int, b: int) -> float:
        """``|<a|b>|^2`` between two (normalized) state diagrams."""
        overlap = self.inner_product(a, b)
        return abs(overlap) ** 2

    # ------------------------------------------------------------------
    # equivalence predicates
    # ------------------------------------------------------------------
    def is_identity(
        self, a: int, num_qubits: int, up_to_global_phase: bool = True
    ) -> bool:
        """Structural identity test against the canonical identity DD."""
        identity = self.identity(num_qubits)
        if a >> EDGE_SHIFT != identity >> EDGE_SHIFT:
            return False
        weight = self._values[a & WEIGHT_MASK]
        if up_to_global_phase:
            return abs(abs(weight) - 1.0) <= 16 * self.tolerance
        return abs(weight - 1.0) <= 16 * self.tolerance

    def hilbert_schmidt_fidelity(self, a: int, num_qubits: int) -> float:
        """``|tr(A)| / 2^n`` — 1.0 iff ``A`` is a global-phase identity."""
        return abs(self.trace(a)) / float(2**num_qubits)
