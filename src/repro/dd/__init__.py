"""Quantum multiple-valued decision diagrams (QMDDs).

A pure-Python re-implementation of the decision-diagram package underlying
QCEC (Section 4 of the paper): edge-weighted, normalized, canonical decision
diagrams for quantum state vectors and unitary matrices, with

* a tolerance-aware *complex table* that merges numerically close edge
  weights (the mechanism whose failure under rounding errors causes the DD
  blow-up discussed in Section 6.2),
* *unique tables* that guarantee canonicity — two equal (sub-)functions are
  represented by the very same node object, and
* *compute tables* memoizing addition, multiplication, conjugation, traces
  and inner products.

The package ships **two engines** with one algebra:

* :class:`~repro.dd.package.DDPackage` — the legacy object engine
  (``VNode``/``MNode`` objects, edge objects, dict unique tables);
* :class:`~repro.dd.array_package.ArrayDDPackage` — the array-native
  engine (struct-of-arrays node store, packed integer edges,
  open-addressed unique tables), the default via
  ``Configuration.array_dd``.

Both operate on the shared circuit IR of :mod:`repro.circuit`; the gate
constructors in :mod:`repro.dd.gates` are engine-polymorphic and
:mod:`repro.dd.array_gates` adds batched column simulation.
"""

from repro.dd.array_package import ArrayDDPackage
from repro.dd.array_store import NodeStore
from repro.dd.complex_table import ComplexTable, DEFAULT_TOLERANCE
from repro.dd.compute_table import ComputeTable, DEFAULT_COMPUTE_TABLE_SIZE
from repro.dd.node import MEdge, MNode, VEdge, VNode, TERMINAL
from repro.dd.package import DDPackage
from repro.dd.export import (
    edge_to_matrix,
    edge_to_vector,
    matrix_dd_size,
    matrix_signature,
    vector_dd_size,
    vector_signature,
)

__all__ = [
    "ArrayDDPackage",
    "ComplexTable",
    "ComputeTable",
    "DEFAULT_COMPUTE_TABLE_SIZE",
    "DEFAULT_TOLERANCE",
    "DDPackage",
    "MEdge",
    "MNode",
    "NodeStore",
    "VEdge",
    "VNode",
    "TERMINAL",
    "edge_to_matrix",
    "edge_to_vector",
    "matrix_dd_size",
    "matrix_signature",
    "vector_dd_size",
    "vector_signature",
]
