"""Struct-of-arrays node storage for the array-native DD engine.

The object engine (:mod:`repro.dd.package`) represents every node as a
``VNode``/``MNode`` instance holding a tuple of edge objects, and keys its
unique tables on ``id()``s of those objects.  At kernel throughput that
representation pays an allocation, a pointer chase and a refcount dance
per edge touched.  :class:`NodeStore` replaces it with a struct-of-arrays
layout addressed by dense integer *handles*:

* ``levels``   — one entry per node: the decided qubit level,
* ``children`` — ``arity`` child handles per node (flat, stride ``arity``),
* ``weights``  — ``arity`` interned complex-weight ids per node
  (:meth:`repro.dd.complex_table.ComplexTable.lookup_id`).

Handle ``0`` is the shared terminal (level ``-1``, all fields zero).
Canonicity is enforced by an **open-addressed, array-backed unique
table**: a power-of-two numpy ``int64`` slot/hash array pair probed
linearly.  A lookup hashes the packed ``(level, child/weight...)`` key,
walks the probe chain, and verifies candidates against the field arrays —
so a 64-bit hash collision can never alias two distinct nodes.  The slot
array doubles (and re-seeds from the per-node hash array) past a 2/3 load
factor; the field arrays grow by appending, and **nodes are never
evicted** — exactly the contract of the object engine's dict-backed
unique tables.

The hot node fields live in flat Python integer lists rather than numpy
arrays: the kernels read a handful of *individual* elements per recursion
step, and CPython boxes every ``ndarray[i]`` access into a fresh numpy
scalar (~3-4x the cost of a list read).  numpy backs the structures that
are genuinely array-shaped — the unique table's slot/hash arrays and the
:meth:`NodeStore.as_arrays` export view used by rendering and
diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: Initial slot count of the open-addressed unique table (power of two).
INITIAL_SLOT_CAPACITY = 1 << 12

#: Python's tuple hash is a signed 64-bit value; fold it into the
#: non-negative int64 domain so numpy storage and masking stay trivial.
_HASH_MASK = (1 << 63) - 1


def _round_up_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power <<= 1
    return power


class NodeStore:
    """Canonical node storage for one node kind (vector or matrix).

    Args:
        arity: Successors per node — 2 for vector nodes, 4 for matrix
            nodes.
        slot_capacity: Initial open-addressed table size (rounded up to a
            power of two).  Tiny values are legal and exercised by the
            collision/growth stress tests; the table grows automatically.
    """

    __slots__ = (
        "arity", "levels", "children", "weights", "_node_hash",
        "_mask", "_slots", "_hashes", "_filled",
        "lookups", "hits", "collisions", "grows",
    )

    def __init__(
        self, arity: int, slot_capacity: int = INITIAL_SLOT_CAPACITY
    ) -> None:
        if arity < 2:
            raise ValueError("node arity must be at least 2")
        if slot_capacity < 1:
            raise ValueError("slot capacity must be positive")
        self.arity = arity
        # Handle 0 is the terminal: level -1, zeroed child/weight rows.
        self.levels: List[int] = [-1]
        self.children: List[int] = [0] * arity
        self.weights: List[int] = [0] * arity
        self._node_hash: List[int] = [0]
        capacity = _round_up_power_of_two(slot_capacity)
        self._mask = capacity - 1
        self._slots = np.full(capacity, -1, dtype=np.int64)
        self._hashes = np.zeros(capacity, dtype=np.int64)
        self._filled = 0
        self.lookups = 0
        self.hits = 0
        self.collisions = 0
        self.grows = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Total nodes including the terminal."""
        return len(self.levels)

    @property
    def num_nodes(self) -> int:
        """Unique non-terminal nodes stored."""
        return len(self.levels) - 1

    @property
    def slot_capacity(self) -> int:
        """Current open-addressed table size."""
        return self._mask + 1

    def _matches(self, handle: int, level: int, fields: Tuple[int, ...]) -> bool:
        if self.levels[handle] != level:
            return False
        base = handle * self.arity
        children = self.children
        weights = self.weights
        for k in range(self.arity):
            index = 2 * k
            if (
                children[base + k] != fields[index]
                or weights[base + k] != fields[index + 1]
            ):
                return False
        return True

    def lookup_or_insert(
        self, level: int, fields: Tuple[int, ...]
    ) -> Tuple[int, bool]:
        """Return ``(handle, created)`` for the node with the given fields.

        ``fields`` interleaves child handles and weight ids:
        ``(c0, w0, c1, w1, ...)`` with exactly ``arity`` pairs.
        """
        key_hash = hash((level,) + fields) & _HASH_MASK
        self.lookups += 1
        mask = self._mask
        slots = self._slots
        hashes = self._hashes
        index = key_hash & mask
        while True:
            handle = int(slots[index])
            if handle < 0:
                break
            if int(hashes[index]) == key_hash and self._matches(
                handle, level, fields
            ):
                self.hits += 1
                return handle, False
            self.collisions += 1
            index = (index + 1) & mask
        handle = len(self.levels)
        self.levels.append(level)
        self.children.extend(fields[0::2])
        self.weights.extend(fields[1::2])
        self._node_hash.append(key_hash)
        slots[index] = handle
        hashes[index] = key_hash
        self._filled += 1
        if 3 * self._filled > 2 * (mask + 1):
            self._grow()
        return handle, True

    def _grow(self) -> None:
        """Double the slot array and re-seed it from the stored hashes."""
        capacity = (self._mask + 1) * 2
        mask = capacity - 1
        slots = np.full(capacity, -1, dtype=np.int64)
        hashes = np.zeros(capacity, dtype=np.int64)
        node_hash = self._node_hash
        for handle in range(1, len(self.levels)):
            key_hash = node_hash[handle]
            index = key_hash & mask
            while slots[index] >= 0:
                index = (index + 1) & mask
            slots[index] = handle
            hashes[index] = key_hash
        self._mask = mask
        self._slots = slots
        self._hashes = hashes
        self.grows += 1

    # ------------------------------------------------------------------
    def as_arrays(self) -> Dict[str, np.ndarray]:
        """numpy int32 struct-of-arrays view (levels, children, weights).

        ``children``/``weights`` come back shaped ``(num_nodes + 1,
        arity)`` with row 0 the terminal — the layout rendered by
        :mod:`repro.dd.export` and the architecture docs.
        """
        count = len(self.levels)
        return {
            "levels": np.asarray(self.levels, dtype=np.int32),
            "children": np.asarray(
                self.children, dtype=np.int32
            ).reshape(count, self.arity),
            "weights": np.asarray(
                self.weights, dtype=np.int32
            ).reshape(count, self.arity),
        }

    def stats(self) -> Dict[str, int]:
        """Growth and probe counters for the perf layer."""
        return {
            "nodes": self.num_nodes,
            "slot_capacity": self.slot_capacity,
            "lookups": self.lookups,
            "hits": self.hits,
            "collisions": self.collisions,
            "grows": self.grows,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeStore(arity={self.arity}, nodes={self.num_nodes}, "
            f"slots={self.slot_capacity})"
        )
