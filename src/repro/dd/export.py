"""Exporting decision diagrams to dense arrays and size statistics.

Dense export is exponential and exists for testing and for the small
illustrative figures (paper Fig. 1b / Fig. 3); size statistics drive the
DD-growth experiments of Section 6.2.

Every exporter accepts edges from **either engine**: legacy object edges
(:class:`~repro.dd.node.VEdge` / :class:`~repro.dd.node.MEdge`) need no
extra context, while the array engine's packed integer edges carry no
back-pointer to their node store, so the owning
:class:`~repro.dd.array_package.ArrayDDPackage` must be passed as
``pkg``.  The :func:`vector_signature` / :func:`matrix_signature` helpers
produce engine-independent canonical trees — two diagrams built over a
*shared* complex table compare bit-identically through them, which is how
the engine-agreement tests and benchmarks assert ``roots_identical``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.dd.array_package import (
    ArrayDDPackage,
    EDGE_SHIFT,
    WEIGHT_MASK,
)
from repro.dd.array_store import NodeStore
from repro.dd.node import MEdge, TERMINAL, VEdge


def _require_package(pkg: Optional[ArrayDDPackage]) -> ArrayDDPackage:
    if pkg is None:
        raise ValueError(
            "packed integer edges carry no node-store reference; pass the "
            "owning ArrayDDPackage as pkg="
        )
    return pkg


def edge_to_vector(
    edge, num_qubits: int, pkg: Optional[ArrayDDPackage] = None
) -> np.ndarray:
    """Expand a vector diagram into a dense ``2^n`` numpy array."""
    out = np.zeros(2**num_qubits, dtype=complex)
    if isinstance(edge, int):
        _fill_vector_handle(_require_package(pkg), edge, 0, 1 + 0j, out)
    else:
        _fill_vector(edge, 0, 1 + 0j, out)
    return out


def _fill_vector(edge: VEdge, offset: int, factor: complex, out: np.ndarray) -> None:
    if edge.is_zero:
        return
    factor = factor * edge.weight
    if edge.node is TERMINAL:
        out[offset] += factor
        return
    node = edge.node
    half = 1 << node.level
    _fill_vector(node.edges[0], offset, factor, out)
    _fill_vector(node.edges[1], offset + half, factor, out)


def _fill_vector_handle(
    pkg: ArrayDDPackage, edge: int, offset: int, factor: complex, out: np.ndarray
) -> None:
    wid = edge & WEIGHT_MASK
    if wid == 0:
        return
    factor = factor * pkg.weight_value(wid)
    handle = edge >> EDGE_SHIFT
    if handle == 0:
        out[offset] += factor
        return
    store = pkg.vec
    half = 1 << store.levels[handle]
    base = handle * 2
    _fill_vector_handle(
        pkg,
        (store.children[base] << EDGE_SHIFT) | store.weights[base],
        offset, factor, out,
    )
    _fill_vector_handle(
        pkg,
        (store.children[base + 1] << EDGE_SHIFT) | store.weights[base + 1],
        offset + half, factor, out,
    )


def edge_to_matrix(
    edge, num_qubits: int, pkg: Optional[ArrayDDPackage] = None
) -> np.ndarray:
    """Expand a matrix diagram into a dense ``2^n x 2^n`` numpy array."""
    dim = 2**num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    if isinstance(edge, int):
        _fill_matrix_handle(_require_package(pkg), edge, 0, 0, 1 + 0j, out)
    else:
        _fill_matrix(edge, 0, 0, 1 + 0j, out)
    return out


def _fill_matrix(
    edge: MEdge, row: int, col: int, factor: complex, out: np.ndarray
) -> None:
    if edge.is_zero:
        return
    factor = factor * edge.weight
    if edge.node is TERMINAL:
        out[row, col] += factor
        return
    node = edge.node
    half = 1 << node.level
    _fill_matrix(node.edges[0], row, col, factor, out)
    _fill_matrix(node.edges[1], row, col + half, factor, out)
    _fill_matrix(node.edges[2], row + half, col, factor, out)
    _fill_matrix(node.edges[3], row + half, col + half, factor, out)


def _fill_matrix_handle(
    pkg: ArrayDDPackage,
    edge: int,
    row: int,
    col: int,
    factor: complex,
    out: np.ndarray,
) -> None:
    wid = edge & WEIGHT_MASK
    if wid == 0:
        return
    factor = factor * pkg.weight_value(wid)
    handle = edge >> EDGE_SHIFT
    if handle == 0:
        out[row, col] += factor
        return
    store = pkg.mat
    half = 1 << store.levels[handle]
    base = handle * 4
    for k, (dr, dc) in enumerate(((0, 0), (0, half), (half, 0), (half, half))):
        _fill_matrix_handle(
            pkg,
            (store.children[base + k] << EDGE_SHIFT) | store.weights[base + k],
            row + dr, col + dc, factor, out,
        )


def vector_dd_size(edge, pkg: Optional[ArrayDDPackage] = None) -> int:
    """Number of distinct non-terminal nodes reachable from ``edge``."""
    if isinstance(edge, int):
        return _require_package(pkg).vector_dd_size(edge)
    seen: Set[int] = set()
    _count_vector(edge, seen)
    return len(seen)


def _count_vector(edge: VEdge, seen: Set[int]) -> None:
    node = edge.node
    if node is TERMINAL or edge.is_zero or id(node) in seen:
        return
    seen.add(id(node))
    for child in node.edges:
        _count_vector(child, seen)


def matrix_dd_size(edge, pkg: Optional[ArrayDDPackage] = None) -> int:
    """Number of distinct non-terminal nodes reachable from ``edge``.

    This is the "size of the decision diagram" metric of the paper's
    Section 6.2 discussion (the quantity that blows up under numerical
    noise for arbitrary-angle circuits).
    """
    if isinstance(edge, int):
        return _require_package(pkg).matrix_dd_size(edge)
    seen: Set[int] = set()
    _count_matrix(edge, seen)
    return len(seen)


def _count_matrix(edge: MEdge, seen: Set[int]) -> None:
    node = edge.node
    if node is TERMINAL or edge.is_zero or id(node) in seen:
        return
    seen.add(id(node))
    for child in node.edges:
        _count_matrix(child, seen)


# ----------------------------------------------------------------------
# engine-independent canonical signatures
# ----------------------------------------------------------------------
# Signatures are hash-consed: every distinct (level, child signatures)
# structure ever signed interns to one small integer id in a process-wide
# table, so a signature is just ``(root weight, structure id)`` and
# comparing two of them is O(1).  Naively materialising nested tuples
# instead would make *equality* exponential — a 65-level identity chain
# shares each subtree twice per level, and tuple comparison across two
# separately built trees gets no identity shortcut.
_SIG_TERMINAL = 0
_sig_intern: Dict[Tuple, int] = {}


def _intern_signature(key: Tuple) -> int:
    sid = _sig_intern.get(key)
    if sid is None:
        sid = len(_sig_intern) + 1
        _sig_intern[key] = sid
    return sid


def vector_signature(edge, pkg: Optional[ArrayDDPackage] = None) -> Tuple:
    """Canonical ``(weight, structure id)`` form of a vector diagram.

    Two diagrams — possibly from *different* engines — have equal
    signatures iff they have the same structure and the same canonical
    edge weights.  Build both over one shared
    :class:`~repro.dd.complex_table.ComplexTable` for the weights to be
    bit-comparable.
    """
    if isinstance(edge, int):
        return _signature_handle(
            _require_package(pkg), _require_package(pkg).vec, edge, {}
        )
    return _signature_object(edge, {})


def matrix_signature(edge, pkg: Optional[ArrayDDPackage] = None) -> Tuple:
    """Canonical ``(weight, structure id)`` form of a matrix diagram
    (see :func:`vector_signature`)."""
    if isinstance(edge, int):
        return _signature_handle(
            _require_package(pkg), _require_package(pkg).mat, edge, {}
        )
    return _signature_object(edge, {})


def _signature_object(edge, memo: Dict[int, int]) -> Tuple:
    if edge.is_zero:
        return (0j, _SIG_TERMINAL)
    node = edge.node
    if node is TERMINAL:
        return (edge.weight, _SIG_TERMINAL)
    sid = memo.get(id(node))
    if sid is None:
        key = (node.level,) + tuple(
            _signature_object(child, memo) for child in node.edges
        )
        sid = _intern_signature(key)
        memo[id(node)] = sid
    return (edge.weight, sid)


def _signature_handle(
    pkg: ArrayDDPackage, store: NodeStore, edge: int, memo: Dict[int, int]
) -> Tuple:
    wid = edge & WEIGHT_MASK
    if wid == 0:
        return (0j, _SIG_TERMINAL)
    weight = pkg.weight_value(wid)
    handle = edge >> EDGE_SHIFT
    if handle == 0:
        return (weight, _SIG_TERMINAL)
    sid = memo.get(handle)
    if sid is None:
        arity = store.arity
        base = handle * arity
        key = (store.levels[handle],) + tuple(
            _signature_handle(
                pkg,
                store,
                (store.children[base + k] << EDGE_SHIFT)
                | store.weights[base + k],
                memo,
            )
            for k in range(arity)
        )
        sid = _intern_signature(key)
        memo[handle] = sid
    return (weight, sid)


# ----------------------------------------------------------------------
# Graphviz rendering
# ----------------------------------------------------------------------
def matrix_dd_to_dot(
    edge, name: str = "dd", pkg: Optional[ArrayDDPackage] = None
) -> str:
    """Graphviz DOT rendering of a matrix decision diagram.

    Follows the visualization style of Wille et al., "Visualizing decision
    diagrams for quantum computing" (reference [37] of the paper): edge
    labels carry the complex weights, node labels the decided qubit level,
    and the four outgoing edges are ordered ``(00, 01, 10, 11)``.
    Accepts both engines; packed integer edges additionally need ``pkg``.
    """
    if isinstance(edge, int):
        package = _require_package(pkg)
        store = package.mat
        entry = (
            None
            if edge & WEIGHT_MASK == 0
            else (edge >> EDGE_SHIFT, package.weight_value(edge & WEIGHT_MASK))
        )

        def children_of(handle: int):
            base = handle * 4
            for k in range(4):
                wid = store.weights[base + k]
                if wid != 0:
                    yield k, store.children[base + k], package.weight_value(wid)

        def level_of(handle: int) -> int:
            return store.levels[handle]

        terminal_token = 0
    else:
        entry = None if edge.is_zero else (edge.node, edge.weight)

        def children_of(node):
            for k, child in enumerate(node.edges):
                if not child.is_zero:
                    yield k, child.node, child.weight

        def level_of(node) -> int:
            return node.level

        terminal_token = TERMINAL

    def is_terminal(node) -> bool:
        if isinstance(node, int):
            return node == terminal_token
        return node is terminal_token

    lines = [f"digraph {name} {{", "  rankdir=TB;", '  root [shape=point];']
    ids: Dict[object, str] = {}

    def node_id(node) -> str:
        if is_terminal(node):
            return "terminal"
        key = node if isinstance(node, int) else id(node)
        if key not in ids:
            ids[key] = f"n{len(ids)}"
        return ids[key]

    def weight_label(weight: complex) -> str:
        return f"{weight.real:.4g}{weight.imag:+.4g}i"

    visited = set()

    def walk(node) -> None:
        if is_terminal(node):
            return
        key = node if isinstance(node, int) else id(node)
        if key in visited:
            return
        visited.add(key)
        lines.append(
            f'  {node_id(node)} [label="q{level_of(node)}", shape=circle];'
        )
        for index, child, weight in children_of(node):
            label = f"{index >> 1}{index & 1}"
            lines.append(
                f"  {node_id(node)} -> {node_id(child)} "
                f'[label="{label}: {weight_label(weight)}"];'
            )
            walk(child)

    lines.append('  terminal [label="1", shape=box];')
    if entry is not None:
        root_node, root_weight = entry
        lines.append(
            f"  root -> {node_id(root_node)} "
            f'[label="{weight_label(root_weight)}"];'
        )
        walk(root_node)
    lines.append("}")
    return "\n".join(lines)
