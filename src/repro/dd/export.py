"""Exporting decision diagrams to dense arrays and size statistics.

Dense export is exponential and exists for testing and for the small
illustrative figures (paper Fig. 1b / Fig. 3); size statistics drive the
DD-growth experiments of Section 6.2.
"""

from __future__ import annotations

from typing import Set

import numpy as np

from repro.dd.node import MEdge, TERMINAL, VEdge


def edge_to_vector(edge: VEdge, num_qubits: int) -> np.ndarray:
    """Expand a vector diagram into a dense ``2^n`` numpy array."""
    out = np.zeros(2**num_qubits, dtype=complex)
    _fill_vector(edge, 0, 1 + 0j, out)
    return out


def _fill_vector(edge: VEdge, offset: int, factor: complex, out: np.ndarray) -> None:
    if edge.is_zero:
        return
    factor = factor * edge.weight
    if edge.node is TERMINAL:
        out[offset] += factor
        return
    node = edge.node
    half = 1 << node.level
    _fill_vector(node.edges[0], offset, factor, out)
    _fill_vector(node.edges[1], offset + half, factor, out)


def edge_to_matrix(edge: MEdge, num_qubits: int) -> np.ndarray:
    """Expand a matrix diagram into a dense ``2^n x 2^n`` numpy array."""
    dim = 2**num_qubits
    out = np.zeros((dim, dim), dtype=complex)
    _fill_matrix(edge, 0, 0, 1 + 0j, out)
    return out


def _fill_matrix(
    edge: MEdge, row: int, col: int, factor: complex, out: np.ndarray
) -> None:
    if edge.is_zero:
        return
    factor = factor * edge.weight
    if edge.node is TERMINAL:
        out[row, col] += factor
        return
    node = edge.node
    half = 1 << node.level
    _fill_matrix(node.edges[0], row, col, factor, out)
    _fill_matrix(node.edges[1], row, col + half, factor, out)
    _fill_matrix(node.edges[2], row + half, col, factor, out)
    _fill_matrix(node.edges[3], row + half, col + half, factor, out)


def vector_dd_size(edge: VEdge) -> int:
    """Number of distinct non-terminal nodes reachable from ``edge``."""
    seen: Set[int] = set()
    _count_vector(edge, seen)
    return len(seen)


def _count_vector(edge: VEdge, seen: Set[int]) -> None:
    node = edge.node
    if node is TERMINAL or edge.is_zero or id(node) in seen:
        return
    seen.add(id(node))
    for child in node.edges:
        _count_vector(child, seen)


def matrix_dd_size(edge: MEdge) -> int:
    """Number of distinct non-terminal nodes reachable from ``edge``.

    This is the "size of the decision diagram" metric of the paper's
    Section 6.2 discussion (the quantity that blows up under numerical
    noise for arbitrary-angle circuits).
    """
    seen: Set[int] = set()
    _count_matrix(edge, seen)
    return len(seen)


def _count_matrix(edge: MEdge, seen: Set[int]) -> None:
    node = edge.node
    if node is TERMINAL or edge.is_zero or id(node) in seen:
        return
    seen.add(id(node))
    for child in node.edges:
        _count_matrix(child, seen)


def matrix_dd_to_dot(edge: MEdge, name: str = "dd") -> str:
    """Graphviz DOT rendering of a matrix decision diagram.

    Follows the visualization style of Wille et al., "Visualizing decision
    diagrams for quantum computing" (reference [37] of the paper): edge
    labels carry the complex weights, node labels the decided qubit level,
    and the four outgoing edges are ordered ``(00, 01, 10, 11)``.
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", '  root [shape=point];']
    ids = {}

    def node_id(node) -> str:
        if node is TERMINAL:
            return "terminal"
        if id(node) not in ids:
            ids[id(node)] = f"n{len(ids)}"
        return ids[id(node)]

    def weight_label(weight: complex) -> str:
        return f"{weight.real:.4g}{weight.imag:+.4g}i"

    visited = set()

    def walk(current: MEdge) -> None:
        node = current.node
        if node is TERMINAL or id(node) in visited:
            return
        visited.add(id(node))
        lines.append(
            f'  {node_id(node)} [label="q{node.level}", shape=circle];'
        )
        for index, child in enumerate(node.edges):
            if child.is_zero:
                continue
            label = f"{index >> 1}{index & 1}"
            lines.append(
                f"  {node_id(node)} -> {node_id(child.node)} "
                f'[label="{label}: {weight_label(child.weight)}"];'
            )
            walk(child)

    lines.append('  terminal [label="1", shape=box];')
    if not edge.is_zero:
        lines.append(
            f"  root -> {node_id(edge.node)} "
            f'[label="{weight_label(edge.weight)}"];'
        )
        walk(edge)
    lines.append("}")
    return "\n".join(lines)
