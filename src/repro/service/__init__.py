"""Supervised equivalence-checking service.

Long-lived worker pool (:mod:`repro.service.pool`), content-addressed
crash-safe verdict cache (:mod:`repro.service.cache`), poison-pair
quarantine (:mod:`repro.service.quarantine`), the local-socket batch
API (:mod:`repro.service.server`) and the deterministic chaos-soak
acceptance campaign (:mod:`repro.service.soak`).
"""

from repro.service.cache import VerdictCache, cache_key, configuration_fingerprint
from repro.service.pool import PoolConfig, WorkerPool
from repro.service.quarantine import QuarantineStore
from repro.service.server import ServiceClient, ServiceServer
from repro.service.soak import SoakReport, SoakSettings, run_soak

__all__ = [
    "PoolConfig",
    "QuarantineStore",
    "ServiceClient",
    "ServiceServer",
    "SoakReport",
    "SoakSettings",
    "VerdictCache",
    "WorkerPool",
    "cache_key",
    "configuration_fingerprint",
    "run_soak",
]
