"""Deterministic chaos-soak campaign against the supervised service.

The soak is the service's acceptance gate: a seeded stream of fuzz
pairs is pushed through a :class:`~repro.service.pool.WorkerPool` while
worker-targeted faults fire — one-shot SIGKILL crashes, non-cooperative
hangs that only the supervisor's deadline SIGKILL ends, and retained
memory leaks that must trip RSS recycling — plus a configurable number
of *planted poison pairs* whose faults re-fire on every retry.  The
campaign then audits the wreckage against hard invariants:

* **Zero lost jobs** — every submission resolves to a result.
* **Zero zombies** — every process the pool ever spawned is reaped
  (``waitpid``-backed :meth:`WorkerPool.audit`).
* **Verdict parity** — every fault-free (and every *transiently*
  faulted) job's verdict equals a direct in-process
  :func:`repro.harness.run_check` of the same pair; planted poison
  pairs degrade exactly as the one-shot sandbox degrades persistent
  faults (hang → ``TIMEOUT``, crash → ``NO_INFORMATION``).
* **Bounded quarantine** — exactly the planted poison pairs are
  quarantined, nothing else.
* **Cache fidelity** — resubmitting the clean jobs is answered from
  the verdict cache with payload-identical results.

Everything is derived from one seed (fault placement included), so a
failing campaign is replayable bit-for-bit with ``repro soak --seed N``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.errors import RetryPolicy
from repro.fuzz.generator import FAMILIES, generate_instance
from repro.harness.chaos import ChaosSpec
from repro.harness.sandbox import run_check
from repro.service.cache import VerdictCache
from repro.service.pool import PoolConfig, WorkerPool

#: Transient worker-targeted fault kinds the soak injects (one-shot:
#: the retry runs clean, so the job's final verdict must match the
#: direct baseline).  ``memory_ballooon`` is deliberately absent —
#: an OOM is *permanent* in the taxonomy and would legitimately change
#: the verdict, which the parity invariant forbids for transient faults.
TRANSIENT_FAULTS = ("crash", "hang", "leak")


@dataclass(frozen=True)
class SoakSettings:
    """One reproducible soak campaign.

    Attributes:
        seed: Master seed — pairs, fault placement and fault kinds all
            derive from it.
        jobs: Number of distinct fuzz pairs pushed through the pool.
        workers: Pool size under test.
        fault_rate: Fraction of jobs carrying a one-shot injected fault.
        poison_pairs: Planted persistent-fault jobs (alternating crash
            and hang) that must end up quarantined.
        check_timeout: Cooperative timeout per check, seconds.  Sized
            with generous headroom over the worst observed check time:
            the pool's workers time-share the host CPUs, so a check
            that takes milliseconds serially can take the better part
            of a second under full contention, and a timeout near that
            boundary turns scheduling jitter into verdict-parity
            flakes.  Injected hangs still resolve via the deadline
            SIGKILL, just ``check_timeout + grace`` later.
        grace: Hard-deadline grace on top of ``check_timeout``.
        leak_mb: Size of one injected leak; together with
            ``max_worker_rss_mb`` it forces RSS-threshold recycling.
        max_worker_rss_mb: Pool RSS recycling threshold during the
            soak.  Sized a few leaks above the worker's fault-free
            footprint (~50 MB) so that leak faults genuinely trip
            recycling while clean workers never do.
    """

    seed: int = 0
    jobs: int = 200
    workers: int = 4
    fault_rate: float = 0.15
    poison_pairs: int = 2
    check_timeout: float = 5.0
    grace: float = 0.75
    leak_mb: int = 48
    max_worker_rss_mb: float = 192.0

    def validate(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be positive")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be within [0, 1]")
        if self.poison_pairs < 0:
            raise ValueError("poison_pairs must be non-negative")


@dataclass
class SoakReport:
    """Audited outcome of one campaign; ``ok`` is the acceptance bit."""

    settings: SoakSettings
    submitted: int = 0
    resolved: int = 0
    lost_jobs: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    verdict_mismatches: List[Dict[str, object]] = field(default_factory=list)
    poison_mismatches: List[Dict[str, object]] = field(default_factory=list)
    cache_mismatches: List[Dict[str, object]] = field(default_factory=list)
    quarantined: int = 0
    expected_quarantined: int = 0
    cache_hits: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    workers_recycled: int = 0
    audit: Dict[str, object] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return (
            self.lost_jobs == 0
            and not self.verdict_mismatches
            and not self.poison_mismatches
            and not self.cache_mismatches
            and self.quarantined == self.expected_quarantined
            and int(self.audit.get("leaked", 1)) == 0
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "seed": self.settings.seed,
            "jobs": self.settings.jobs,
            "workers": self.settings.workers,
            "submitted": self.submitted,
            "resolved": self.resolved,
            "lost_jobs": self.lost_jobs,
            "faults_injected": dict(self.faults_injected),
            "verdict_mismatches": list(self.verdict_mismatches),
            "poison_mismatches": list(self.poison_mismatches),
            "cache_mismatches": list(self.cache_mismatches),
            "quarantined": self.quarantined,
            "expected_quarantined": self.expected_quarantined,
            "cache_hits": self.cache_hits,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "workers_recycled": self.workers_recycled,
            "audit": dict(self.audit),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
        }


def _comparable(payload: Dict[str, object]) -> Dict[str, object]:
    """A verdict payload minus per-run bookkeeping (pids, timings)."""
    out = dict(payload)
    out.pop("time", None)
    statistics = out.get("statistics")
    if isinstance(statistics, dict):
        statistics = dict(statistics)
        statistics.pop("service", None)
        statistics.pop("isolation", None)
        statistics.pop("perf", None)
        out["statistics"] = statistics
    return out


def _soak_configuration(settings: SoakSettings, index: int) -> Configuration:
    # A fixed per-job seed keeps stochastic strategies (simulation
    # stimuli) bit-reproducible between the pooled run and the baseline.
    return Configuration(
        timeout=settings.check_timeout,
        seed=1_000_000 + settings.seed * 10_007 + index,
        max_retries=1,
    )


def run_soak(
    settings: Optional[SoakSettings] = None,
    log: Callable[[str], None] = lambda _message: None,
) -> SoakReport:
    """Run one deterministic chaos campaign; never raises on faults."""
    settings = settings or SoakSettings()
    settings.validate()
    report = SoakReport(settings=settings)
    rng = random.Random(settings.seed)
    start = time.monotonic()

    log(
        f"soak: generating {settings.jobs} pairs "
        f"(+{settings.poison_pairs} poison) with seed {settings.seed}"
    )
    pairs: List[Tuple[QuantumCircuit, QuantumCircuit]] = []
    for index in range(settings.jobs):
        family = rng.choice(FAMILIES)
        _instance, pair = generate_instance(
            settings.seed * 100_000 + index, family=family
        )
        pairs.append((pair.circuit1, pair.circuit2))
    poison: List[Tuple[QuantumCircuit, QuantumCircuit, str]] = []
    for index in range(settings.poison_pairs):
        family = rng.choice(FAMILIES)
        _instance, pair = generate_instance(
            settings.seed * 100_000 + 50_000 + index, family=family
        )
        poison.append(
            (pair.circuit1, pair.circuit2,
             "crash" if index % 2 == 0 else "hang")
        )

    # Fault plan: seeded, fixed before anything runs.
    faults: List[Optional[ChaosSpec]] = []
    for index in range(settings.jobs):
        if rng.random() < settings.fault_rate:
            kind = rng.choice(TRANSIENT_FAULTS)
            faults.append(
                ChaosSpec(mode=kind, balloon_mb=settings.leak_mb)
                if kind == "leak"
                else ChaosSpec(mode=kind)
            )
        else:
            faults.append(None)
    for spec in faults:
        if spec is not None:
            report.faults_injected[spec.mode] = (
                report.faults_injected.get(spec.mode, 0) + 1
            )

    # Baseline: the same checks, direct and non-pooled, in this process.
    # Faulted jobs run their retries clean (one-shot faults), so the
    # baseline is always the fault-free verdict.
    log("soak: computing direct run_check baseline")
    baseline: List[Dict[str, object]] = []
    for index, (circuit1, circuit2) in enumerate(pairs):
        result = run_check(
            circuit1,
            circuit2,
            _soak_configuration(settings, index),
            isolate=False,
        )
        baseline.append(result.to_dict())

    cache = VerdictCache()
    pool = WorkerPool(
        PoolConfig(
            workers=settings.workers,
            grace=settings.grace,
            max_worker_rss_mb=settings.max_worker_rss_mb,
            poison_strikes=2,
            restart_backoff=RetryPolicy(
                max_retries=0,
                backoff_base=0.02,
                backoff_max=0.5,
                jitter=0.5,
                jitter_seed=settings.seed,
            ),
        ),
        cache=cache,
    )
    pool.start()
    try:
        log("soak: submitting campaign to the pool")
        job_ids = [
            pool.submit(circuit1, circuit2,
                        _soak_configuration(settings, index),
                        chaos=faults[index])
            for index, (circuit1, circuit2) in enumerate(pairs)
        ]
        poison_ids = [
            pool.submit(
                circuit1,
                circuit2,
                _soak_configuration(settings, settings.jobs + index),
                chaos=ChaosSpec(mode=kind, balloon_mb=settings.leak_mb),
                chaos_once=False,
            )
            for index, (circuit1, circuit2, kind) in enumerate(poison)
        ]
        report.submitted = len(job_ids) + len(poison_ids)
        pool.drain(timeout=600.0)

        # --- invariant: zero lost jobs --------------------------------
        results = [pool.result(job_id) for job_id in job_ids]
        poison_results = [pool.result(job_id) for job_id in poison_ids]
        report.resolved = sum(
            1 for r in results + poison_results if r is not None
        )
        report.lost_jobs = report.submitted - report.resolved

        # --- invariant: verdict parity with direct run_check ----------
        for index, result in enumerate(results):
            if result is None:  # pragma: no cover - counted above
                continue
            expected = baseline[index]["equivalence"]
            actual = result.to_dict()["equivalence"]
            if actual != expected:
                report.verdict_mismatches.append(
                    {
                        "job": index,
                        "fault": faults[index].mode
                        if faults[index] is not None
                        else None,
                        "expected": expected,
                        "actual": actual,
                    }
                )

        # --- invariant: poison pairs quarantined with sandbox-shaped
        # degradation (hang -> TIMEOUT, crash -> NO_INFORMATION) -------
        report.expected_quarantined = len(poison)
        report.quarantined = len(pool.quarantine)
        for index, result in enumerate(poison_results):
            if result is None:  # pragma: no cover - counted above
                continue
            kind = poison[index][2]
            expected = "timeout" if kind == "hang" else "no_information"
            payload = result.to_dict()
            if (
                payload["equivalence"] != expected
                or not result.statistics.get("quarantined")
            ):
                report.poison_mismatches.append(
                    {
                        "poison": index,
                        "fault": kind,
                        "expected": expected,
                        "actual": payload["equivalence"],
                        "quarantined": result.statistics.get("quarantined"),
                    }
                )

        # --- invariant: a repeated batch is answered from the cache
        # with payload-identical verdicts ------------------------------
        log("soak: resubmitting clean jobs against the cache")
        hits_before = pool.counters.counters.get("cache.hit", 0)
        replays: List[Tuple[int, int]] = []
        for index, (circuit1, circuit2) in enumerate(pairs):
            if faults[index] is not None:
                continue
            replays.append(
                (
                    index,
                    pool.submit(
                        circuit1, circuit2,
                        _soak_configuration(settings, index),
                    ),
                )
            )
        pool.drain(timeout=120.0)
        for index, job_id in replays:
            replay = pool.result(job_id)
            first = results[index]
            if replay is None or first is None:
                report.lost_jobs += 1
                continue
            if "failure" in first.statistics:
                # A degraded first run was (correctly) never cached; the
                # replay re-executes and its failure record carries
                # fresh per-run diagnostics — nothing to compare.
                continue
            if _comparable(replay.to_dict()) != _comparable(first.to_dict()):
                report.cache_mismatches.append(
                    {
                        "job": index,
                        "first": _comparable(first.to_dict()),
                        "replay": _comparable(replay.to_dict()),
                    }
                )
        report.cache_hits = (
            pool.counters.counters.get("cache.hit", 0) - hits_before
        )
    finally:
        pool.shutdown(drain=False)
        report.audit = pool.audit()
        report.counters = dict(pool.counters.counters)
        report.worker_deaths = report.counters.get("service.worker_deaths", 0)
        report.worker_restarts = report.counters.get(
            "service.worker_restarts", 0
        )
        report.workers_recycled = report.counters.get(
            "service.workers_recycled", 0
        )
        report.elapsed_seconds = time.monotonic() - start
    log(
        f"soak: {'PASS' if report.ok else 'FAIL'} — "
        f"{report.resolved}/{report.submitted} resolved, "
        f"{report.worker_deaths} worker deaths, "
        f"{report.quarantined} quarantined, "
        f"{report.cache_hits} cache hits on replay, "
        f"audit {report.audit}"
    )
    return report
