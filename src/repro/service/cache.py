"""Content-addressed verdict memoization for the checking service.

Repeated CI traffic overwhelmingly re-checks *identical* circuit pairs
(the same compiled artifact verified on every push), so the service
deduplicates by content: a cache key is derived from the canonical
OpenQASM serialization of both circuits (plus their layout metadata,
which changes the verdict) and a fingerprint of every
:class:`~repro.ec.configuration.Configuration` field.  Two textually
different submissions that parse to the same circuit under the same
configuration therefore share one cache line; any semantic difference —
a gate, an angle, a layout entry, a strategy knob — changes the key.

Persistence is crash-safe by construction: entries are appended to a
:class:`repro.harness.Journal` (fsync per entry, torn-line tolerant)
and each entry carries a sha256 checksum of its verdict payload.  On
startup the journal is replayed; entries with missing or wrong
checksums are dropped and counted, and a dirty replay triggers an
atomic compaction (write-temp-then-rename with a parent-directory
fsync, :meth:`repro.harness.Journal.compact`) so corruption never
accumulates.  A cache is an accelerator, not an oracle: losing an entry
costs one recheck, never a wrong verdict.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional, Tuple, Union

from repro.circuit import circuit_to_qasm
from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.harness.journal import Journal
from repro.perf import PerfCounters

#: Journal header of the persisted cache (checked on reopen).
_CACHE_METADATA = {"kind": "verdict-cache", "format": 1}

#: Domain separator of the key derivation, bumped on any layout change.
_KEY_DOMAIN = b"repro-verdict-cache-v1"


def configuration_fingerprint(configuration: Configuration) -> str:
    """sha256 over every configuration field, as a stable hex digest.

    All fields participate, including operational ones (retries, memory
    limits) that cannot change a verdict: a coarser key can only cost
    extra misses, while a hand-curated "semantic fields only" list would
    silently go stale the first time a new field lands.
    """
    payload = json.dumps(
        dataclasses.asdict(configuration), sort_keys=True, default=repr
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _circuit_digest(circuit: QuantumCircuit) -> bytes:
    """Canonical content digest of one circuit, layout metadata included."""
    digest = hashlib.sha256()
    digest.update(circuit_to_qasm(circuit).encode())
    digest.update(b"\x00")
    layout = {
        "initial_layout": circuit.initial_layout or {},
        "output_permutation": circuit.output_permutation or {},
    }
    digest.update(json.dumps(layout, sort_keys=True, default=repr).encode())
    return digest.digest()


def cache_key(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Configuration,
) -> str:
    """Content-addressed key of one (pair, configuration) check.

    The pair is *ordered* — checking (A, B) and (B, A) are distinct
    jobs (statistics differ even though verdicts agree), so the key
    deliberately does not symmetrize.
    """
    digest = hashlib.sha256()
    digest.update(_KEY_DOMAIN)
    digest.update(_circuit_digest(circuit1))
    digest.update(_circuit_digest(circuit2))
    digest.update(configuration_fingerprint(configuration).encode())
    return digest.hexdigest()


def _payload_checksum(result: Dict[str, object]) -> str:
    return hashlib.sha256(
        json.dumps(result, sort_keys=True, default=repr).encode()
    ).hexdigest()


class VerdictCache:
    """Verdict store keyed by :func:`cache_key`, optionally persistent.

    Args:
        path: JSONL journal location, or ``None`` for a purely in-memory
            cache (the service default when no ``--cache`` is given).
        counters: Shared :class:`~repro.perf.PerfCounters` receiving the
            ``cache.*`` counter family; a private instance is created
            when omitted.

    Only *trustworthy* results are admitted: :meth:`put` rejects
    degraded results (those carrying a ``statistics["failure"]``
    record), because an environment hiccup must not be replayed as if
    it were a property of the pair.
    """

    def __init__(
        self,
        path: Optional[Union[str, os.PathLike]] = None,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        self.counters = counters if counters is not None else PerfCounters()
        self._entries: Dict[str, Dict[str, object]] = {}
        self._journal: Optional[Journal] = None
        if path is not None:
            self._journal = Journal(path, dict(_CACHE_METADATA), resume=True)
            self._recover()

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Validate replayed entries; compact away any corruption."""
        assert self._journal is not None
        rejected = 0
        for key, payload in list(self._journal.completed.items()):
            result = payload.get("result")
            checksum = payload.get("sha256")
            if (
                isinstance(result, dict)
                and isinstance(checksum, str)
                and _payload_checksum(result) == checksum
            ):
                self._entries[key] = result
            else:
                rejected += 1
                del self._journal.completed[key]
        if rejected:
            self.counters.count("cache.rejected_checksum", rejected)
        if self._entries:
            self.counters.count("cache.recovered", len(self._entries))
        if rejected or self._journal.corrupt_lines:
            # A torn tail or checksum failure means the file holds junk
            # bytes; rewrite it atomically so corruption cannot pile up.
            self._journal.compact()
            self.counters.count("cache.compactions")

    # ------------------------------------------------------------------
    def key_for(
        self,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Configuration,
    ) -> str:
        return cache_key(circuit1, circuit2, configuration)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached verdict payload (a ``result.to_dict()``), or None."""
        entry = self._entries.get(key)
        if entry is None:
            self.counters.count("cache.miss")
            return None
        self.counters.count("cache.hit")
        # A copy: callers decorate results with per-run statistics.
        return json.loads(json.dumps(entry))

    def put(self, key: str, result: Dict[str, object]) -> bool:
        """Admit one verdict payload; returns False when rejected."""
        statistics = result.get("statistics")
        if isinstance(statistics, dict) and "failure" in statistics:
            self.counters.count("cache.rejected_degraded")
            return False
        entry = json.loads(json.dumps(result, default=repr))
        self._entries[key] = entry
        self.counters.count("cache.store")
        if self._journal is not None:
            self._journal.record(
                key, {"result": entry, "sha256": _payload_checksum(entry)}
            )
        return True

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "VerdictCache":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def pair_fingerprints(
    circuit1: QuantumCircuit, circuit2: QuantumCircuit
) -> Tuple[str, str]:
    """Hex digests of both circuits' canonical serializations."""
    return (
        _circuit_digest(circuit1).hex(),
        _circuit_digest(circuit2).hex(),
    )
