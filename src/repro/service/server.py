"""Local-socket batch API over a :class:`~repro.service.pool.WorkerPool`.

``python -m repro serve`` binds a ``multiprocessing.connection``
listener on an ``AF_UNIX`` socket and serves *batches*: a client
submits a list of circuit pairs plus one configuration and receives the
list of verdict payloads when every job has resolved.  Circuits cross
the socket as canonical OpenQASM plus layout metadata — the same
serialization the verdict cache keys on — so client and server never
exchange pickled checker objects.

Backpressure is explicit: when accepting a batch would push the pool
past its bounded queue depth, the server answers ``busy`` with a
``retry_after`` estimate instead of buffering unboundedly
(:class:`~repro.errors.PoolSaturated` semantics;
:meth:`ServiceClient.submit_batch` sleeps and retries automatically).
Shutdown is *draining*: on SIGINT/SIGTERM (or a client ``shutdown``
request) the server stops accepting new batches, resolves every job in
flight, answers the clients that are owed replies, and only then tears
the pool down — no job is ever silently dropped.

Concurrency model: one background thread accepts connections and hands
them over; the main serve loop is the pool's single owner — it polls
client sockets, submits jobs, pumps the supervisor, and replies.  This
keeps the pool free of locks at the cost of one thread, which never
touches pool state.
"""

from __future__ import annotations

import dataclasses
import os
import queue
import signal
import threading
import time
from multiprocessing.connection import Client, Connection, Listener
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.circuit import circuit_from_qasm, circuit_to_qasm
from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.errors import CheckError, PoolSaturated
from repro.service.pool import WorkerPool

#: Handshake token so a stray client on the socket fails loudly.
_FAMILY = "AF_UNIX"

DEFAULT_SOCKET = "repro-service.sock"


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
def circuit_to_payload(circuit: QuantumCircuit) -> Dict[str, object]:
    """Serialize one circuit for the socket (QASM + layout metadata)."""
    return {
        "qasm": circuit_to_qasm(circuit),
        "initial_layout": dict(circuit.initial_layout or {}),
        "output_permutation": dict(circuit.output_permutation or {}),
    }


def circuit_from_payload(payload: Dict[str, Any]) -> QuantumCircuit:
    """Reconstruct one circuit sent with :func:`circuit_to_payload`."""
    circuit = circuit_from_qasm(str(payload["qasm"]))
    layout = payload.get("initial_layout")
    if layout:
        circuit.initial_layout = {int(k): int(v) for k, v in layout.items()}
    permutation = payload.get("output_permutation")
    if permutation:
        circuit.output_permutation = {
            int(k): int(v) for k, v in permutation.items()
        }
    return circuit


def configuration_to_payload(
    configuration: Optional[Configuration],
) -> Optional[Dict[str, object]]:
    if configuration is None:
        return None
    return dataclasses.asdict(configuration)


def configuration_from_payload(
    payload: Optional[Dict[str, Any]],
) -> Optional[Configuration]:
    if payload is None:
        return None
    known = {field.name for field in dataclasses.fields(Configuration)}
    return Configuration(
        **{key: value for key, value in payload.items() if key in known}
    )


# ----------------------------------------------------------------------
# server
# ----------------------------------------------------------------------
class _PendingBatch:
    """One accepted batch still owed a reply."""

    __slots__ = ("conn", "job_ids")

    def __init__(self, conn: Connection, job_ids: List[int]) -> None:
        self.conn = conn
        self.job_ids = job_ids


class ServiceServer:
    """Serve batch equivalence checks over a local socket.

    Args:
        pool: The supervised worker pool (owned by this server: the
            serve loop is its only caller).
        socket_path: Filesystem path of the ``AF_UNIX`` socket.
    """

    def __init__(self, pool: WorkerPool, socket_path: str) -> None:
        self.pool = pool
        self.socket_path = str(socket_path)
        self._listener: Optional[Listener] = None
        self._inbox: "queue.Queue[Connection]" = queue.Queue()
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._clients: List[Connection] = []
        self._pending: List[_PendingBatch] = []

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "ServiceServer":
        if os.path.exists(self.socket_path):
            # A stale socket from a crashed predecessor; binding over it
            # requires the unlink (AF_UNIX sockets are filesystem nodes).
            os.unlink(self.socket_path)
        self._listener = Listener(self.socket_path, family=_FAMILY)
        self.pool.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                conn = self._listener.accept()
            except (OSError, EOFError):  # listener closed: shutting down
                break
            self._inbox.put(conn)

    def request_stop(self, *_signal_args: object) -> None:
        """Begin a draining shutdown (signal-handler compatible)."""
        self._stopping.set()

    def install_signal_handlers(self) -> None:
        signal.signal(signal.SIGINT, self.request_stop)
        signal.signal(signal.SIGTERM, self.request_stop)

    # -- serve loop -----------------------------------------------------
    def serve_forever(self, poll_interval: float = 0.05) -> None:
        """Run until a stop is requested, then drain and tear down."""
        if self._listener is None:
            self.start()
        try:
            while not self._stopping.is_set():
                self._step(poll_interval)
            # Draining shutdown: stop accepting, finish what was
            # admitted, answer everyone who is owed a reply.
            self._close_listener()
            deadline = time.monotonic() + 60.0
            while self._pending and time.monotonic() < deadline:
                self._step(poll_interval, accept_new=False)
        finally:
            self._close_listener()
            for conn in self._clients:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
            self._clients.clear()
            self.pool.shutdown(drain=False)
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)

    def _close_listener(self) -> None:
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None

    def _step(self, poll_interval: float, accept_new: bool = True) -> None:
        """One serve-loop turn: admit, read, pump, reply."""
        if accept_new:
            try:
                while True:
                    self._clients.append(self._inbox.get_nowait())
            except queue.Empty:
                pass
        for conn in list(self._clients):
            try:
                if conn.poll(0):
                    self._handle_request(conn, conn.recv())
            except (EOFError, OSError):
                self._drop_client(conn)
        if self.pool.pending_jobs:
            self.pool.pump(max_wait=poll_interval)
        else:
            self.pool.pump(max_wait=0.0)
            time.sleep(poll_interval / 10)
        self._reply_finished()

    def _drop_client(self, conn: Connection) -> None:
        if conn in self._clients:
            self._clients.remove(conn)
        # Jobs of a vanished client still run (the pool may cache their
        # verdicts) but the reply is no longer owed.
        for batch in list(self._pending):
            if batch.conn is conn:
                self._pending.remove(batch)
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass

    def _handle_request(self, conn: Connection, request: Dict[str, Any]) -> None:
        op = request.get("op")
        if op == "submit":
            self._handle_submit(conn, request)
        elif op == "stats":
            conn.send(
                {
                    "ok": True,
                    "counters": self.pool.counters.as_dict(),
                    "pending_jobs": self.pool.pending_jobs,
                    "quarantined": len(self.pool.quarantine),
                    "broken": self.pool.broken,
                }
            )
        elif op == "ping":
            conn.send({"ok": True})
        elif op == "shutdown":
            conn.send({"ok": True, "stopping": True})
            self.request_stop()
        else:
            conn.send(
                {"ok": False, "error": {"kind": "invalid_input",
                                        "message": f"unknown op {op!r}"}}
            )

    def _handle_submit(self, conn: Connection, request: Dict[str, Any]) -> None:
        pairs = request.get("pairs") or []
        configuration = configuration_from_payload(
            request.get("configuration")
        )
        # Admission control up front: a batch is admitted whole or
        # rejected whole, so a client never gets a half-submitted batch.
        if len(pairs) > self.pool.capacity_left():
            self.pool.counters.count("service.rejected_busy")
            conn.send(
                {
                    "ok": False,
                    "busy": True,
                    "retry_after": self.pool.retry_after_estimate(),
                    "error": PoolSaturated(
                        "job queue is full",
                        retry_after=self.pool.retry_after_estimate(),
                    ).to_dict(),
                }
            )
            return
        try:
            job_ids = [
                self.pool.submit(
                    circuit_from_payload(payload1),
                    circuit_from_payload(payload2),
                    configuration,
                )
                for payload1, payload2 in pairs
            ]
        except CheckError as error:
            conn.send({"ok": False, "error": error.to_dict()})
            return
        self._pending.append(_PendingBatch(conn, job_ids))

    def _reply_finished(self) -> None:
        for batch in list(self._pending):
            results = [self.pool.result(job_id) for job_id in batch.job_ids]
            if any(result is None for result in results):
                continue
            self._pending.remove(batch)
            payload = {
                "ok": True,
                "results": [result.to_dict() for result in results],  # type: ignore[union-attr]
            }
            for job_id in batch.job_ids:
                self.pool.forget(job_id)
            try:
                batch.conn.send(payload)
            except (BrokenPipeError, OSError):
                self._drop_client(batch.conn)


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
class ServiceClient:
    """Blocking client of one :class:`ServiceServer` socket."""

    def __init__(self, socket_path: str) -> None:
        self.socket_path = str(socket_path)
        self._conn: Connection = Client(self.socket_path, family=_FAMILY)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    def _request(self, payload: Dict[str, object]) -> Dict[str, Any]:
        self._conn.send(payload)
        return self._conn.recv()

    def ping(self) -> bool:
        return bool(self._request({"op": "ping"}).get("ok"))

    def stats(self) -> Dict[str, Any]:
        return self._request({"op": "stats"})

    def shutdown_server(self) -> Dict[str, Any]:
        return self._request({"op": "shutdown"})

    def submit_batch(
        self,
        pairs: List[Tuple[QuantumCircuit, QuantumCircuit]],
        configuration: Optional[Configuration] = None,
        max_attempts: int = 10,
        sleep: Callable[[float], None] = time.sleep,
    ) -> List[Dict[str, Any]]:
        """Submit one batch; returns verdict payloads in order.

        ``busy`` rejections are retried up to ``max_attempts`` times,
        honouring the server's ``retry_after`` hint; a still-saturated
        service then raises :class:`~repro.errors.PoolSaturated`.
        """
        request = {
            "op": "submit",
            "pairs": [
                (circuit_to_payload(circuit1), circuit_to_payload(circuit2))
                for circuit1, circuit2 in pairs
            ],
            "configuration": configuration_to_payload(configuration),
        }
        for _attempt in range(max_attempts):
            reply = self._request(request)
            if reply.get("ok"):
                return list(reply["results"])
            if reply.get("busy"):
                sleep(float(reply.get("retry_after", 0.1)))
                continue
            from repro.errors import error_from_dict

            raise error_from_dict(reply.get("error") or {})
        raise PoolSaturated(
            "service still saturated after retries", attempts=max_attempts
        )
