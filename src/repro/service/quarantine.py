"""Poison-pair quarantine: jobs that kill workers stop killing workers.

A *poison pair* is a job whose execution keeps destroying the worker
that runs it — a deterministic segfault in a native extension, a
non-cooperative hang that only the supervisor's SIGKILL ends, a memory
blowup that trips the address-space limit on every attempt.  Retrying
such a job forever would grind the pool into a restart loop; refusing
it once condemns transient environment hiccups.  The pool therefore
counts *worker-kill strikes* per job key and hands the job to the
quarantine after the configured strike budget (default two kills).

Quarantined pairs are persisted as self-contained records — canonical
QASM of both circuits, the configuration fingerprint, the full failure
taxonomy of every strike, and the degraded verdict — appended to a
:class:`repro.harness.Journal`, so an operator can replay them offline
(``python -m repro verify --isolate``) and the pool refuses to
re-execute them across restarts: a resubmitted poison pair is answered
immediately from the record instead of costing another worker.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from repro.circuit import circuit_to_qasm
from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.harness.journal import Journal
from repro.service.cache import configuration_fingerprint

#: Journal header of the persisted quarantine (checked on reopen).
_QUARANTINE_METADATA = {"kind": "poison-quarantine", "format": 1}


class QuarantineStore:
    """Persisted registry of poison pairs, keyed like the verdict cache.

    Args:
        path: JSONL journal location, or ``None`` for in-memory only.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]] = None) -> None:
        self._records: Dict[str, Dict[str, object]] = {}
        self._journal: Optional[Journal] = None
        if path is not None:
            self._journal = Journal(
                path, dict(_QUARANTINE_METADATA), resume=True
            )
            for key, payload in self._journal.completed.items():
                if isinstance(payload, dict):
                    self._records[key] = payload

    def quarantine(
        self,
        key: str,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Configuration,
        strikes: List[Dict[str, object]],
        verdict: str,
    ) -> Dict[str, object]:
        """Record one poison pair; returns the persisted record."""
        record: Dict[str, object] = {
            "qasm1": circuit_to_qasm(circuit1),
            "qasm2": circuit_to_qasm(circuit2),
            "initial_layout1": dict(circuit1.initial_layout or {}),
            "initial_layout2": dict(circuit2.initial_layout or {}),
            "output_permutation1": dict(circuit1.output_permutation or {}),
            "output_permutation2": dict(circuit2.output_permutation or {}),
            "configuration_fingerprint": configuration_fingerprint(
                configuration
            ),
            "strategy": configuration.strategy,
            "strikes": [dict(strike) for strike in strikes],
            "verdict": verdict,
        }
        self._records[key] = record
        if self._journal is not None:
            self._journal.record(key, record)
        return record

    def get(self, key: str) -> Optional[Dict[str, object]]:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Dict[str, Dict[str, object]]:
        """A snapshot of every quarantined record, keyed by cache key."""
        return {key: dict(record) for key, record in self._records.items()}

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()

    def __enter__(self) -> "QuarantineStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
