"""Supervised pool of long-lived sandboxed equivalence-check workers.

:func:`repro.harness.run_check_isolated` pays one ``fork`` + interpreter
teardown per check — the right trade for a batch study, the wrong one
for a service where the same few worker images could amortize across
thousands of jobs.  This module keeps ``N`` forked workers alive behind
a job queue and moves every failure mode the one-shot sandbox handles
per-check into a *supervision loop*:

* **Liveness** — each worker owns a duplex pipe; any message refreshes
  its heartbeat, idle workers are pinged, and a worker that neither
  answers nor dies is SIGKILLed and replaced.
* **Containment** — per-job hard wall-clock deadlines (SIGKILL on
  overrun, exactly like the sandbox) and a per-worker RLIMIT_AS ceiling
  applied once at worker startup.
* **Hygiene** — workers are recycled (gracefully retired and replaced)
  after a job-count threshold or when their resident set exceeds the
  RSS threshold, so slow leaks never become host OOMs.
* **Resilience** — crashed/hung/lost workers are replaced with
  deterministic jittered exponential backoff
  (:class:`repro.errors.RetryPolicy`), and a restart storm (workers
  dying independent of any job, e.g. at startup) trips a circuit
  breaker that fails the pool loudly instead of fork-bombing the host.
* **Poison quarantine** — a job whose execution kills its worker twice
  is handed to :class:`repro.service.quarantine.QuarantineStore` and
  answered with a degraded verdict; it can never take a third worker
  down, in this process or (with a persistent store) any later one.
* **Dedup** — identical in-flight submissions coalesce onto one
  execution, and a :class:`repro.service.cache.VerdictCache` answers
  repeats without touching a worker at all.

Verdict parity is the non-negotiable invariant: for any job, the pool's
answer (verdict and degradation shape) matches a direct
:func:`repro.harness.run_check` of the same pair — the pool changes
*where* checks run, never *what* they answer.

The pool is deliberately single-threaded on the supervisor side: one
owner (the caller of :meth:`WorkerPool.pump` / :meth:`run_batch` /
:meth:`drain`) drives the event loop, which keeps the state machine
auditable.  :mod:`repro.service.server` wraps it in exactly one
dispatcher thread.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.results import EquivalenceCheckingResult
from repro.errors import (
    CheckError,
    CheckTimeout,
    CheckWorkerLost,
    InvalidInput,
    PoolBroken,
    PoolSaturated,
    RetryPolicy,
    error_from_dict,
)
from repro.harness.chaos import ChaosSpec
from repro.harness.sandbox import (
    DEFAULT_GRACE_SECONDS,
    _apply_memory_limit,
    _failure_result,
    _FATAL_SIGNALS,
    _start_method,
)
from repro.perf import PerfCounters
from repro.service.cache import VerdictCache, cache_key
from repro.service.quarantine import QuarantineStore

_MIB = 1024 * 1024

#: Upper bound on one supervision-loop sleep.
_MAX_POLL_SECONDS = 0.05


def _worker_rss_mb() -> Optional[float]:
    """Resident set of this process in MiB (None off-/proc platforms)."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGESIZE") / _MIB
    except (OSError, ValueError, IndexError):  # pragma: no cover - no /proc
        return None


def _execute_job(message: Dict[str, Any]) -> Dict[str, Any]:
    """Run one check inside the worker; always returns a structured payload."""
    from repro.ec.manager import EquivalenceCheckingManager
    from repro.errors import CheckOutOfMemory, classify_exception
    from repro.harness import chaos as chaos_module

    chaos_payload = message.get("chaos")
    try:
        if chaos_payload is not None:
            chaos_module.activate(ChaosSpec.from_dict(chaos_payload))
        # Raw failures must reach the classifier: degradation is the
        # supervisor's job, exactly as in the one-shot sandbox.
        config = dataclasses.replace(
            message["configuration"], graceful_degradation=False
        )
        result = EquivalenceCheckingManager(
            message["circuit1"], message["circuit2"], config
        ).run()
        return {"ok": True, "result": result.to_dict()}
    except MemoryError:
        import gc

        gc.collect()
        return {
            "ok": False,
            "oom": True,
            "error": CheckOutOfMemory(
                "check exceeded the worker's address-space limit"
            ).to_dict(),
        }
    except BaseException as exc:  # noqa: BLE001 - containment is the point
        return {"ok": False, "error": classify_exception(exc).to_dict()}
    finally:
        chaos_module.deactivate()


def _worker_main(
    conn: Any,
    memory_mb: Optional[int],
    startup_chaos: Optional[Dict[str, Any]],
) -> None:
    """Long-lived worker loop: serve jobs until told to shut down.

    The worker is passive: it blocks on the pipe, answers pings, runs
    jobs, and reports its resident set with every result so the
    supervisor can recycle it.  SIGINT is ignored — a Ctrl-C aimed at
    the foreground service must reach the *supervisor's* draining
    shutdown, not kill workers mid-check.
    """
    from repro.harness import chaos as chaos_module

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        pass
    if memory_mb is not None:
        _apply_memory_limit(memory_mb)
    if startup_chaos is not None:
        chaos_module.trigger(ChaosSpec.from_dict(startup_chaos))
    jobs_done = 0
    try:
        conn.send({"type": "ready", "pid": os.getpid()})
        while True:
            try:
                message = conn.recv()
            except EOFError:  # supervisor is gone — nothing to serve
                break
            kind = message.get("type")
            if kind == "shutdown":
                conn.send({"type": "bye", "jobs_done": jobs_done})
                break
            if kind == "ping":
                conn.send({"type": "pong", "rss_mb": _worker_rss_mb()})
                continue
            if kind != "job":  # pragma: no cover - unknown message
                continue
            conn.send({"type": "started", "id": message["id"]})
            payload = _execute_job(message)
            jobs_done += 1
            payload.update(
                {
                    "type": "result",
                    "id": message["id"],
                    "rss_mb": _worker_rss_mb(),
                    "jobs_done": jobs_done,
                }
            )
            conn.send(payload)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Supervisor-side state
# ----------------------------------------------------------------------
@dataclass
class PoolConfig:
    """Supervision knobs of one :class:`WorkerPool`.

    Attributes:
        workers: Pool size — long-lived sandboxed children kept alive.
        memory_mb: RLIMIT_AS headroom per worker (MiB above the
            interpreter baseline), applied once at worker startup.
        max_jobs_per_worker: Graceful recycling threshold — a worker is
            retired and replaced after this many jobs (bounds the blast
            radius of slow interpreter-state corruption).
        max_worker_rss_mb: RSS recycling threshold in MiB; a worker
            reporting a resident set above it is retired after the job.
        grace: Seconds added to a job's cooperative timeout to form its
            hard SIGKILL deadline (mirrors the one-shot sandbox).
        poison_strikes: Worker-kills by one job before the job is
            quarantined as a poison pair.
        restart_backoff: Deterministic jittered exponential backoff
            schedule for replacing dead workers; attempts index
            consecutive deaths and reset on the next successful job.
        storm_window: Sliding window (seconds) of the circuit breaker.
        storm_threshold: Job-independent worker deaths tolerated inside
            ``storm_window`` before the breaker trips the pool.
        queue_depth: Bound on unresolved jobs; submissions beyond it
            are rejected with :class:`repro.errors.PoolSaturated`.
        heartbeat_interval: Idle seconds before a worker is pinged.
        heartbeat_timeout: Seconds an idle worker may ignore a ping
            before it is declared lost and replaced.
        startup_chaos: Deterministic fault triggered inside every new
            worker before it reports ready (tests of the breaker).
    """

    workers: int = 4
    memory_mb: Optional[int] = None
    max_jobs_per_worker: int = 64
    max_worker_rss_mb: Optional[float] = 1024.0
    grace: float = DEFAULT_GRACE_SECONDS
    poison_strikes: int = 2
    restart_backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=0,
            backoff_base=0.05,
            backoff_max=2.0,
            jitter=0.5,
            jitter_seed=0,
        )
    )
    storm_window: float = 30.0
    storm_threshold: int = 8
    queue_depth: int = 1024
    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 10.0
    startup_chaos: Optional[ChaosSpec] = None

    def validate(self) -> None:
        if not isinstance(self.workers, int) or self.workers < 1:
            raise ValueError("workers must be a positive integer")
        if self.max_jobs_per_worker < 1:
            raise ValueError("max_jobs_per_worker must be at least 1")
        if self.poison_strikes < 1:
            raise ValueError("poison_strikes must be at least 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if self.storm_threshold < 1:
            raise ValueError("storm_threshold must be at least 1")
        for name in ("grace", "storm_window", "heartbeat_interval",
                     "heartbeat_timeout"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if value < 0:
                raise ValueError(f"{name} must be non-negative")
        self.restart_backoff.validate()
        if self.startup_chaos is not None:
            self.startup_chaos.validate()


#: Job states.
_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_COALESCED = "coalesced"


@dataclass
class _Job:
    """Supervisor-side record of one submitted check."""

    id: int
    circuit1: QuantumCircuit
    circuit2: QuantumCircuit
    configuration: Configuration
    key: str
    chaos: Optional[ChaosSpec] = None
    chaos_once: bool = True
    state: str = _QUEUED
    strikes: List[Dict[str, object]] = field(default_factory=list)
    soft_attempts: int = 0
    executions: int = 0
    submitted_at: float = 0.0
    result: Optional[EquivalenceCheckingResult] = None
    primary_id: Optional[int] = None  # set on coalesced duplicates

    def hard_budget(self, grace: float) -> Optional[float]:
        if self.configuration.timeout is None:
            return None
        return self.configuration.timeout + grace


class _Worker:
    """Supervisor-side state of one live worker process."""

    __slots__ = (
        "process", "conn", "ready", "job", "job_deadline", "jobs_done",
        "last_seen", "ping_deadline", "retiring", "spawned_at",
    )

    def __init__(self, process: Any, conn: Any, now: float) -> None:
        self.process = process
        self.conn = conn
        self.ready = False
        self.job: Optional[_Job] = None
        self.job_deadline: Optional[float] = None
        self.jobs_done = 0
        self.last_seen = now
        self.ping_deadline: Optional[float] = None
        self.retiring = False
        self.spawned_at = now

    @property
    def idle(self) -> bool:
        return self.ready and self.job is None and not self.retiring


class WorkerPool:
    """A supervised pool of long-lived equivalence-check workers.

    Single-owner discipline: all public methods must be called from one
    thread (the server's dispatcher).  ``submit`` never blocks — it
    either queues/answers the job or raises
    :class:`~repro.errors.PoolSaturated` /
    :class:`~repro.errors.PoolBroken`.
    """

    def __init__(
        self,
        config: Optional[PoolConfig] = None,
        cache: Optional[VerdictCache] = None,
        quarantine: Optional[QuarantineStore] = None,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        self.config = config or PoolConfig()
        self.config.validate()
        self.counters = counters if counters is not None else PerfCounters()
        self.cache = cache
        if self.cache is not None:
            # One counter sink: cache.* and service.* land together.
            self.cache.counters = self.counters
        self.quarantine = quarantine if quarantine is not None else (
            QuarantineStore()
        )
        self.broken = False
        self._ctx = multiprocessing.get_context(_start_method())
        self._workers: List[_Worker] = []
        self._respawn_at: List[float] = []  # one entry per dead slot
        self._consecutive_deaths = 0
        self._death_times: Deque[float] = deque()
        self._queue: Deque[_Job] = deque()
        self._jobs: Dict[int, _Job] = {}
        self._primary_by_key: Dict[str, _Job] = {}
        self._duplicates: Dict[int, List[int]] = {}  # primary id -> dupes
        self._unresolved = 0
        self._next_job_id = 0
        self._all_processes: List[Any] = []
        self._started = False
        self._avg_job_seconds = 0.05

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        if self._started:
            return self
        self._started = True
        for _ in range(self.config.workers):
            self._spawn_worker()
        return self

    def _spawn_worker(self) -> None:
        now = time.monotonic()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.config.memory_mb,
                self.config.startup_chaos.to_dict()
                if self.config.startup_chaos is not None
                else None,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self._workers.append(_Worker(process, parent_conn, now))
        self._all_processes.append(process)
        self.counters.count("service.workers_spawned")

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *_exc: object) -> None:
        self.shutdown(drain=False)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def pending_jobs(self) -> int:
        """Unresolved submissions (queued + running + coalesced)."""
        return self._unresolved

    def capacity_left(self) -> int:
        return max(0, self.config.queue_depth - self._unresolved)

    def retry_after_estimate(self) -> float:
        """Suggested client backoff when the queue is full, in seconds."""
        per_worker = max(1, len(self._workers) or self.config.workers)
        backlog = self._unresolved * self._avg_job_seconds / per_worker
        return round(max(0.05, min(backlog, 30.0)), 3)

    def submit(
        self,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Optional[Configuration] = None,
        chaos: Optional[ChaosSpec] = None,
        chaos_once: bool = True,
    ) -> int:
        """Queue one check; returns a job id resolvable via :meth:`result`.

        ``chaos`` injects a deterministic fault into the job's *first*
        execution (``chaos_once=True``, the default: retries run clean,
        modelling a transient environment fault) or *every* execution
        (``chaos_once=False``: a persistent poison pair).

        Raises:
            PoolBroken: The restart-storm breaker tripped.
            PoolSaturated: The bounded queue is full (backpressure; the
                error's ``diagnostics["retry_after"]`` suggests a wait).
            InvalidInput: The configuration fails validation.
        """
        if not self._started:
            self.start()
        if self.broken:
            raise PoolBroken("worker pool is broken; rebuild the service")
        if self._unresolved >= self.config.queue_depth:
            raise PoolSaturated(
                "job queue is full",
                retry_after=self.retry_after_estimate(),
                queue_depth=self.config.queue_depth,
            )
        configuration = configuration or Configuration()
        try:
            configuration.validate()
        except ValueError as exc:
            raise InvalidInput(str(exc)) from exc

        job = _Job(
            id=self._next_job_id,
            circuit1=circuit1,
            circuit2=circuit2,
            configuration=configuration,
            key=cache_key(circuit1, circuit2, configuration),
            chaos=chaos,
            chaos_once=chaos_once,
            submitted_at=time.monotonic(),
        )
        self._next_job_id += 1
        self._jobs[job.id] = job
        self._unresolved += 1
        self.counters.count("service.jobs_submitted")

        # Poison pairs are answered from the quarantine record — they
        # never reach a worker again.
        if job.key in self.quarantine:
            record = self.quarantine.get(job.key) or {}
            self._resolve(job, self._quarantined_result(job, record))
            self.counters.count("service.poison_rejected")
            return job.id

        # Cache hit: replay the stored verdict payload untouched.
        if self.cache is not None and chaos is None:
            cached = self.cache.get(job.key)
            if cached is not None:
                self._resolve(
                    job, EquivalenceCheckingResult.from_dict(cached)
                )
                return job.id

        # Identical clean submissions coalesce onto one execution.
        if chaos is None:
            primary = self._primary_by_key.get(job.key)
            if primary is not None and primary.chaos is None:
                job.state = _COALESCED
                job.primary_id = primary.id
                self._duplicates.setdefault(primary.id, []).append(job.id)
                self.counters.count("cache.coalesced")
                return job.id
            self._primary_by_key[job.key] = job

        job.state = _QUEUED
        self._queue.append(job)
        return job.id

    def result(self, job_id: int) -> Optional[EquivalenceCheckingResult]:
        """The job's result, or None while it is unresolved."""
        return self._jobs[job_id].result

    def forget(self, job_id: int) -> None:
        """Drop the bookkeeping of a resolved job (server-side GC)."""
        job = self._jobs.get(job_id)
        if job is not None and job.state == _DONE:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def _quarantined_result(
        self, job: _Job, record: Dict[str, object]
    ) -> EquivalenceCheckingResult:
        from repro.ec.results import Equivalence

        strikes = record.get("strikes")
        statistics: Dict[str, object] = {
            "quarantined": True,
            "failure": dict(strikes[-1])  # type: ignore[index]
            if isinstance(strikes, list) and strikes
            else {},
        }
        verdict = str(record.get("verdict", Equivalence.NO_INFORMATION.value))
        return EquivalenceCheckingResult(
            Equivalence(verdict), job.configuration.strategy, 0.0, statistics
        )

    def _resolve(self, job: _Job, result: EquivalenceCheckingResult) -> None:
        """Finalize one job (and every duplicate coalesced onto it)."""
        job.state = _DONE
        job.result = result
        self._unresolved -= 1
        if self._primary_by_key.get(job.key) is job:
            del self._primary_by_key[job.key]
        self.counters.count("service.jobs_completed")
        for duplicate_id in self._duplicates.pop(job.id, []):
            duplicate = self._jobs[duplicate_id]
            duplicate.state = _DONE
            duplicate.result = result
            self._unresolved -= 1
            self.counters.count("service.jobs_completed")

    def _degrade(self, job: _Job, error: CheckError) -> None:
        if error.kind == "portfolio_disagreement":
            # A checker bug must never be swallowed — mirror run_check.
            raise error
        elapsed = time.monotonic() - job.submitted_at
        self._resolve(
            job,
            _failure_result(error, job.configuration.strategy, elapsed),
        )

    # ------------------------------------------------------------------
    # supervision loop
    # ------------------------------------------------------------------
    def pump(self, max_wait: float = _MAX_POLL_SECONDS) -> None:
        """One supervision step: respawn, dispatch, wait, settle, audit."""
        if not self._started:
            self.start()
        now = time.monotonic()
        self._respawn_due(now)
        self._dispatch(now)
        self._wait_and_receive(now, max_wait)
        now = time.monotonic()
        self._enforce_deadlines(now)
        self._heartbeat(now)

    def drain(self, timeout: Optional[float] = None) -> None:
        """Pump until every submitted job is resolved.

        Raises :class:`repro.errors.CheckTimeout` when ``timeout``
        elapses first — losing jobs silently is the one thing a
        supervisor may not do, and the classified error lets callers
        dispatch on ``kind``/``transient`` like every other failure.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._unresolved > 0:
            if deadline is not None and time.monotonic() > deadline:
                raise CheckTimeout(
                    f"pool drain timed out with {self._unresolved} "
                    "job(s) unresolved",
                    hard=False,
                    budget_seconds=timeout,
                    unresolved=self._unresolved,
                )
            self.pump()

    def run_batch(
        self,
        pairs: List[Tuple[QuantumCircuit, QuantumCircuit]],
        configuration: Optional[Configuration] = None,
        timeout: Optional[float] = None,
    ) -> List[EquivalenceCheckingResult]:
        """Submit a batch and drain it; results in submission order."""
        self.counters.count("service.batches")
        ids = [
            self.submit(circuit1, circuit2, configuration)
            for circuit1, circuit2 in pairs
        ]
        self.drain(timeout=timeout)
        results = [self.result(job_id) for job_id in ids]
        for job_id in ids:
            self.forget(job_id)
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    # -- internal steps -------------------------------------------------
    def _respawn_due(self, now: float) -> None:
        if self.broken:
            return
        due = [at for at in self._respawn_at if at <= now]
        if not due:
            return
        self._respawn_at = [at for at in self._respawn_at if at > now]
        for _ in due:
            self._spawn_worker()
            self.counters.count("service.worker_restarts")

    def _dispatch(self, now: float) -> None:
        for worker in list(self._workers):
            if not self._queue:
                break
            if not worker.idle:
                continue
            job = self._queue.popleft()
            job.state = _RUNNING
            job.executions += 1
            worker.job = job
            worker.ping_deadline = None
            budget = job.hard_budget(self.config.grace)
            worker.job_deadline = None if budget is None else now + budget
            chaos = job.chaos
            if chaos is not None and job.chaos_once and job.executions > 1:
                chaos = None  # one-shot fault: retries run clean
            try:
                worker.conn.send(
                    {
                        "type": "job",
                        "id": job.id,
                        "circuit1": job.circuit1,
                        "circuit2": job.circuit2,
                        "configuration": job.configuration,
                        "chaos": chaos.to_dict() if chaos is not None else None,
                    }
                )
            except (BrokenPipeError, OSError):
                # The worker died before the job ever reached it: requeue
                # without a strike (the job is blameless) and account the
                # death as job-independent.
                job.state = _QUEUED
                job.executions -= 1
                worker.job = None
                worker.job_deadline = None
                self._queue.appendleft(job)
                self._worker_died(worker, now)

    def _wait_and_receive(self, now: float, max_wait: float) -> None:
        if not self._workers:
            # Everything is dead and waiting on backoff: sleep until the
            # earliest respawn (bounded) so restarts stay timely.
            horizon = min(self._respawn_at) if self._respawn_at else (
                now + max_wait
            )
            time.sleep(min(max(0.0, horizon - now), max_wait))
            return
        horizons = [now + max_wait]
        horizons.extend(
            worker.job_deadline
            for worker in self._workers
            if worker.job_deadline is not None
        )
        horizons.extend(
            worker.ping_deadline
            for worker in self._workers
            if worker.ping_deadline is not None
        )
        horizons.extend(self._respawn_at)
        wait_timeout = max(0.0, min(horizons) - now)
        try:
            ready = connection_wait(
                [worker.conn for worker in self._workers],
                timeout=wait_timeout,
            )
        except OSError:  # pragma: no cover - closed under our feet
            ready = []
        now = time.monotonic()
        for conn in ready:
            worker = next(
                (w for w in self._workers if w.conn is conn), None
            )
            if worker is None:  # settled by a prior step this pump
                continue
            self._receive(worker, now)

    def _receive(self, worker: _Worker, now: float) -> None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._worker_died(worker, now)
            return
        worker.last_seen = now
        kind = message.get("type")
        if kind == "ready":
            worker.ready = True
        elif kind == "started":
            pass  # heartbeat refresh is enough
        elif kind == "pong":
            worker.ping_deadline = None
            rss = message.get("rss_mb")
            if self._rss_exceeded(rss):
                self._retire(worker, reason="rss")
        elif kind == "result":
            self._settle_result(worker, message, now)
        elif kind == "bye":  # pragma: no cover - retirement handshake
            pass

    def _rss_exceeded(self, rss: object) -> bool:
        return (
            self.config.max_worker_rss_mb is not None
            and isinstance(rss, (int, float))
            and rss > self.config.max_worker_rss_mb
        )

    def _settle_result(
        self, worker: _Worker, message: Dict[str, Any], now: float
    ) -> None:
        job = worker.job
        worker.job = None
        worker.job_deadline = None
        worker.jobs_done += 1
        self._consecutive_deaths = 0
        if job is None or job.state != _RUNNING:  # pragma: no cover
            return
        self._avg_job_seconds = (
            0.9 * self._avg_job_seconds
            + 0.1 * max(1e-4, now - job.submitted_at)
        )
        if message.get("ok"):
            result = EquivalenceCheckingResult.from_dict(message["result"])
            if self.cache is not None and job.chaos is None:
                self.cache.put(job.key, result.to_dict())
            result.statistics["service"] = {
                "worker_pid": worker.process.pid,
                "executions": job.executions,
                "strikes": len(job.strikes),
                "cached": False,
            }
            self._resolve(job, result)
        else:
            error = error_from_dict(message.get("error") or {})
            self._job_failed(job, error, worker_killed=False)
        # Post-job hygiene: recycle on thresholds or after an OOM (the
        # allocator may be left fragmented under its rlimit ceiling).
        if (
            worker.jobs_done >= self.config.max_jobs_per_worker
            or self._rss_exceeded(message.get("rss_mb"))
            or message.get("oom")
        ):
            self._retire(worker, reason="threshold")

    def _job_failed(
        self, job: _Job, error: CheckError, worker_killed: bool
    ) -> None:
        """Route one failed execution: retry, quarantine, or degrade."""
        if worker_killed:
            job.strikes.append(error.to_dict())
            if len(job.strikes) >= self.config.poison_strikes:
                self._quarantine_job(job, error)
                return
            self.counters.count("service.jobs_retried")
            job.state = _QUEUED
            self._queue.append(job)
            return
        # A structured failure out of a one-shot faulted execution is an
        # artifact of the injected fault (e.g. a leak slowing the check
        # past its cooperative timeout), not a property of the pair:
        # rerun clean instead of applying transience rules to it.
        if (
            job.chaos is not None
            and job.chaos_once
            and job.executions == 1
        ):
            self.counters.count("service.jobs_retried")
            job.state = _QUEUED
            self._queue.append(job)
            return
        # The worker survived and reported a structured failure: apply
        # run_check's retry semantics (transient failures, bounded).
        job.soft_attempts += 1
        if error.transient and (
            job.soft_attempts <= job.configuration.max_retries
        ):
            self.counters.count("service.jobs_retried")
            job.state = _QUEUED
            self._queue.append(job)
            return
        error.diagnostics.setdefault("attempts", job.soft_attempts)
        self._degrade(job, error)

    def _quarantine_job(self, job: _Job, last_error: CheckError) -> None:
        from repro.ec.results import Equivalence

        verdict = (
            Equivalence.TIMEOUT
            if isinstance(last_error, CheckTimeout)
            else Equivalence.NO_INFORMATION
        )
        self.quarantine.quarantine(
            job.key,
            job.circuit1,
            job.circuit2,
            job.configuration,
            job.strikes,
            verdict.value,
        )
        self.counters.count("service.quarantined")
        elapsed = time.monotonic() - job.submitted_at
        result = EquivalenceCheckingResult(
            verdict,
            job.configuration.strategy,
            elapsed,
            {
                "failure": dict(job.strikes[-1]),
                "quarantined": True,
                "strikes": len(job.strikes),
            },
        )
        self._resolve(job, result)

    # -- death, retirement, breaker ------------------------------------
    def _worker_died(self, worker: _Worker, now: float) -> None:
        """Reap one dead worker and route the consequences."""
        self._remove_worker(worker)
        worker.process.join(1.0)
        if worker.process.is_alive():  # pragma: no cover - EOF yet alive
            worker.process.kill()
            worker.process.join(1.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        job = worker.job
        worker.job = None
        exitcode = worker.process.exitcode
        if exitcode is not None and exitcode < 0:
            number = -exitcode
            name = _FATAL_SIGNALS.get(number)
            error: CheckError = CheckWorkerLost(
                f"pool worker died on signal {number}"
                + (f" ({name})" if name else ""),
                signal=number,
                pid=worker.process.pid,
            )
        else:
            error = CheckWorkerLost(
                "pool worker exited without reporting a result",
                exitcode=exitcode,
                pid=worker.process.pid,
            )
        self.counters.count("service.worker_deaths")
        if job is not None and job.state == _RUNNING:
            self._job_failed(job, error, worker_killed=True)
        elif self._note_jobless_death(now):
            return  # breaker tripped: no respawn
        self._schedule_respawn(now)

    def _note_jobless_death(self, now: float) -> bool:
        """Record one job-independent death; True when the breaker trips.

        Deaths attributable to a running job are the quarantine's
        territory; the storm breaker only watches deaths *no job
        explains* (startup crashes, idle keel-overs) — the signature of
        a systemically broken environment.
        """
        self._death_times.append(now)
        while (
            self._death_times
            and now - self._death_times[0] > self.config.storm_window
        ):
            self._death_times.popleft()
        if len(self._death_times) >= self.config.storm_threshold:
            self._trip_breaker()
            return True
        return False

    def _schedule_respawn(self, now: float) -> None:
        if self.broken:
            return
        delay = self.config.restart_backoff.delay(self._consecutive_deaths)
        self._consecutive_deaths += 1
        self._respawn_at.append(now + delay)

    def _trip_breaker(self) -> None:
        """Fail the pool loudly: no more restarts, every job degraded."""
        self.broken = True
        self.counters.count("service.breaker_trips")
        self._respawn_at.clear()
        for worker in list(self._workers):
            self._kill_worker(worker)
        error = PoolBroken(
            "restart storm: workers keep dying independent of any job",
            deaths_in_window=len(self._death_times),
            window_seconds=self.config.storm_window,
        )
        for job in list(self._jobs.values()):
            if job.state in (_QUEUED, _RUNNING):
                self._degrade(job, error)
        self._queue.clear()

    def _retire(self, worker: _Worker, reason: str) -> None:
        """Gracefully replace one healthy-but-spent worker."""
        if worker.retiring:
            return
        worker.retiring = True
        try:
            worker.conn.send({"type": "shutdown"})
        except (BrokenPipeError, OSError):
            pass
        self._remove_worker(worker)
        worker.process.join(2.0)
        if worker.process.is_alive():  # pragma: no cover - refuses to die
            worker.process.kill()
            worker.process.join(1.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        self.counters.count("service.workers_recycled")
        self.counters.count(f"service.recycled_{reason}")
        if not self.broken:
            self._spawn_worker()

    def _kill_worker(self, worker: _Worker) -> None:
        self._remove_worker(worker)
        worker.process.kill()
        worker.process.join(5.0)
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass

    def _remove_worker(self, worker: _Worker) -> None:
        if worker in self._workers:
            self._workers.remove(worker)

    def _enforce_deadlines(self, now: float) -> None:
        for worker in list(self._workers):
            if worker.job_deadline is None or now < worker.job_deadline:
                continue
            job = worker.job
            worker.job = None
            self._kill_worker(worker)
            self.counters.count("service.deadline_kills")
            self.counters.count("service.worker_deaths")
            if job is not None and job.state == _RUNNING:
                budget = job.hard_budget(self.config.grace)
                self._job_failed(
                    job,
                    CheckTimeout(
                        "hard wall-clock budget exceeded; worker killed",
                        hard=True,
                        budget_seconds=budget,
                        pid=worker.process.pid,
                    ),
                    worker_killed=True,
                )
            self._schedule_respawn(now)

    def _heartbeat(self, now: float) -> None:
        for worker in list(self._workers):
            if not worker.process.is_alive():
                self._worker_died(worker, now)
                continue
            if worker.job is not None or worker.retiring:
                continue
            if (
                worker.ping_deadline is not None
                and now >= worker.ping_deadline
            ):
                # An idle worker that ignores pings is lost even though
                # the process object still looks alive.
                self.counters.count("service.heartbeat_kills")
                self.counters.count("service.worker_deaths")
                self._kill_worker(worker)
                if not self._note_jobless_death(now):
                    self._schedule_respawn(now)
                continue
            if (
                worker.ready
                and worker.ping_deadline is None
                and now - worker.last_seen > self.config.heartbeat_interval
            ):
                try:
                    worker.conn.send({"type": "ping"})
                    worker.ping_deadline = (
                        now + self.config.heartbeat_timeout
                    )
                except (BrokenPipeError, OSError):
                    self._worker_died(worker, now)

    # ------------------------------------------------------------------
    # shutdown and audit
    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with ``drain`` the queue empties first."""
        if drain and not self.broken:
            try:
                self.drain(timeout=timeout)
            except CheckTimeout:  # pragma: no cover - operator escape
                pass
        for worker in list(self._workers):
            worker.retiring = True
            try:
                worker.conn.send({"type": "shutdown"})
            except (BrokenPipeError, OSError):
                pass
        for worker in list(self._workers):
            worker.process.join(2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(2.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        self._workers.clear()
        self._respawn_at.clear()
        self._started = False

    def audit(self) -> Dict[str, object]:
        """Zombie/leak audit over every process this pool ever spawned.

        ``leaked`` must be zero after shutdown: every child either
        reported an exitcode to ``join`` (reaped via waitpid) or is a
        supervision bug worth failing a test over.
        """
        alive = [p for p in self._all_processes if p.is_alive()]
        unreaped = [
            p
            for p in self._all_processes
            if not p.is_alive() and p.exitcode is None
        ]
        return {
            "spawned": len(self._all_processes),
            "alive": len(alive),
            "unreaped": len(unreaped),
            "leaked": len(alive) + len(unreaped),
        }
