"""Gate definitions and the :class:`Operation` circuit element.

A *base gate* is a small unitary acting on one or two target qubits,
optionally parameterized by real angles.  Controlled gates are not separate
definitions: an :class:`Operation` carries an arbitrary tuple of control
qubits on top of its base gate, so ``cx`` is the base gate ``x`` with one
control and a Toffoli is ``x`` with two controls.  This uniform treatment is
what the decision-diagram engine, the ZX converter and the compiler all rely
on.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.circuit.symbolic import ParamExpr

# Matrices are built lazily from the parameter tuple.
MatrixBuilder = Callable[[Tuple[float, ...]], np.ndarray]
# Maps the parameters of a gate to (inverse_gate_name, inverse_parameters).
InverseRule = Callable[[Tuple[float, ...]], Tuple[str, Tuple[float, ...]]]

_SQRT2_INV = 1.0 / math.sqrt(2.0)


@dataclass(frozen=True)
class GateDefinition:
    """Static description of a base gate.

    Attributes:
        name: Lower-case OpenQASM-style mnemonic (``"h"``, ``"rz"``, ...).
        num_targets: Number of target qubits the base unitary acts on.
        num_params: Number of real parameters (rotation angles).
        matrix: Builder returning the ``2^k x 2^k`` unitary for ``k`` targets.
        inverse: Rule mapping parameters to the inverse gate and parameters.
        hermitian: True if the gate is its own inverse for all parameters.
    """

    name: str
    num_targets: int
    num_params: int
    matrix: MatrixBuilder
    inverse: Optional[InverseRule] = None
    hermitian: bool = False

    def inverse_of(self, params: Tuple[float, ...]) -> Tuple[str, Tuple[float, ...]]:
        """Return the ``(name, params)`` of this gate's inverse."""
        if self.hermitian:
            return self.name, params
        if self.inverse is None:
            raise ValueError(f"gate {self.name!r} has no inverse rule")
        return self.inverse(params)


def _mat(rows) -> np.ndarray:
    return np.array(rows, dtype=complex)


def _id(_params):
    return _mat([[1, 0], [0, 1]])


def _x(_params):
    return _mat([[0, 1], [1, 0]])


def _y(_params):
    return _mat([[0, -1j], [1j, 0]])


def _z(_params):
    return _mat([[1, 0], [0, -1]])


def _h(_params):
    return _SQRT2_INV * _mat([[1, 1], [1, -1]])


def _s(_params):
    return _mat([[1, 0], [0, 1j]])


def _sdg(_params):
    return _mat([[1, 0], [0, -1j]])


def _t(_params):
    return _mat([[1, 0], [0, cmath.exp(1j * math.pi / 4)]])


def _tdg(_params):
    return _mat([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]])


def _sx(_params):
    return 0.5 * _mat([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]])


def _sxdg(_params):
    return 0.5 * _mat([[1 - 1j, 1 + 1j], [1 + 1j, 1 - 1j]])


def _rx(params):
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -1j * s], [-1j * s, c]])


def _ry(params):
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat([[c, -s], [s, c]])


def _rz(params):
    (theta,) = params
    return _mat([[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]])


def _p(params):
    (lam,) = params
    return _mat([[1, 0], [0, cmath.exp(1j * lam)]])


def _u2(params):
    phi, lam = params
    return _SQRT2_INV * _mat(
        [
            [1, -cmath.exp(1j * lam)],
            [cmath.exp(1j * phi), cmath.exp(1j * (phi + lam))],
        ]
    )


def _u3(params):
    theta, phi, lam = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return _mat(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ]
    )


def _swap(_params):
    return _mat(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ]
    )


def _iswap(_params):
    return _mat(
        [
            [1, 0, 0, 0],
            [0, 0, 1j, 0],
            [0, 1j, 0, 0],
            [0, 0, 0, 1],
        ]
    )


def _rzz(params):
    (theta,) = params
    a = cmath.exp(-1j * theta / 2)
    b = cmath.exp(1j * theta / 2)
    return np.diag([a, b, b, a]).astype(complex)


def _rxx(params):
    (theta,) = params
    c, s = math.cos(theta / 2), -1j * math.sin(theta / 2)
    m = np.zeros((4, 4), dtype=complex)
    m[0, 0] = m[1, 1] = m[2, 2] = m[3, 3] = c
    m[0, 3] = m[3, 0] = s
    m[1, 2] = m[2, 1] = s
    return m


def _neg_single(name: str) -> InverseRule:
    def rule(params: Tuple[float, ...]) -> Tuple[str, Tuple[float, ...]]:
        return name, tuple(-p for p in params)

    return rule


def _swap_name(name: str) -> InverseRule:
    def rule(params: Tuple[float, ...]) -> Tuple[str, Tuple[float, ...]]:
        return name, params

    return rule


def _u2_inverse(params: Tuple[float, ...]) -> Tuple[str, Tuple[float, ...]]:
    phi, lam = params
    return "u3", (-math.pi / 2, -lam, -phi)


def _u3_inverse(params: Tuple[float, ...]) -> Tuple[str, Tuple[float, ...]]:
    theta, phi, lam = params
    return "u3", (-theta, -lam, -phi)


STANDARD_GATES: Dict[str, GateDefinition] = {}


def _register(defn: GateDefinition) -> None:
    STANDARD_GATES[defn.name] = defn


_register(GateDefinition("id", 1, 0, _id, hermitian=True))
_register(GateDefinition("x", 1, 0, _x, hermitian=True))
_register(GateDefinition("y", 1, 0, _y, hermitian=True))
_register(GateDefinition("z", 1, 0, _z, hermitian=True))
_register(GateDefinition("h", 1, 0, _h, hermitian=True))
_register(GateDefinition("s", 1, 0, _s, inverse=_swap_name("sdg")))
_register(GateDefinition("sdg", 1, 0, _sdg, inverse=_swap_name("s")))
_register(GateDefinition("t", 1, 0, _t, inverse=_swap_name("tdg")))
_register(GateDefinition("tdg", 1, 0, _tdg, inverse=_swap_name("t")))
_register(GateDefinition("sx", 1, 0, _sx, inverse=_swap_name("sxdg")))
_register(GateDefinition("sxdg", 1, 0, _sxdg, inverse=_swap_name("sx")))
_register(GateDefinition("rx", 1, 1, _rx, inverse=_neg_single("rx")))
_register(GateDefinition("ry", 1, 1, _ry, inverse=_neg_single("ry")))
_register(GateDefinition("rz", 1, 1, _rz, inverse=_neg_single("rz")))
_register(GateDefinition("p", 1, 1, _p, inverse=_neg_single("p")))
_register(GateDefinition("u2", 1, 2, _u2, inverse=_u2_inverse))
_register(GateDefinition("u3", 1, 3, _u3, inverse=_u3_inverse))
_register(GateDefinition("swap", 2, 0, _swap, hermitian=True))
_register(GateDefinition("iswap", 2, 0, _iswap, inverse=None))
_register(GateDefinition("rzz", 2, 1, _rzz, inverse=_neg_single("rzz")))
_register(GateDefinition("rxx", 2, 1, _rxx, inverse=_neg_single("rxx")))

#: Aliases accepted by the QASM parser and the circuit builder API.
GATE_ALIASES: Dict[str, str] = {
    "u1": "p",
    "u": "u3",
    "phase": "p",
    "cnot": "x",  # handled with a control by the parser
}


def gate_definition(name: str) -> GateDefinition:
    """Look up a base-gate definition by (aliased) name.

    Raises:
        KeyError: if the name is not a known standard gate.
    """
    canonical = GATE_ALIASES.get(name, name)
    return STANDARD_GATES[canonical]


def base_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the base (uncontrolled) unitary matrix of a standard gate."""
    defn = gate_definition(name)
    params = tuple(params)
    if len(params) != defn.num_params:
        raise ValueError(
            f"gate {name!r} expects {defn.num_params} parameter(s), "
            f"got {len(params)}"
        )
    if any(isinstance(p, ParamExpr) for p in params):
        raise TypeError(
            f"gate {name!r} has symbolic parameters; instantiate the "
            "circuit (repro.circuit.symbolic.instantiate_circuit) before "
            "building matrices"
        )
    return defn.matrix(params)


@dataclass(frozen=True)
class Operation:
    """One circuit element: a (possibly controlled) standard gate.

    Attributes:
        name: Base gate mnemonic; must be a key of :data:`STANDARD_GATES`.
        targets: Target qubit indices (length must equal the base gate's
            ``num_targets``).
        controls: Positive control qubit indices (possibly empty).
        params: Real gate parameters.
    """

    name: str
    targets: Tuple[int, ...]
    controls: Tuple[int, ...] = ()
    params: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        defn = gate_definition(self.name)
        object.__setattr__(self, "name", GATE_ALIASES.get(self.name, self.name))
        if len(self.targets) != defn.num_targets:
            raise ValueError(
                f"gate {self.name!r} needs {defn.num_targets} target(s), "
                f"got {self.targets}"
            )
        if len(self.params) != defn.num_params:
            raise ValueError(
                f"gate {self.name!r} needs {defn.num_params} parameter(s), "
                f"got {self.params}"
            )
        qubits = self.targets + self.controls
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits in operation: {self}")
        if any(q < 0 for q in qubits):
            raise ValueError(f"negative qubit index in operation: {self}")

    @property
    def definition(self) -> GateDefinition:
        """The base-gate definition of this operation."""
        return gate_definition(self.name)

    @property
    def qubits(self) -> Tuple[int, ...]:
        """All qubits the operation touches (targets then controls)."""
        return self.targets + self.controls

    @property
    def num_qubits(self) -> int:
        return len(self.qubits)

    @property
    def is_controlled(self) -> bool:
        return bool(self.controls)

    def matrix(self) -> np.ndarray:
        """The base (uncontrolled) unitary of the operation."""
        return base_matrix(self.name, self.params)

    def inverse(self) -> "Operation":
        """Return the inverse operation (same controls)."""
        name, params = self.definition.inverse_of(self.params)
        return Operation(name, self.targets, self.controls, params)

    def remapped(self, permutation: Dict[int, int]) -> "Operation":
        """Return a copy with every qubit ``q`` replaced by ``permutation[q]``."""
        return Operation(
            self.name,
            tuple(permutation[q] for q in self.targets),
            tuple(permutation[q] for q in self.controls),
            self.params,
        )

    def is_clifford(self, atol: float = 1e-9) -> bool:
        """Heuristic Clifford test for the common gate set.

        Covers the gates our generators emit: parameter-free Clifford gates,
        ``rz/p/rx/ry`` at multiples of pi/2, and at most one control on
        ``x``/``z`` (CX / CZ).  Multi-controlled gates are never Clifford.
        """
        if len(self.controls) > 1:
            return False
        if self.controls and self.name not in ("x", "z", "y"):
            return False
        clifford_names = {
            "id", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg", "swap", "iswap",
        }
        if self.name in clifford_names:
            return True
        if self.name in ("rz", "rx", "ry", "p"):
            if not isinstance(self.params[0], (int, float)):
                # Symbolic angle: Clifford only for special valuations.
                return False
            angle = self.params[0] % (2 * math.pi)
            return min(
                abs(angle - k * math.pi / 2) for k in range(5)
            ) < atol
        return False

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        ctrl = "c" * len(self.controls)
        args = ", ".join(
            str(p) if isinstance(p, ParamExpr) else f"{p:.6g}"
            for p in self.params
        )
        head = f"{ctrl}{self.name}" + (f"({args})" if args else "")
        return f"{head} {list(self.controls) + list(self.targets)}"
