"""OpenQASM 2.0 reader and writer.

The paper's case study exchanges all benchmarks as QASM files ("All
benchmarks are provided in the form of QASM files, which serves as a common
language for both tools").  This module provides the same interchange layer
for the reproduction: a recursive-descent parser covering the OpenQASM 2.0
constructs our benchmark suite emits (including user-defined ``gate``
macros, which are expanded inline) and a writer producing files any
OpenQASM 2.0 consumer understands.

Supported statements: ``OPENQASM``, ``include`` (the standard library is
built in), ``qreg``, ``creg``, ``gate`` definitions, gate applications with
register broadcasting, ``barrier`` and ``measure`` (both ignored for the
unitary semantics), and ``//`` comments.

Parameterized circuits use a small dialect extension: a pragma comment

    // repro:params theta phi

declares free parameter names, after which gate arguments may mention
them in *linear* expressions (``rz((1/2)*theta) q[0];``).  Declared
programs are evaluated with exact rational arithmetic for integer
literals so that coefficients survive the round trip unchanged; files
without the pragma take the plain float path, bit-for-bit identical to
before.  Nonlinear uses of a parameter (products of two parameters,
division by a parameter, parameters inside functions or powers) are
rejected with located caret errors.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.circuit.symbolic import ParamExpr, circuit_parameters, symbol


class QasmError(ValueError):
    """Raised on malformed OpenQASM input.

    When the error location is known, ``line`` and ``column`` are
    1-based source coordinates, ``source_line`` is the offending line of
    the input, and the rendered message points a caret at the column::

        line 3, column 9: unknown register 'r'
          cx q[0],r[1];
                  ^
    """

    def __init__(
        self,
        message: str,
        *,
        line: Optional[int] = None,
        column: Optional[int] = None,
        source_line: Optional[str] = None,
    ) -> None:
        self.line = line
        self.column = column
        self.source_line = source_line
        if line is not None and column is not None:
            rendered = f"line {line}, column {column}: {message}"
            if source_line is not None:
                rendered += f"\n  {source_line}\n  {' ' * (column - 1)}^"
        else:
            rendered = message
        super().__init__(rendered)

    @classmethod
    def at(cls, message: str, source: str, offset: int) -> "QasmError":
        """Build a located error from a character offset into ``source``."""
        offset = max(0, min(offset, len(source)))
        line_start = source.rfind("\n", 0, offset) + 1
        line_end = source.find("\n", offset)
        if line_end == -1:
            line_end = len(source)
        return cls(
            message,
            line=source.count("\n", 0, offset) + 1,
            column=offset - line_start + 1,
            source_line=source[line_start:line_end],
        )


class Token(NamedTuple):
    """One lexed token plus its character offset into the source."""

    kind: str
    text: str
    pos: int


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<REAL>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<INT>\d+)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>->|==|[{}()\[\];,+\-*/^])
  | (?P<STRING>"[^"]*")
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QasmError.at(
                f"unexpected character {text[pos]!r}", text, pos
            )
        kind = match.lastgroup
        if kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------
_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
}


class _Parser:
    """Recursive-descent parser over the token stream.

    ``source`` is the original program text; it turns every parse error
    into a located :class:`QasmError` (line, column, offending line).

    With ``symbolic=True`` (set when a ``repro:params`` pragma declared
    free parameters) integer literals evaluate to exact
    :class:`~fractions.Fraction` values and expressions may produce
    :class:`~repro.circuit.symbolic.ParamExpr` results; without it the
    evaluator is the original all-float one.
    """

    def __init__(
        self,
        tokens: List[Token],
        source: str = "",
        symbolic: bool = False,
    ) -> None:
        self._tokens = tokens
        self._index = 0
        self._source = source
        self._symbolic = symbolic

    # -- token helpers --------------------------------------------------
    def peek(self) -> Token:
        return self._tokens[self._index]

    def next(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> QasmError:
        """A located error at ``token`` (default: the upcoming token)."""
        if token is None:
            token = self.peek()
        return QasmError.at(message, self._source, token.pos)

    def expect(self, value: str) -> str:
        token = self.next()
        if token.text != value:
            raise self.error(
                f"expected {value!r}, got {token.text or 'end of input'!r}",
                token,
            )
        return token.text

    def expect_kind(self, kind: str) -> str:
        token = self.next()
        if token.kind != kind:
            raise self.error(
                f"expected {kind}, got {token.text or 'end of input'!r}",
                token,
            )
        return token.text

    def accept(self, value: str) -> bool:
        if self.peek().text == value:
            self.next()
            return True
        return False

    # -- expressions ----------------------------------------------------
    # In symbolic mode values are Union[float, Fraction, ParamExpr]; the
    # plain mode only ever sees floats.
    def parse_expression(self, env: Dict[str, object]) -> object:
        return self._parse_additive(env)

    def _parse_additive(self, env: Dict[str, object]) -> object:
        value = self._parse_multiplicative(env)
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            rhs = self._parse_multiplicative(env)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _parse_multiplicative(self, env: Dict[str, object]) -> object:
        value = self._parse_unary(env)
        while self.peek()[1] in ("*", "/"):
            op_token = self.next()
            rhs = self._parse_unary(env)
            if op_token.text == "*":
                if isinstance(value, ParamExpr) and isinstance(rhs, ParamExpr):
                    raise self.error(
                        "nonlinear parameter expression: cannot multiply "
                        "two parameter expressions",
                        op_token,
                    )
                value = value * rhs
            else:
                if isinstance(rhs, ParamExpr):
                    raise self.error(
                        "cannot divide by a parameter expression", op_token
                    )
                value = value / rhs
        return value

    def _parse_unary(self, env: Dict[str, object]) -> object:
        if self.accept("-"):
            return -self._parse_unary(env)
        if self.accept("+"):
            return self._parse_unary(env)
        return self._parse_power(env)

    def _parse_power(self, env: Dict[str, object]) -> object:
        base = self._parse_atom(env)
        op_token = self.peek()
        if self.accept("^"):
            exponent = self._parse_unary(env)
            if isinstance(base, ParamExpr) or isinstance(exponent, ParamExpr):
                raise self.error(
                    "cannot exponentiate a parameter expression", op_token
                )
            return base**exponent
        return base

    def _parse_atom(self, env: Dict[str, object]) -> object:
        token = self.next()
        kind, text = token.kind, token.text
        if text == "(":
            value = self.parse_expression(env)
            self.expect(")")
            return value
        if kind == "REAL":
            return float(text)
        if kind == "INT":
            return Fraction(int(text)) if self._symbolic else float(text)
        if kind == "ID":
            if text == "pi":
                return math.pi
            if text in _FUNCTIONS:
                self.expect("(")
                arg = self.parse_expression(env)
                self.expect(")")
                if isinstance(arg, ParamExpr):
                    raise self.error(
                        f"cannot apply {text!r} to a parameter expression "
                        "(only linear expressions are supported)",
                        token,
                    )
                return _FUNCTIONS[text](float(arg))
            if text in env:
                return env[text]
            raise self.error(
                f"unknown identifier {text!r} in expression", token
            )
        raise self.error(
            f"unexpected token {text or 'end of input'!r} in expression", token
        )


# ---------------------------------------------------------------------------
# gate application table
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _BuiltinGate:
    """Shape of a built-in QASM gate: base gate + implicit controls."""

    base: str
    num_controls: int
    num_params: int
    num_targets: int = 1


_BUILTINS: Dict[str, _BuiltinGate] = {
    "id": _BuiltinGate("id", 0, 0),
    "u0": _BuiltinGate("id", 0, 1),
    "x": _BuiltinGate("x", 0, 0),
    "y": _BuiltinGate("y", 0, 0),
    "z": _BuiltinGate("z", 0, 0),
    "h": _BuiltinGate("h", 0, 0),
    "s": _BuiltinGate("s", 0, 0),
    "sdg": _BuiltinGate("sdg", 0, 0),
    "t": _BuiltinGate("t", 0, 0),
    "tdg": _BuiltinGate("tdg", 0, 0),
    "sx": _BuiltinGate("sx", 0, 0),
    "sxdg": _BuiltinGate("sxdg", 0, 0),
    "rx": _BuiltinGate("rx", 0, 1),
    "ry": _BuiltinGate("ry", 0, 1),
    "rz": _BuiltinGate("rz", 0, 1),
    "p": _BuiltinGate("p", 0, 1),
    "u1": _BuiltinGate("p", 0, 1),
    "u2": _BuiltinGate("u2", 0, 2),
    "u3": _BuiltinGate("u3", 0, 3),
    "u": _BuiltinGate("u3", 0, 3),
    "cx": _BuiltinGate("x", 1, 0),
    "CX": _BuiltinGate("x", 1, 0),
    "cy": _BuiltinGate("y", 1, 0),
    "cz": _BuiltinGate("z", 1, 0),
    "ch": _BuiltinGate("h", 1, 0),
    "csx": _BuiltinGate("sx", 1, 0),
    "cs": _BuiltinGate("s", 1, 0),
    "csdg": _BuiltinGate("sdg", 1, 0),
    "crx": _BuiltinGate("rx", 1, 1),
    "cry": _BuiltinGate("ry", 1, 1),
    "crz": _BuiltinGate("rz", 1, 1),
    "cp": _BuiltinGate("p", 1, 1),
    "cu1": _BuiltinGate("p", 1, 1),
    "cu3": _BuiltinGate("u3", 1, 3),
    "ccx": _BuiltinGate("x", 2, 0),
    "ccz": _BuiltinGate("z", 2, 0),
    "c3x": _BuiltinGate("x", 3, 0),
    "c4x": _BuiltinGate("x", 4, 0),
    "swap": _BuiltinGate("swap", 0, 0, num_targets=2),
    "iswap": _BuiltinGate("iswap", 0, 0, num_targets=2),
    "cswap": _BuiltinGate("swap", 1, 0, num_targets=2),
    "rzz": _BuiltinGate("rzz", 0, 1, num_targets=2),
    "rxx": _BuiltinGate("rxx", 0, 1, num_targets=2),
}

#: ``mcx_<k>`` style names for arbitrary multi-controlled X/Z.
_MCX_RE = re.compile(r"^(?:mcx|mct)_?(\d+)$")
_MCZ_RE = re.compile(r"^mcz_?(\d+)$")


def _builtin_for(name: str) -> Optional[_BuiltinGate]:
    if name in _BUILTINS:
        return _BUILTINS[name]
    match = _MCX_RE.match(name)
    if match:
        return _BuiltinGate("x", int(match.group(1)), 0)
    match = _MCZ_RE.match(name)
    if match:
        return _BuiltinGate("z", int(match.group(1)), 0)
    return None


@dataclass
class _GateMacro:
    """A user-defined ``gate`` block, expanded on application."""

    name: str
    params: List[str]
    qubits: List[str]
    # body statements: (gate_name, param_token_slices, qubit_names, offset)
    body: List[Tuple[str, List[List[Token]], List[str], int]]


#: The dialect pragma declaring free parameters: ``// repro:params a b``.
_PARAMS_PRAGMA_RE = re.compile(r"^[ \t]*//[ \t]*repro:params\b(.*)$", re.MULTILINE)


def _scan_params_pragma(text: str) -> Dict[str, ParamExpr]:
    """Collect declared parameter names (with located errors) from ``text``."""
    params: Dict[str, ParamExpr] = {}
    for match in _PARAMS_PRAGMA_RE.finditer(text):
        rest = match.group(1)
        base = match.end() - len(rest)
        for name_match in re.finditer(r"\S+", rest):
            name = name_match.group()
            try:
                params[name] = symbol(name)
            except ValueError as exc:
                raise QasmError.at(str(exc), text, base + name_match.start())
    return params


def _finalize_param(value: object) -> object:
    """Collapse an evaluated expression to ``float`` or ``ParamExpr``."""
    if isinstance(value, ParamExpr):
        return value
    return float(value)


class _QasmReader:
    """Parses a full OpenQASM 2.0 program into a :class:`QuantumCircuit`."""

    def __init__(self, text: str) -> None:
        self._source = text
        self._params = _scan_params_pragma(text)
        self._symbolic = bool(self._params)
        self._parser = _Parser(_tokenize(text), text, symbolic=self._symbolic)
        self._registers: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self._num_qubits = 0
        self._macros: Dict[str, _GateMacro] = {}
        self._operations: List[Operation] = []

    def _error(self, message: str, pos: int) -> QasmError:
        return QasmError.at(message, self._source, pos)

    def run(self, name: str = "qasm") -> QuantumCircuit:
        parser = self._parser
        while parser.peek().kind != "EOF":
            kind, text, _ = parser.peek()
            if text == "OPENQASM":
                parser.next()
                parser.expect_kind("REAL")
                parser.expect(";")
            elif text == "include":
                parser.next()
                parser.expect_kind("STRING")
                parser.expect(";")
            elif text == "qreg":
                self._parse_qreg()
            elif text == "creg":
                self._parse_creg()
            elif text == "gate":
                self._parse_gate_definition()
            elif text == "barrier":
                self._skip_statement()
            elif text == "measure":
                self._skip_statement()
            elif text == "reset":
                self._skip_statement()
            elif kind == "ID":
                self._parse_application()
            else:
                raise parser.error(f"unexpected token {text!r}")
        circuit = QuantumCircuit(self._num_qubits, name=name)
        for op in self._operations:
            circuit.append(op)
        return circuit

    # -- declarations -----------------------------------------------------
    def _parse_qreg(self) -> None:
        parser = self._parser
        parser.expect("qreg")
        name_token = parser.peek()
        reg_name = parser.expect_kind("ID")
        parser.expect("[")
        size = int(parser.expect_kind("INT"))
        parser.expect("]")
        parser.expect(";")
        if reg_name in self._registers:
            raise parser.error(f"duplicate qreg {reg_name!r}", name_token)
        self._registers[reg_name] = (self._num_qubits, size)
        self._num_qubits += size

    def _parse_creg(self) -> None:
        parser = self._parser
        parser.expect("creg")
        parser.expect_kind("ID")
        parser.expect("[")
        parser.expect_kind("INT")
        parser.expect("]")
        parser.expect(";")

    def _skip_statement(self) -> None:
        parser = self._parser
        while parser.peek().text != ";":
            if parser.peek().kind == "EOF":
                raise parser.error("unterminated statement")
            parser.next()
        parser.expect(";")

    # -- gate definitions ---------------------------------------------------
    def _parse_gate_definition(self) -> None:
        parser = self._parser
        parser.expect("gate")
        gate_name = parser.expect_kind("ID")
        params: List[str] = []
        if parser.accept("("):
            if not parser.accept(")"):
                params.append(parser.expect_kind("ID"))
                while parser.accept(","):
                    params.append(parser.expect_kind("ID"))
                parser.expect(")")
        qubits = [parser.expect_kind("ID")]
        while parser.accept(","):
            qubits.append(parser.expect_kind("ID"))
        parser.expect("{")
        body: List[Tuple[str, List[List[Token]], List[str], int]] = []
        while not parser.accept("}"):
            if parser.peek().text == "barrier":
                self._skip_statement()
                continue
            inner_token = parser.peek()
            inner_name = parser.expect_kind("ID")
            param_slices: List[List[Token]] = []
            if parser.accept("("):
                if not parser.accept(")"):
                    param_slices.append(self._collect_expression_tokens())
                    while parser.accept(","):
                        param_slices.append(self._collect_expression_tokens())
                    parser.expect(")")
            args = [parser.expect_kind("ID")]
            while parser.accept(","):
                args.append(parser.expect_kind("ID"))
            parser.expect(";")
            body.append((inner_name, param_slices, args, inner_token.pos))
        self._macros[gate_name] = _GateMacro(gate_name, params, qubits, body)

    def _collect_expression_tokens(self) -> List[Token]:
        """Grab raw tokens of one expression up to an unnested ',' or ')'."""
        parser = self._parser
        depth = 0
        tokens: List[Token] = []
        while True:
            kind, text, pos = parser.peek()
            if kind == "EOF":
                raise parser.error("unterminated expression")
            if depth == 0 and text in (",", ")"):
                break
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
            tokens.append(parser.next())
        tokens.append(Token("EOF", "", parser.peek().pos))
        return tokens

    # -- applications ------------------------------------------------------
    def _parse_application(self) -> None:
        parser = self._parser
        gate_token = parser.peek()
        gate_name = parser.expect_kind("ID")
        env: Dict[str, object] = dict(self._params)
        params: List[object] = []
        if parser.accept("("):
            if not parser.accept(")"):
                params.append(_finalize_param(parser.parse_expression(env)))
                while parser.accept(","):
                    params.append(
                        _finalize_param(parser.parse_expression(env))
                    )
                parser.expect(")")
        arguments: List[List[int]] = [self._parse_argument()]
        while parser.accept(","):
            arguments.append(self._parse_argument())
        parser.expect(";")
        self._emit(gate_name, params, arguments, gate_token.pos)

    def _parse_argument(self) -> List[int]:
        """A register or indexed qubit; returns the list of qubit indices."""
        parser = self._parser
        name_token = parser.peek()
        reg_name = parser.expect_kind("ID")
        if reg_name not in self._registers:
            raise parser.error(f"unknown register {reg_name!r}", name_token)
        offset, size = self._registers[reg_name]
        if parser.accept("["):
            index_token = parser.peek()
            index = int(parser.expect_kind("INT"))
            parser.expect("]")
            if index >= size:
                raise parser.error(
                    f"index {index} out of range for {reg_name!r} "
                    f"(size {size})",
                    index_token,
                )
            return [offset + index]
        return [offset + i for i in range(size)]

    def _emit(
        self,
        gate_name: str,
        params: List[object],
        arguments: List[List[int]],
        pos: int,
    ) -> None:
        """Broadcast a gate application over register arguments."""
        lengths = {len(arg) for arg in arguments if len(arg) > 1}
        if len(lengths) > 1:
            raise self._error("mismatched register sizes in broadcast", pos)
        repeat = lengths.pop() if lengths else 1
        for i in range(repeat):
            qubits = [arg[i] if len(arg) > 1 else arg[0] for arg in arguments]
            self._emit_single(gate_name, params, qubits, pos)

    def _emit_single(
        self,
        gate_name: str,
        params: List[object],
        qubits: List[int],
        pos: int,
    ) -> None:
        builtin = _builtin_for(gate_name)
        if builtin is not None:
            expected = builtin.num_controls + builtin.num_targets
            if len(qubits) != expected:
                raise self._error(
                    f"gate {gate_name!r} expects {expected} qubits, "
                    f"got {len(qubits)}",
                    pos,
                )
            if len(params) != builtin.num_params:
                raise self._error(
                    f"gate {gate_name!r} expects {builtin.num_params} "
                    f"params, got {len(params)}",
                    pos,
                )
            controls = tuple(qubits[: builtin.num_controls])
            targets = tuple(qubits[builtin.num_controls:])
            if builtin.base == "id" and gate_name == "u0":
                params = []
            self._operations.append(
                Operation(builtin.base, targets, controls, tuple(params))
            )
            return
        macro = self._macros.get(gate_name)
        if macro is None:
            raise self._error(f"unknown gate {gate_name!r}", pos)
        if len(params) != len(macro.params):
            raise self._error(
                f"gate {gate_name!r} expects {len(macro.params)} params, "
                f"got {len(params)}",
                pos,
            )
        if len(qubits) != len(macro.qubits):
            raise self._error(
                f"gate {gate_name!r} expects {len(macro.qubits)} qubits, "
                f"got {len(qubits)}",
                pos,
            )
        env = dict(zip(macro.params, params))
        binding = dict(zip(macro.qubits, qubits))
        for inner_name, param_slices, args, inner_pos in macro.body:
            inner_params = [
                _finalize_param(
                    _Parser(
                        tokens, self._source, symbolic=self._symbolic
                    ).parse_expression(env)
                )
                for tokens in param_slices
            ]
            inner_qubits = [binding[a] for a in args]
            self._emit_single(inner_name, inner_params, inner_qubits, inner_pos)


def circuit_from_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""
    return _QasmReader(text).run(name=name)


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------
_CONTROLLED_NAMES = {
    ("x", 1): "cx",
    ("y", 1): "cy",
    ("z", 1): "cz",
    ("h", 1): "ch",
    ("sx", 1): "csx",
    ("s", 1): "cs",
    ("sdg", 1): "csdg",
    ("rx", 1): "crx",
    ("ry", 1): "cry",
    ("rz", 1): "crz",
    ("p", 1): "cp",
    ("u3", 1): "cu3",
    ("x", 2): "ccx",
    ("z", 2): "ccz",
    ("x", 3): "c3x",
    ("x", 4): "c4x",
    ("swap", 1): "cswap",
}


def _format_param(value) -> str:
    if isinstance(value, ParamExpr):
        return str(value)
    return repr(float(value))


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0.

    Multi-controlled X/Z beyond four controls are emitted with the
    ``mcx_<k>`` convention understood by :func:`circuit_from_qasm`.
    Symbolic parameters are declared with the ``repro:params`` pragma
    and rendered canonically, so writer -> parser -> writer is a
    fixpoint.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    parameters = circuit_parameters(circuit)
    if parameters:
        lines.append(f"// repro:params {' '.join(parameters)}")
    for op in circuit:
        num_controls = len(op.controls)
        if num_controls == 0:
            name = {"u3": "u3", "p": "p"}.get(op.name, op.name)
        else:
            key = (op.name, num_controls)
            if key in _CONTROLLED_NAMES:
                name = _CONTROLLED_NAMES[key]
            elif op.name == "x":
                name = f"mcx_{num_controls}"
            elif op.name == "z":
                name = f"mcz_{num_controls}"
            else:
                raise QasmError(
                    f"cannot serialize {num_controls}-controlled {op.name!r}"
                )
        params = (
            "(" + ",".join(_format_param(p) for p in op.params) + ")"
            if op.params
            else ""
        )
        qubits = ",".join(
            f"q[{q}]" for q in tuple(op.controls) + tuple(op.targets)
        )
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"
