"""OpenQASM 2.0 reader and writer.

The paper's case study exchanges all benchmarks as QASM files ("All
benchmarks are provided in the form of QASM files, which serves as a common
language for both tools").  This module provides the same interchange layer
for the reproduction: a recursive-descent parser covering the OpenQASM 2.0
constructs our benchmark suite emits (including user-defined ``gate``
macros, which are expanded inline) and a writer producing files any
OpenQASM 2.0 consumer understands.

Supported statements: ``OPENQASM``, ``include`` (the standard library is
built in), ``qreg``, ``creg``, ``gate`` definitions, gate applications with
register broadcasting, ``barrier`` and ``measure`` (both ignored for the
unitary semantics), and ``//`` comments.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation


class QasmError(ValueError):
    """Raised on malformed OpenQASM input."""


# ---------------------------------------------------------------------------
# tokenizer
# ---------------------------------------------------------------------------
_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<COMMENT>//[^\n]*)
  | (?P<REAL>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<INT>\d+)
  | (?P<ID>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<OP>->|==|[{}()\[\];,+\-*/^])
  | (?P<STRING>"[^"]*")
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise QasmError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, match.group()))
        pos = match.end()
    tokens.append(("EOF", ""))
    return tokens


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------
_FUNCTIONS: Dict[str, Callable[[float], float]] = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
}


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def next(self) -> Tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def expect(self, value: str) -> str:
        kind, text = self.next()
        if text != value:
            raise QasmError(f"expected {value!r}, got {text!r}")
        return text

    def expect_kind(self, kind: str) -> str:
        actual, text = self.next()
        if actual != kind:
            raise QasmError(f"expected {kind}, got {text!r}")
        return text

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.next()
            return True
        return False

    # -- expressions ----------------------------------------------------
    def parse_expression(self, env: Dict[str, float]) -> float:
        return self._parse_additive(env)

    def _parse_additive(self, env: Dict[str, float]) -> float:
        value = self._parse_multiplicative(env)
        while self.peek()[1] in ("+", "-"):
            op = self.next()[1]
            rhs = self._parse_multiplicative(env)
            value = value + rhs if op == "+" else value - rhs
        return value

    def _parse_multiplicative(self, env: Dict[str, float]) -> float:
        value = self._parse_unary(env)
        while self.peek()[1] in ("*", "/"):
            op = self.next()[1]
            rhs = self._parse_unary(env)
            value = value * rhs if op == "*" else value / rhs
        return value

    def _parse_unary(self, env: Dict[str, float]) -> float:
        if self.accept("-"):
            return -self._parse_unary(env)
        if self.accept("+"):
            return self._parse_unary(env)
        return self._parse_power(env)

    def _parse_power(self, env: Dict[str, float]) -> float:
        base = self._parse_atom(env)
        if self.accept("^"):
            exponent = self._parse_unary(env)
            return base**exponent
        return base

    def _parse_atom(self, env: Dict[str, float]) -> float:
        kind, text = self.next()
        if text == "(":
            value = self.parse_expression(env)
            self.expect(")")
            return value
        if kind in ("REAL", "INT"):
            return float(text)
        if kind == "ID":
            if text == "pi":
                return math.pi
            if text in _FUNCTIONS:
                self.expect("(")
                arg = self.parse_expression(env)
                self.expect(")")
                return _FUNCTIONS[text](arg)
            if text in env:
                return env[text]
            raise QasmError(f"unknown identifier {text!r} in expression")
        raise QasmError(f"unexpected token {text!r} in expression")


# ---------------------------------------------------------------------------
# gate application table
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _BuiltinGate:
    """Shape of a built-in QASM gate: base gate + implicit controls."""

    base: str
    num_controls: int
    num_params: int
    num_targets: int = 1


_BUILTINS: Dict[str, _BuiltinGate] = {
    "id": _BuiltinGate("id", 0, 0),
    "u0": _BuiltinGate("id", 0, 1),
    "x": _BuiltinGate("x", 0, 0),
    "y": _BuiltinGate("y", 0, 0),
    "z": _BuiltinGate("z", 0, 0),
    "h": _BuiltinGate("h", 0, 0),
    "s": _BuiltinGate("s", 0, 0),
    "sdg": _BuiltinGate("sdg", 0, 0),
    "t": _BuiltinGate("t", 0, 0),
    "tdg": _BuiltinGate("tdg", 0, 0),
    "sx": _BuiltinGate("sx", 0, 0),
    "sxdg": _BuiltinGate("sxdg", 0, 0),
    "rx": _BuiltinGate("rx", 0, 1),
    "ry": _BuiltinGate("ry", 0, 1),
    "rz": _BuiltinGate("rz", 0, 1),
    "p": _BuiltinGate("p", 0, 1),
    "u1": _BuiltinGate("p", 0, 1),
    "u2": _BuiltinGate("u2", 0, 2),
    "u3": _BuiltinGate("u3", 0, 3),
    "u": _BuiltinGate("u3", 0, 3),
    "cx": _BuiltinGate("x", 1, 0),
    "CX": _BuiltinGate("x", 1, 0),
    "cy": _BuiltinGate("y", 1, 0),
    "cz": _BuiltinGate("z", 1, 0),
    "ch": _BuiltinGate("h", 1, 0),
    "csx": _BuiltinGate("sx", 1, 0),
    "crx": _BuiltinGate("rx", 1, 1),
    "cry": _BuiltinGate("ry", 1, 1),
    "crz": _BuiltinGate("rz", 1, 1),
    "cp": _BuiltinGate("p", 1, 1),
    "cu1": _BuiltinGate("p", 1, 1),
    "cu3": _BuiltinGate("u3", 1, 3),
    "ccx": _BuiltinGate("x", 2, 0),
    "ccz": _BuiltinGate("z", 2, 0),
    "c3x": _BuiltinGate("x", 3, 0),
    "c4x": _BuiltinGate("x", 4, 0),
    "swap": _BuiltinGate("swap", 0, 0, num_targets=2),
    "iswap": _BuiltinGate("iswap", 0, 0, num_targets=2),
    "cswap": _BuiltinGate("swap", 1, 0, num_targets=2),
    "rzz": _BuiltinGate("rzz", 0, 1, num_targets=2),
    "rxx": _BuiltinGate("rxx", 0, 1, num_targets=2),
}

#: ``mcx_<k>`` style names for arbitrary multi-controlled X/Z.
_MCX_RE = re.compile(r"^(?:mcx|mct)_?(\d+)$")
_MCZ_RE = re.compile(r"^mcz_?(\d+)$")


def _builtin_for(name: str) -> Optional[_BuiltinGate]:
    if name in _BUILTINS:
        return _BUILTINS[name]
    match = _MCX_RE.match(name)
    if match:
        return _BuiltinGate("x", int(match.group(1)), 0)
    match = _MCZ_RE.match(name)
    if match:
        return _BuiltinGate("z", int(match.group(1)), 0)
    return None


@dataclass
class _GateMacro:
    """A user-defined ``gate`` block, expanded on application."""

    name: str
    params: List[str]
    qubits: List[str]
    # body statements: (gate_name, param_token_slices, qubit_names)
    body: List[Tuple[str, List[List[Tuple[str, str]]], List[str]]]


class _QasmReader:
    """Parses a full OpenQASM 2.0 program into a :class:`QuantumCircuit`."""

    def __init__(self, text: str) -> None:
        self._parser = _Parser(_tokenize(text))
        self._registers: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
        self._num_qubits = 0
        self._macros: Dict[str, _GateMacro] = {}
        self._operations: List[Operation] = []

    def run(self, name: str = "qasm") -> QuantumCircuit:
        parser = self._parser
        while parser.peek()[0] != "EOF":
            kind, text = parser.peek()
            if text == "OPENQASM":
                parser.next()
                parser.expect_kind("REAL")
                parser.expect(";")
            elif text == "include":
                parser.next()
                parser.expect_kind("STRING")
                parser.expect(";")
            elif text == "qreg":
                self._parse_qreg()
            elif text == "creg":
                self._parse_creg()
            elif text == "gate":
                self._parse_gate_definition()
            elif text == "barrier":
                self._skip_statement()
            elif text == "measure":
                self._skip_statement()
            elif text == "reset":
                self._skip_statement()
            elif kind == "ID":
                self._parse_application()
            else:
                raise QasmError(f"unexpected token {text!r}")
        circuit = QuantumCircuit(self._num_qubits, name=name)
        for op in self._operations:
            circuit.append(op)
        return circuit

    # -- declarations -----------------------------------------------------
    def _parse_qreg(self) -> None:
        parser = self._parser
        parser.expect("qreg")
        reg_name = parser.expect_kind("ID")
        parser.expect("[")
        size = int(parser.expect_kind("INT"))
        parser.expect("]")
        parser.expect(";")
        if reg_name in self._registers:
            raise QasmError(f"duplicate qreg {reg_name!r}")
        self._registers[reg_name] = (self._num_qubits, size)
        self._num_qubits += size

    def _parse_creg(self) -> None:
        parser = self._parser
        parser.expect("creg")
        parser.expect_kind("ID")
        parser.expect("[")
        parser.expect_kind("INT")
        parser.expect("]")
        parser.expect(";")

    def _skip_statement(self) -> None:
        parser = self._parser
        while parser.peek()[1] != ";":
            if parser.peek()[0] == "EOF":
                raise QasmError("unterminated statement")
            parser.next()
        parser.expect(";")

    # -- gate definitions ---------------------------------------------------
    def _parse_gate_definition(self) -> None:
        parser = self._parser
        parser.expect("gate")
        gate_name = parser.expect_kind("ID")
        params: List[str] = []
        if parser.accept("("):
            if not parser.accept(")"):
                params.append(parser.expect_kind("ID"))
                while parser.accept(","):
                    params.append(parser.expect_kind("ID"))
                parser.expect(")")
        qubits = [parser.expect_kind("ID")]
        while parser.accept(","):
            qubits.append(parser.expect_kind("ID"))
        parser.expect("{")
        body: List[Tuple[str, List[List[Tuple[str, str]]], List[str]]] = []
        while not parser.accept("}"):
            if parser.peek()[1] == "barrier":
                self._skip_statement()
                continue
            inner_name = parser.expect_kind("ID")
            param_slices: List[List[Tuple[str, str]]] = []
            if parser.accept("("):
                if not parser.accept(")"):
                    param_slices.append(self._collect_expression_tokens())
                    while parser.accept(","):
                        param_slices.append(self._collect_expression_tokens())
                    parser.expect(")")
            args = [parser.expect_kind("ID")]
            while parser.accept(","):
                args.append(parser.expect_kind("ID"))
            parser.expect(";")
            body.append((inner_name, param_slices, args))
        self._macros[gate_name] = _GateMacro(gate_name, params, qubits, body)

    def _collect_expression_tokens(self) -> List[Tuple[str, str]]:
        """Grab raw tokens of one expression up to an unnested ',' or ')'."""
        parser = self._parser
        depth = 0
        tokens: List[Tuple[str, str]] = []
        while True:
            kind, text = parser.peek()
            if kind == "EOF":
                raise QasmError("unterminated expression")
            if depth == 0 and text in (",", ")"):
                break
            if text == "(":
                depth += 1
            elif text == ")":
                depth -= 1
            tokens.append(parser.next())
        tokens.append(("EOF", ""))
        return tokens

    # -- applications ------------------------------------------------------
    def _parse_application(self) -> None:
        parser = self._parser
        gate_name = parser.expect_kind("ID")
        params: List[float] = []
        if parser.accept("("):
            if not parser.accept(")"):
                params.append(parser.parse_expression({}))
                while parser.accept(","):
                    params.append(parser.parse_expression({}))
                parser.expect(")")
        arguments: List[List[int]] = [self._parse_argument()]
        while parser.accept(","):
            arguments.append(self._parse_argument())
        parser.expect(";")
        self._emit(gate_name, params, arguments)

    def _parse_argument(self) -> List[int]:
        """A register or indexed qubit; returns the list of qubit indices."""
        parser = self._parser
        reg_name = parser.expect_kind("ID")
        if reg_name not in self._registers:
            raise QasmError(f"unknown register {reg_name!r}")
        offset, size = self._registers[reg_name]
        if parser.accept("["):
            index = int(parser.expect_kind("INT"))
            parser.expect("]")
            if index >= size:
                raise QasmError(f"index {index} out of range for {reg_name!r}")
            return [offset + index]
        return [offset + i for i in range(size)]

    def _emit(
        self, gate_name: str, params: List[float], arguments: List[List[int]]
    ) -> None:
        """Broadcast a gate application over register arguments."""
        lengths = {len(arg) for arg in arguments if len(arg) > 1}
        if len(lengths) > 1:
            raise QasmError("mismatched register sizes in broadcast")
        repeat = lengths.pop() if lengths else 1
        for i in range(repeat):
            qubits = [arg[i] if len(arg) > 1 else arg[0] for arg in arguments]
            self._emit_single(gate_name, params, qubits)

    def _emit_single(
        self, gate_name: str, params: List[float], qubits: List[int]
    ) -> None:
        builtin = _builtin_for(gate_name)
        if builtin is not None:
            expected = builtin.num_controls + builtin.num_targets
            if len(qubits) != expected:
                raise QasmError(
                    f"gate {gate_name!r} expects {expected} qubits, got {len(qubits)}"
                )
            if len(params) != builtin.num_params:
                raise QasmError(
                    f"gate {gate_name!r} expects {builtin.num_params} params"
                )
            controls = tuple(qubits[: builtin.num_controls])
            targets = tuple(qubits[builtin.num_controls:])
            if builtin.base == "id" and gate_name == "u0":
                params = []
            self._operations.append(
                Operation(builtin.base, targets, controls, tuple(params))
            )
            return
        macro = self._macros.get(gate_name)
        if macro is None:
            raise QasmError(f"unknown gate {gate_name!r}")
        if len(params) != len(macro.params):
            raise QasmError(f"gate {gate_name!r} expects {len(macro.params)} params")
        if len(qubits) != len(macro.qubits):
            raise QasmError(f"gate {gate_name!r} expects {len(macro.qubits)} qubits")
        env = dict(zip(macro.params, params))
        binding = dict(zip(macro.qubits, qubits))
        for inner_name, param_slices, args in macro.body:
            inner_params = [
                _Parser(tokens).parse_expression(env) for tokens in param_slices
            ]
            inner_qubits = [binding[a] for a in args]
            self._emit_single(inner_name, inner_params, inner_qubits)


def circuit_from_qasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""
    return _QasmReader(text).run(name=name)


# ---------------------------------------------------------------------------
# writer
# ---------------------------------------------------------------------------
_CONTROLLED_NAMES = {
    ("x", 1): "cx",
    ("y", 1): "cy",
    ("z", 1): "cz",
    ("h", 1): "ch",
    ("sx", 1): "csx",
    ("rx", 1): "crx",
    ("ry", 1): "cry",
    ("rz", 1): "crz",
    ("p", 1): "cp",
    ("u3", 1): "cu3",
    ("x", 2): "ccx",
    ("z", 2): "ccz",
    ("x", 3): "c3x",
    ("x", 4): "c4x",
    ("swap", 1): "cswap",
}


def _format_param(value: float) -> str:
    return repr(float(value))


def circuit_to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a circuit to OpenQASM 2.0.

    Multi-controlled X/Z beyond four controls are emitted with the
    ``mcx_<k>`` convention understood by :func:`circuit_from_qasm`.
    """
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for op in circuit:
        num_controls = len(op.controls)
        if num_controls == 0:
            name = {"u3": "u3", "p": "p"}.get(op.name, op.name)
        else:
            key = (op.name, num_controls)
            if key in _CONTROLLED_NAMES:
                name = _CONTROLLED_NAMES[key]
            elif op.name == "x":
                name = f"mcx_{num_controls}"
            elif op.name == "z":
                name = f"mcz_{num_controls}"
            else:
                raise QasmError(
                    f"cannot serialize {num_controls}-controlled {op.name!r}"
                )
        params = (
            "(" + ",".join(_format_param(p) for p in op.params) + ")"
            if op.params
            else ""
        )
        qubits = ",".join(
            f"q[{q}]" for q in tuple(op.controls) + tuple(op.targets)
        )
        lines.append(f"{name}{params} {qubits};")
    return "\n".join(lines) + "\n"
