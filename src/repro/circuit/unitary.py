"""Dense-matrix reference semantics for circuits.

These routines build explicit ``2^n x 2^n`` unitaries / ``2^n`` state
vectors with numpy.  They scale exponentially and exist as the *ground
truth* the decision-diagram and ZX engines are validated against in the
test suite (Section 3 of the paper: "checking the equivalence of two
quantum circuits reduces to the construction and the comparison of the
respective system matrices").

Qubit ordering convention: qubit 0 is the least-significant bit of the
basis-state index, i.e. ``|q_{n-1} ... q_1 q_0>``.  This matches the
paper's Example 2, where the GHZ circuit maps ``|000>`` to
``(|000> + |111>)/sqrt(2)``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation


def _apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``matrix`` on ``qubits`` of a state tensor of ``num_qubits``.

    ``state`` may be a vector (shape ``(2**n,)``) or matrix (shape
    ``(2**n, m)``); the operation acts on the row index.
    """
    k = len(qubits)
    if state.ndim == 1:
        tensor = state.reshape([2] * num_qubits)
    else:
        tensor = state.reshape([2] * num_qubits + [state.shape[1]])
    # numpy tensor axis i corresponds to qubit (num_qubits - 1 - i).
    axes = [num_qubits - 1 - q for q in qubits]
    tensor = np.moveaxis(tensor, axes, range(k))
    rest = tensor.shape[k:]
    tensor = (matrix @ tensor.reshape(2**k, -1)).reshape([2] * k + list(rest))
    tensor = np.moveaxis(tensor, range(k), axes)
    return tensor.reshape(state.shape)


def _controlled_matrix(base: np.ndarray, num_controls: int) -> np.ndarray:
    """Embed ``base`` into a controlled unitary with ``num_controls`` controls.

    Control qubits are the *most significant* qubits of the returned matrix,
    i.e. the matrix acts on ``(controls..., targets...)`` with the first
    control being the most significant.
    """
    k = int(np.log2(base.shape[0]))
    dim = 2 ** (k + num_controls)
    out = np.eye(dim, dtype=complex)
    out[dim - base.shape[0]:, dim - base.shape[0]:] = base
    return out


def operation_unitary(op: Operation, num_qubits: int) -> np.ndarray:
    """Full ``2^n x 2^n`` unitary of a single operation."""
    state = np.eye(2**num_qubits, dtype=complex)
    return apply_operation(state, op, num_qubits)


def apply_operation(
    state: np.ndarray, op: Operation, num_qubits: int
) -> np.ndarray:
    """Apply one operation to a dense state vector or matrix.

    Our gate definitions write multi-target matrices with ``targets[0]`` as
    the *least* significant qubit (the OpenQASM convention), while
    :func:`_apply_matrix` treats the first listed qubit as the *most*
    significant one — hence the target block is passed in reverse.
    """
    matrix = _controlled_matrix(op.matrix(), len(op.controls))
    qubits = tuple(op.controls) + tuple(reversed(op.targets))
    return _apply_matrix(state, matrix, qubits, num_qubits)


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    """The system matrix ``U`` of a circuit (exponential; tests only)."""
    n = circuit.num_qubits
    unitary = np.eye(2**n, dtype=complex)
    for op in circuit:
        unitary = apply_operation(unitary, op, n)
    return unitary


def statevector(
    circuit: QuantumCircuit, initial: Optional[np.ndarray] = None
) -> np.ndarray:
    """Simulate the circuit on ``initial`` (default ``|0...0>``)."""
    n = circuit.num_qubits
    if initial is None:
        state = np.zeros(2**n, dtype=complex)
        state[0] = 1.0
    else:
        state = np.asarray(initial, dtype=complex).copy()
        if state.shape != (2**n,):
            raise ValueError("initial state has wrong dimension")
    for op in circuit:
        state = apply_operation(state, op, n)
    return state


def permutation_matrix(perm: Dict[int, int], num_qubits: int) -> np.ndarray:
    """Unitary that moves the state of wire ``k`` to wire ``perm[k]``.

    ``perm`` maps source wire -> destination wire and must be a bijection on
    ``range(num_qubits)`` (missing wires are fixed points).
    """
    full = {q: q for q in range(num_qubits)}
    full.update(perm)
    if sorted(full.values()) != list(range(num_qubits)):
        raise ValueError(f"not a permutation: {perm}")
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for basis in range(dim):
        image = 0
        for src, dst in full.items():
            if (basis >> src) & 1:
                image |= 1 << dst
        matrix[image, basis] = 1.0
    return matrix


def hilbert_schmidt_fidelity(u: np.ndarray, v: np.ndarray) -> float:
    """``|tr(U† V)| / 2^n`` — 1.0 iff equal up to global phase."""
    if u.shape != v.shape:
        raise ValueError("matrices must have equal shape")
    return abs(np.trace(u.conj().T @ v)) / u.shape[0]


def unitaries_equivalent(
    u: np.ndarray, v: np.ndarray, tol: float = 1e-9
) -> bool:
    """Equality up to global phase via the Hilbert-Schmidt inner product."""
    return abs(hilbert_schmidt_fidelity(u, v) - 1.0) < tol
