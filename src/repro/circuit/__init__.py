"""Quantum circuit intermediate representation.

This package provides the circuit model shared by every other subsystem of
the reproduction: the decision-diagram engine (:mod:`repro.dd`), the
ZX-calculus engine (:mod:`repro.zx`), the compiler (:mod:`repro.compile`)
and the equivalence checkers (:mod:`repro.ec`).

The model is deliberately close to OpenQASM 2.0: a circuit is a flat list of
:class:`~repro.circuit.gate.Operation` objects, each consisting of a *base
gate* (a small unitary on the target qubits), an optional list of control
qubits, and real-valued parameters (rotation angles).
"""

from repro.circuit.gate import (
    GateDefinition,
    Operation,
    STANDARD_GATES,
    base_matrix,
    gate_definition,
)
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import QasmError, circuit_from_qasm, circuit_to_qasm
from repro.circuit.symbolic import (
    ParamExpr,
    circuit_parameters,
    instantiate_circuit,
    is_symbolic_circuit,
    is_symbolic_param,
    symbol,
)
from repro.circuit.unitary import (
    operation_unitary,
    circuit_unitary,
    statevector,
    unitaries_equivalent,
    hilbert_schmidt_fidelity,
)

__all__ = [
    "GateDefinition",
    "Operation",
    "ParamExpr",
    "STANDARD_GATES",
    "QuantumCircuit",
    "QasmError",
    "circuit_parameters",
    "instantiate_circuit",
    "is_symbolic_circuit",
    "is_symbolic_param",
    "symbol",
    "base_matrix",
    "gate_definition",
    "circuit_from_qasm",
    "circuit_to_qasm",
    "operation_unitary",
    "circuit_unitary",
    "statevector",
    "unitaries_equivalent",
    "hilbert_schmidt_fidelity",
]
