"""Dependency-DAG view of a circuit.

Gates form a DAG under the "share a qubit" dependency relation; the DAG is
what routing front-layers, depth computation and commutation-aware
optimization reason about.  Nodes are operation indices into the source
circuit, edges connect each operation to its *immediate* predecessor and
successor on every wire.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation


class CircuitDAG:
    """Immediate-dependency DAG over a circuit's operations."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.operations: List[Operation] = list(circuit.operations)
        count = len(self.operations)
        self._predecessors: List[Set[int]] = [set() for _ in range(count)]
        self._successors: List[Set[int]] = [set() for _ in range(count)]
        last_on_wire: Dict[int, int] = {}
        for index, op in enumerate(self.operations):
            for qubit in op.qubits:
                previous = last_on_wire.get(qubit)
                if previous is not None:
                    self._predecessors[index].add(previous)
                    self._successors[previous].add(index)
                last_on_wire[qubit] = index

    @property
    def num_nodes(self) -> int:
        return len(self.operations)

    def predecessors(self, index: int) -> Set[int]:
        return set(self._predecessors[index])

    def successors(self, index: int) -> Set[int]:
        return set(self._successors[index])

    def front_layer(self) -> List[int]:
        """Operations with no predecessors (executable immediately)."""
        return [
            index
            for index in range(self.num_nodes)
            if not self._predecessors[index]
        ]

    def topological_order(self) -> List[int]:
        """Kahn's algorithm; ties broken by original index (stable)."""
        in_degree = [len(p) for p in self._predecessors]
        ready = deque(
            index for index in range(self.num_nodes) if not in_degree[index]
        )
        order = []
        while ready:
            index = ready.popleft()
            order.append(index)
            for successor in sorted(self._successors[index]):
                in_degree[successor] -= 1
                if not in_degree[successor]:
                    ready.append(successor)
        if len(order) != self.num_nodes:
            raise RuntimeError("dependency cycle — corrupted DAG")
        return order

    def longest_path_length(self) -> int:
        """The circuit depth, computed on the DAG."""
        depth = [0] * self.num_nodes
        for index in self.topological_order():
            depth[index] = 1 + max(
                (depth[p] for p in self._predecessors[index]), default=0
            )
        return max(depth, default=0)

    def to_circuit(self) -> QuantumCircuit:
        """Rebuild a circuit in topological order (stable linearization)."""
        out = QuantumCircuit(
            self.circuit.num_qubits,
            name=self.circuit.name,
            initial_layout=self.circuit.initial_layout,
            output_permutation=self.circuit.output_permutation,
        )
        for index in self.topological_order():
            out.append(self.operations[index])
        return out


# ---------------------------------------------------------------------------
# commutation rules
# ---------------------------------------------------------------------------
#: Gates that are diagonal in the computational basis (with any controls).
_DIAGONAL = {"z", "s", "sdg", "t", "tdg", "rz", "p", "rzz", "id"}
#: Pure X-axis gates (with no controls).
_X_AXIS = {"x", "rx", "sx", "sxdg"}


def _is_diagonal(op: Operation) -> bool:
    return op.name in _DIAGONAL


def _is_cx(op: Operation) -> bool:
    return op.name == "x" and len(op.controls) == 1


def operations_commute(a: Operation, b: Operation) -> bool:
    """Sound (incomplete) syntactic commutation check.

    Covers the cases the commutation-aware optimizer exploits: disjoint
    supports, diagonal-diagonal pairs, CNOT pairs sharing a control or a
    target, diagonal gates avoiding a CNOT's target, and X-axis gates
    avoiding a CNOT's control.  Returns ``False`` whenever unsure.
    """
    if not set(a.qubits) & set(b.qubits):
        return True
    if _is_diagonal(a) and _is_diagonal(b):
        return True
    for first, second in ((a, b), (b, a)):
        if _is_cx(first):
            target = first.targets[0]
            control = first.controls[0]
            if _is_cx(second):
                return (
                    second.targets[0] != control
                    and second.controls[0] != target
                )
            if _is_diagonal(second) and target not in second.qubits:
                return True
            if (
                second.name in _X_AXIS
                and not second.controls
                and second.targets[0] != control
            ):
                return True
    return False
