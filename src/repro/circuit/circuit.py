"""The :class:`QuantumCircuit` container.

A circuit is a flat, ordered list of :class:`~repro.circuit.gate.Operation`
objects over ``num_qubits`` wires, plus the two pieces of compilation
metadata the paper's Section 3 calls out as essential for verifying
compilation flows:

* ``initial_layout`` — where each *logical* qubit of the original circuit
  starts on the device (physical wire -> logical qubit), and
* ``output_permutation`` — which logical qubit each physical wire holds at
  the end of the circuit (physical wire -> logical qubit).

Both default to the identity on all wires.  The equivalence checkers in
:mod:`repro.ec` consume this metadata to compare circuits acting on
permuted qubits, exactly as described in Section 4.1 of the paper.
"""

from __future__ import annotations

import copy
import math
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuit.gate import Operation


class QuantumCircuit:
    """An ordered sequence of quantum operations on ``num_qubits`` wires."""

    def __init__(
        self,
        num_qubits: int,
        name: str = "circuit",
        operations: Optional[Iterable[Operation]] = None,
        initial_layout: Optional[Dict[int, int]] = None,
        output_permutation: Optional[Dict[int, int]] = None,
    ) -> None:
        if num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self.num_qubits = num_qubits
        self.name = name
        self._operations: List[Operation] = []
        #: physical wire -> logical qubit at the input of the circuit.
        self.initial_layout: Dict[int, int] = dict(initial_layout or {})
        #: physical wire -> logical qubit at the output of the circuit.
        self.output_permutation: Dict[int, int] = dict(output_permutation or {})
        if operations:
            for op in operations:
                self.append(op)

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations)

    def __getitem__(self, index):
        return self._operations[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._operations == other._operations
            and self.resolved_initial_layout() == other.resolved_initial_layout()
            and self.resolved_output_permutation()
            == other.resolved_output_permutation()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_gates={len(self)})"
        )

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The operations as an immutable snapshot."""
        return tuple(self._operations)

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def append(self, op: Operation) -> "QuantumCircuit":
        """Append an operation, validating its qubit indices."""
        if op.qubits and max(op.qubits) >= self.num_qubits:
            raise ValueError(
                f"operation {op} out of range for {self.num_qubits} qubits"
            )
        self._operations.append(op)
        return self

    def add(
        self,
        name: str,
        targets: Sequence[int],
        controls: Sequence[int] = (),
        params: Sequence[float] = (),
    ) -> "QuantumCircuit":
        """Append a gate by name; the generic spelling of the helpers below."""
        return self.append(
            Operation(name, tuple(targets), tuple(controls), tuple(params))
        )

    # -- parameter-free single-qubit gates ------------------------------
    def i(self, q: int) -> "QuantumCircuit":
        return self.add("id", [q])

    def x(self, q: int) -> "QuantumCircuit":
        return self.add("x", [q])

    def y(self, q: int) -> "QuantumCircuit":
        return self.add("y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        return self.add("z", [q])

    def h(self, q: int) -> "QuantumCircuit":
        return self.add("h", [q])

    def s(self, q: int) -> "QuantumCircuit":
        return self.add("s", [q])

    def sdg(self, q: int) -> "QuantumCircuit":
        return self.add("sdg", [q])

    def t(self, q: int) -> "QuantumCircuit":
        return self.add("t", [q])

    def tdg(self, q: int) -> "QuantumCircuit":
        return self.add("tdg", [q])

    def sx(self, q: int) -> "QuantumCircuit":
        return self.add("sx", [q])

    def sxdg(self, q: int) -> "QuantumCircuit":
        return self.add("sxdg", [q])

    # -- rotations -------------------------------------------------------
    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rx", [q], params=[theta])

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("ry", [q], params=[theta])

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.add("rz", [q], params=[theta])

    def p(self, lam: float, q: int) -> "QuantumCircuit":
        return self.add("p", [q], params=[lam])

    def u2(self, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u2", [q], params=[phi, lam])

    def u3(self, theta: float, phi: float, lam: float, q: int) -> "QuantumCircuit":
        return self.add("u3", [q], params=[theta, phi, lam])

    # -- two-qubit / controlled gates -------------------------------------
    def cx(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("x", [target], controls=[control])

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("y", [target], controls=[control])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("z", [target], controls=[control])

    def ch(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("h", [target], controls=[control])

    def cs(self, control: int, target: int) -> "QuantumCircuit":
        return self.add("s", [target], controls=[control])

    def crx(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("rx", [target], controls=[control], params=[theta])

    def cry(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("ry", [target], controls=[control], params=[theta])

    def crz(self, theta: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("rz", [target], controls=[control], params=[theta])

    def cp(self, lam: float, control: int, target: int) -> "QuantumCircuit":
        return self.add("p", [target], controls=[control], params=[lam])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", [a, b])

    def iswap(self, a: int, b: int) -> "QuantumCircuit":
        return self.add("iswap", [a, b])

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rzz", [a, b], params=[theta])

    def rxx(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        return self.add("rxx", [a, b], params=[theta])

    # -- multi-controlled gates --------------------------------------------
    def ccx(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.add("x", [target], controls=[c1, c2])

    def ccz(self, c1: int, c2: int, target: int) -> "QuantumCircuit":
        return self.add("z", [target], controls=[c1, c2])

    def mcx(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.add("x", [target], controls=list(controls))

    def mcz(self, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.add("z", [target], controls=list(controls))

    def mcp(self, lam: float, controls: Sequence[int], target: int) -> "QuantumCircuit":
        return self.add("p", [target], controls=list(controls), params=[lam])

    def cswap(self, control: int, a: int, b: int) -> "QuantumCircuit":
        return self.add("swap", [a, b], controls=[control])

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Deep copy of the circuit (operations are immutable, shared)."""
        out = QuantumCircuit(
            self.num_qubits,
            name or self.name,
            self._operations,
            copy.copy(self.initial_layout),
            copy.copy(self.output_permutation),
        )
        return out

    def inverse(self) -> "QuantumCircuit":
        """Return ``G†``: each gate inverted, order reversed.

        The layout metadata is swapped accordingly: the inverse circuit
        starts in the original's output permutation and ends in its initial
        layout.
        """
        out = QuantumCircuit(
            self.num_qubits,
            f"{self.name}_dg",
            (op.inverse() for op in reversed(self._operations)),
            copy.copy(self.output_permutation),
            copy.copy(self.initial_layout),
        )
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return the concatenation ``other ∘ self`` (self runs first)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose circuits of different width")
        out = self.copy(name=f"{self.name}+{other.name}")
        for op in other:
            out.append(op)
        out.output_permutation = copy.copy(other.output_permutation)
        return out

    def remapped(self, permutation: Dict[int, int], num_qubits: Optional[int] = None) -> "QuantumCircuit":
        """Return a copy with qubit ``q`` relabelled to ``permutation[q]``."""
        out = QuantumCircuit(
            num_qubits if num_qubits is not None else self.num_qubits,
            self.name,
        )
        for op in self._operations:
            out.append(op.remapped(permutation))
        return out

    # ------------------------------------------------------------------
    # metadata helpers
    # ------------------------------------------------------------------
    def _resolve_partial_permutation(self, partial: Dict[int, int]) -> Dict[int, int]:
        """Extend a partial wire->logical map to a bijection.

        Unmapped wires keep their own index when that logical value is
        free; the remaining wires get the remaining logical values in
        sorted order.  Raises if the partial map is not injective.
        """
        n = self.num_qubits
        mapping = dict(partial)
        used = set(mapping.values())
        if len(used) != len(mapping):
            raise ValueError(f"layout metadata is not injective: {partial}")
        if mapping and (
            min(mapping) < 0
            or max(mapping) >= n
            or min(used) < 0
            or max(used) >= n
        ):
            raise ValueError(f"layout metadata out of range: {partial}")
        unmapped = [w for w in range(n) if w not in mapping]
        remaining = []
        for wire in unmapped:
            if wire not in used:
                mapping[wire] = wire
                used.add(wire)
            else:
                remaining.append(wire)
        free = sorted(set(range(n)) - used)
        for wire, logical in zip(remaining, free):
            mapping[wire] = logical
        return mapping

    def resolved_initial_layout(self) -> Dict[int, int]:
        """Initial layout completed to a bijection on all wires."""
        return self._resolve_partial_permutation(self.initial_layout)

    def resolved_output_permutation(self) -> Dict[int, int]:
        """Output permutation completed to a bijection on all wires."""
        return self._resolve_partial_permutation(self.output_permutation)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def count_ops(self) -> Counter:
        """Histogram of gate mnemonics, ``cx``-style names for controlled ops."""
        counts: Counter = Counter()
        for op in self._operations:
            counts["c" * len(op.controls) + op.name] += 1
        return counts

    @property
    def num_gates(self) -> int:
        """Total operation count, ``|G|`` in the paper's Table 1."""
        return len(self._operations)

    def two_qubit_gate_count(self) -> int:
        """Number of operations acting on two or more qubits."""
        return sum(1 for op in self._operations if op.num_qubits >= 2)

    def t_count(self) -> int:
        """Number of T/T† gates (proxy for non-Clifford cost)."""
        return sum(
            1
            for op in self._operations
            if op.name in ("t", "tdg") and not op.controls
        )

    def non_clifford_count(self) -> int:
        """Number of operations that are not Clifford gates."""
        return sum(1 for op in self._operations if not op.is_clifford())

    def depth(self) -> int:
        """Circuit depth: longest chain of operations sharing qubits."""
        level = [0] * self.num_qubits
        depth = 0
        for op in self._operations:
            start = max((level[q] for q in op.qubits), default=0)
            for q in op.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def used_qubits(self) -> Tuple[int, ...]:
        """Sorted tuple of qubits touched by at least one operation."""
        used = set()
        for op in self._operations:
            used.update(op.qubits)
        return tuple(sorted(used))


def ghz_example() -> QuantumCircuit:
    """The paper's Fig. 1a: 3-qubit GHZ state preparation circuit."""
    circuit = QuantumCircuit(3, name="ghz3")
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    return circuit


def compiled_ghz_example() -> QuantumCircuit:
    """The paper's Fig. 2: GHZ compiled to a 5-qubit line.

    The final CNOT between ``Q0`` and ``Q2`` is made executable by a SWAP of
    ``Q1``/``Q2`` (decomposed into three CNOTs), which leaves the circuit with
    a non-trivial output permutation: logical ``q1`` ends on wire 2 and
    logical ``q2`` on wire 1.
    """
    circuit = QuantumCircuit(5, name="ghz3_compiled")
    circuit.h(0)
    circuit.cx(0, 1)
    # SWAP(1, 2) decomposed into three CNOTs.
    circuit.cx(1, 2)
    circuit.cx(2, 1)
    circuit.cx(1, 2)
    circuit.cx(0, 1)
    circuit.initial_layout = {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}
    circuit.output_permutation = {0: 0, 1: 2, 2: 1, 3: 3, 4: 4}
    return circuit
