"""ASCII rendering of quantum circuits.

A lightweight text drawer in the spirit of the paper's circuit figures:
one row per qubit, gates packed into columns by dependency (parallel gates
share a column), controls as ``●``, targets as boxed mnemonics / ``⊕`` for
X, SWAP endpoints as ``x``, and vertical connectors between the involved
wires.  Used by the examples and handy when debugging benchmark
generators.
"""

from __future__ import annotations

from typing import List

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation

_CONTROL = "●"
_TARGET_X = "⊕"
_SWAP = "x"
_WIRE = "─"
_VERTICAL = "│"


def _gate_label(op: Operation) -> str:
    if op.name == "x" and op.controls:
        return _TARGET_X
    if op.name == "swap":
        return _SWAP
    label = op.name.upper()
    if op.params:
        args = ",".join(f"{p:.3g}" for p in op.params)
        label = f"{label}({args})"
    return label


def draw_circuit(circuit: QuantumCircuit, max_width: int = 100) -> str:
    """Render the circuit as ASCII art (possibly multiple banks of rows).

    Args:
        circuit: The circuit to draw.
        max_width: Wrap into a new bank after this many characters.
    """
    n = circuit.num_qubits
    # assign each operation a column: first free column on all its wires
    level: List[int] = [0] * max(n, 1)
    columns: List[List[Operation]] = []
    for op in circuit:
        wires = range(min(op.qubits), max(op.qubits) + 1) if op.qubits else []
        column = max((level[w] for w in wires), default=0)
        while len(columns) <= column:
            columns.append([])
        columns[column].append(op)
        for w in wires:
            level[w] = column + 1

    # render column by column
    cells: List[List[str]] = [[] for _ in range(2 * n)]  # wire + gap rows
    for ops in columns:
        width = 1
        entries = {}
        connectors = set()
        for op in ops:
            label = _gate_label(op)
            if op.name == "swap" and not op.controls:
                for t in op.targets:
                    entries[t] = _SWAP
            else:
                entries[op.targets[0]] = label
                for extra in op.targets[1:]:
                    entries[extra] = label
            for c in op.controls:
                entries[c] = _CONTROL
            lo, hi = min(op.qubits), max(op.qubits)
            for w in range(lo, hi):
                connectors.add(w)  # gap below wire w is crossed
            width = max(width, max(len(v) for v in entries.values()))
        for q in range(n):
            symbol = entries.get(q, "")
            if symbol:
                pad = width - len(symbol)
                cells[2 * q].append(_WIRE + symbol + _WIRE * (pad + 1))
            else:
                mid = _VERTICAL if _crossing(ops, q) else _WIRE
                cells[2 * q].append(_WIRE + mid + _WIRE * width)
            gap = _VERTICAL if q in connectors else " "
            cells[2 * q + 1].append(" " + gap + " " * width)

    lines = []
    prefix = [f"q{q}: " for q in range(n)]
    prefix_width = max((len(p) for p in prefix), default=0)
    if not columns:
        return "\n".join(
            prefix[q].rjust(prefix_width) + _WIRE * 3 for q in range(n)
        )
    start = 0
    while start < len(columns):
        widths = [len(cells[0][c]) for c in range(start, len(columns))]
        end = start
        total = 0
        for w in widths:
            if total + w > max_width and end > start:
                break
            total += w
            end += 1
        for q in range(n):
            row = "".join(cells[2 * q][start:end])
            lines.append(prefix[q].rjust(prefix_width) + row)
            gap_row = "".join(cells[2 * q + 1][start:end])
            if q < n - 1 and gap_row.strip():
                lines.append(" " * prefix_width + gap_row)
            elif q < n - 1:
                lines.append("")
        start = end if end > start else len(columns)
        if start < len(columns):
            lines.append("...")
    return "\n".join(line.rstrip() for line in lines)


def _crossing(ops: List[Operation], qubit: int) -> bool:
    """Is a vertical connector passing through this untouched wire?"""
    for op in ops:
        if min(op.qubits) < qubit < max(op.qubits) and qubit not in op.qubits:
            return True
    return False
