"""Linear symbolic phase expressions for parameterized circuits.

A :class:`ParamExpr` is the one symbolic object the gate IR carries: a
linear combination ``sum_i c_i * v_i + const`` over named real-valued
variables ``v_i`` with exact :class:`~fractions.Fraction` coefficients
``c_i`` and a concrete ``const`` offset in radians.  Linearity is all
the variational workloads in scope need (VQE ansatz angles enter gates
as rational multiples of shared parameters), and it is what keeps the
downstream algebra *exact*: adding ``theta`` and ``-theta`` cancels to
a plain ``0.0`` float instead of accumulating rounding error, which is
what lets the phase-polynomial and ZX paths decide symbolic equivalence
soundly for *all* valuations.

Expressions are immutable and auto-collapse: any arithmetic that drops
the last variable term returns a plain ``float``, so fully-concrete
values never masquerade as symbolic ones and the rest of the code base
can keep testing ``isinstance(p, (int, float))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

__all__ = [
    "ParamExpr",
    "ParamValue",
    "circuit_parameters",
    "instantiate_circuit",
    "is_symbolic_param",
    "is_symbolic_circuit",
    "symbol",
]

#: What a gate parameter may be once symbolic circuits are in play.
ParamValue = Union[float, "ParamExpr"]

#: Variable names must be valid QASM identifiers so the ``repro:params``
#: pragma and gate arguments round-trip through the parser unchanged.
_RESERVED_NAMES = frozenset(
    {"pi", "sin", "cos", "tan", "exp", "ln", "sqrt", "acos", "asin", "atan"}
)


def _validate_name(name: str) -> str:
    if not name or not name[0].isalpha() and name[0] != "_":
        raise ValueError(f"invalid parameter name {name!r}")
    if not all(ch.isalnum() or ch == "_" for ch in name):
        raise ValueError(f"invalid parameter name {name!r}")
    if name in _RESERVED_NAMES:
        raise ValueError(f"parameter name {name!r} shadows a QASM builtin")
    return name


def _coerce_scalar(value: object) -> Fraction:
    """An exact rational view of a scalar multiplier."""
    if isinstance(value, bool):
        raise TypeError("cannot scale a ParamExpr by a bool")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, Fraction):
        return value
    if isinstance(value, float):
        # Exact: every float is a dyadic rational.
        return Fraction(value)
    raise TypeError(f"cannot scale a ParamExpr by {type(value).__name__}")


@dataclass(frozen=True)
class ParamExpr:
    """A linear expression ``sum_i c_i * v_i + const`` (radians).

    ``terms`` is canonical: sorted by variable name, every coefficient a
    nonzero :class:`Fraction`.  Use :func:`symbol` or the arithmetic
    operators rather than the constructor.
    """

    terms: Tuple[Tuple[str, Fraction], ...]
    const: float = 0.0

    # -- construction ---------------------------------------------------
    @staticmethod
    def _make(terms: Mapping[str, Fraction], const: float) -> ParamValue:
        kept = tuple(
            (name, coeff)
            for name, coeff in sorted(terms.items())
            if coeff != 0
        )
        if not kept:
            return float(const)
        return ParamExpr(kept, float(const))

    @property
    def variables(self) -> Tuple[str, ...]:
        """Sorted names of the variables this expression mentions."""
        return tuple(name for name, _coeff in self.terms)

    # -- arithmetic -----------------------------------------------------
    def __neg__(self) -> ParamValue:
        return ParamExpr._make(
            {name: -coeff for name, coeff in self.terms}, -self.const
        )

    def __add__(self, other: object) -> ParamValue:
        if isinstance(other, ParamExpr):
            merged: Dict[str, Fraction] = dict(self.terms)
            for name, coeff in other.terms:
                merged[name] = merged.get(name, Fraction(0)) + coeff
            return ParamExpr._make(merged, self.const + other.const)
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return ParamExpr._make(dict(self.terms), self.const + other)
        return NotImplemented

    def __radd__(self, other: object) -> ParamValue:
        return self.__add__(other)

    def __sub__(self, other: object) -> ParamValue:
        if isinstance(other, ParamExpr):
            return self.__add__(other.__neg__())
        if isinstance(other, (int, float)) and not isinstance(other, bool):
            return ParamExpr._make(dict(self.terms), self.const - other)
        return NotImplemented

    def __rsub__(self, other: object) -> ParamValue:
        negated = self.__neg__()
        if isinstance(negated, float):
            if isinstance(other, (int, float)) and not isinstance(other, bool):
                return other + negated
            return NotImplemented
        return negated.__add__(other)

    def __mul__(self, other: object) -> ParamValue:
        if isinstance(other, ParamExpr):
            raise TypeError(
                "nonlinear parameter expression: cannot multiply two "
                "symbolic expressions"
            )
        scale = _coerce_scalar(other)
        return ParamExpr._make(
            {name: coeff * scale for name, coeff in self.terms},
            self.const * float(scale),
        )

    def __rmul__(self, other: object) -> ParamValue:
        return self.__mul__(other)

    def __truediv__(self, other: object) -> ParamValue:
        if isinstance(other, ParamExpr):
            raise TypeError(
                "nonlinear parameter expression: cannot divide by a "
                "symbolic expression"
            )
        scale = _coerce_scalar(other)
        if scale == 0:
            raise ZeroDivisionError("division of a ParamExpr by zero")
        return self.__mul__(Fraction(1) / scale)

    # -- evaluation -----------------------------------------------------
    def evaluate(self, valuation: Mapping[str, float]) -> float:
        """The concrete value (radians) under ``valuation``."""
        total = self.const
        for name, coeff in self.terms:
            if name not in valuation:
                raise ValueError(
                    f"valuation is missing parameter {name!r}"
                )
            total += float(coeff) * float(valuation[name])
        return total

    # -- rendering ------------------------------------------------------
    @staticmethod
    def _format_term(name: str, coeff: Fraction) -> str:
        if coeff == 1:
            return name
        if coeff == -1:
            return f"-{name}"
        if coeff.denominator == 1:
            return f"{coeff.numerator}*{name}"
        return f"({coeff.numerator}/{coeff.denominator})*{name}"

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.terms:
            rendered = self._format_term(name, coeff)
            if parts and not rendered.startswith("-"):
                parts.append(f"+{rendered}")
            else:
                parts.append(rendered)
        if self.const != 0.0:
            rendered = repr(self.const)
            if not rendered.startswith("-"):
                rendered = f"+{rendered}"
            parts.append(rendered)
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParamExpr({self})"


def symbol(name: str) -> ParamExpr:
    """The expression consisting of the single variable ``name``."""
    return ParamExpr(((_validate_name(name), Fraction(1)),), 0.0)


def is_symbolic_param(param: object) -> bool:
    """True when ``param`` is a (non-degenerate) symbolic expression."""
    return isinstance(param, ParamExpr) and bool(param.terms)


def circuit_parameters(circuit) -> Tuple[str, ...]:
    """Sorted names of the free parameters appearing in ``circuit``."""
    names = set()
    for op in circuit:
        for param in op.params:
            if isinstance(param, ParamExpr):
                names.update(param.variables)
    return tuple(sorted(names))


def is_symbolic_circuit(circuit) -> bool:
    """True when any gate parameter of ``circuit`` is symbolic."""
    for op in circuit:
        for param in op.params:
            if isinstance(param, ParamExpr):
                return True
    return False


def instantiate_circuit(circuit, valuation: Mapping[str, float]):
    """A concrete copy of ``circuit`` with every parameter evaluated.

    The valuation must cover every free parameter; the result carries no
    :class:`ParamExpr` and is safe for every concrete checker.
    """
    from repro.circuit.circuit import QuantumCircuit
    from repro.circuit.gate import Operation

    out = QuantumCircuit(
        circuit.num_qubits,
        circuit.name,
        initial_layout=dict(circuit.initial_layout),
        output_permutation=dict(circuit.output_permutation),
    )
    for op in circuit:
        if any(isinstance(p, ParamExpr) for p in op.params):
            params = tuple(
                p.evaluate(valuation) if isinstance(p, ParamExpr) else p
                for p in op.params
            )
            out.append(Operation(op.name, op.targets, op.controls, params))
        else:
            out.append(op)
    return out
