"""Structured error taxonomy for fault-isolated equivalence checks.

Every way a check can fail maps onto one :class:`CheckError` subclass with
a stable machine-readable ``kind`` and a *transient-vs-permanent*
classification.  Permanent failures (a deterministic timeout, a memory
blowup under a fixed limit, malformed input) are reported immediately;
transient failures (a crashed or lost worker process — plausibly an
environment hiccup rather than a property of the instance) are retried
with bounded exponential backoff via :class:`RetryPolicy` /
:func:`call_with_retry`.

The module is deliberately dependency-free so both sides of the process
boundary (parent harness and sandboxed child) and every layer above
(:mod:`repro.ec.manager`, :mod:`repro.bench.study`) can share it without
import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, TypeVar


class CheckError(Exception):
    """Base class of all structured check failures.

    Attributes:
        kind: Stable machine-readable failure class (``"timeout"``,
            ``"out_of_memory"``, ``"crashed"``, ``"worker_lost"``,
            ``"invalid_input"``, ``"check_error"``).
        transient: True if retrying the identical check can plausibly
            succeed (environment hiccup) — drives the retry policy.
        diagnostics: Free-form context (signal numbers, limits, elapsed
            times) carried across the process boundary.
    """

    kind = "check_error"
    transient = False

    def __init__(self, message: str = "", **diagnostics: object) -> None:
        super().__init__(message or self.kind)
        self.message = message or self.kind
        self.diagnostics: Dict[str, object] = dict(diagnostics)

    def to_dict(self) -> Dict[str, object]:
        """Serializable view, stable across the process boundary."""
        return {
            "kind": self.kind,
            "transient": self.transient,
            "message": self.message,
            "diagnostics": dict(self.diagnostics),
        }

    def __str__(self) -> str:
        if self.diagnostics:
            detail = ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.diagnostics.items())
            )
            return f"{self.message} ({detail})"
        return self.message


class CheckTimeout(CheckError):
    """The check exceeded its wall-clock budget.

    Permanent: the same instance under the same budget will time out
    again.  ``diagnostics["hard"]`` is True when the sandbox had to
    SIGKILL a non-cooperative child, False when the cooperative deadline
    fired.
    """

    kind = "timeout"
    transient = False


class CheckOutOfMemory(CheckError):
    """The check exhausted its address-space/RSS budget.

    Permanent: memory demand is a deterministic property of the instance
    under a fixed limit.
    """

    kind = "out_of_memory"
    transient = False


class CheckCrashed(CheckError):
    """The check died abnormally (signal, unhandled internal error).

    Transient: a segfault or an unexpected exception may be an
    environment or scheduling artifact, so one bounded retry round is
    worthwhile before giving up.
    """

    kind = "crashed"
    transient = True


class CheckWorkerLost(CheckCrashed):
    """The sandboxed worker vanished without reporting a result.

    Transient, like :class:`CheckCrashed` — the pipe closed before any
    structured payload arrived (child killed externally, fork bomb
    protection, ...).
    """

    kind = "worker_lost"


class InvalidInput(CheckError):
    """The check inputs are malformed (bad circuit, bad configuration).

    Permanent: retrying identical inputs cannot help.
    """

    kind = "invalid_input"
    transient = False


class PortfolioDisagreement(CheckError):
    """Two racing checkers returned contradictory *sound* verdicts.

    One of them is wrong — this is a checker bug, not a property of the
    instance, and it must never be swallowed: the graceful-degradation
    paths (:meth:`EquivalenceCheckingManager.run`,
    :func:`repro.harness.run_check`) re-raise it instead of degrading to
    ``NO_INFORMATION``.  Permanent: re-racing the same pair reproduces
    the same contradiction.
    """

    kind = "portfolio_disagreement"
    transient = False


class PoolBroken(CheckError):
    """The worker pool tripped its restart-storm circuit breaker.

    Raised by :mod:`repro.service.pool` when freshly started workers
    keep dying faster than the configured storm threshold — a systemic
    environment problem (broken interpreter, cgroup OOM-killing every
    fork, ...), not a property of any job.  Permanent for the lifetime
    of the pool: resubmitting cannot help until the pool is rebuilt.
    """

    kind = "pool_broken"
    transient = False


class PoolSaturated(CheckError):
    """The service's bounded job queue is full — explicit backpressure.

    Transient by design: the client should wait
    ``diagnostics["retry_after"]`` seconds and resubmit.  The service
    rejects instead of buffering unboundedly, so a traffic spike
    degrades into visible retries rather than invisible memory growth.
    """

    kind = "pool_saturated"
    transient = True


#: kind string -> exception class, for re-raising across the pipe.
_KINDS: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        CheckError,
        CheckTimeout,
        CheckOutOfMemory,
        CheckCrashed,
        CheckWorkerLost,
        InvalidInput,
        PortfolioDisagreement,
        PoolBroken,
        PoolSaturated,
    )
}


def error_from_dict(payload: Dict[str, object]) -> CheckError:
    """Reconstruct a :class:`CheckError` serialized with :meth:`to_dict`."""
    cls = _KINDS.get(str(payload.get("kind")), CheckError)
    error = cls(str(payload.get("message", "")))
    diagnostics = payload.get("diagnostics")
    if isinstance(diagnostics, dict):
        error.diagnostics.update(diagnostics)
    return error


def classify_exception(exc: BaseException) -> CheckError:
    """Map an arbitrary exception onto the structured taxonomy.

    Used by the graceful-degradation path of the manager and by the
    sandbox child to report failures in a stable shape.
    """
    if isinstance(exc, CheckError):
        return exc
    if isinstance(exc, MemoryError):
        return CheckOutOfMemory(
            "check ran out of memory", exception=type(exc).__name__
        )
    # Imported lazily: repro.ec imports this module at load time.
    from repro.ec.results import EquivalenceCheckingTimeout

    if isinstance(exc, EquivalenceCheckingTimeout):
        return CheckTimeout("cooperative deadline exceeded", hard=False)
    if isinstance(exc, (ValueError, TypeError)):
        return InvalidInput(str(exc) or type(exc).__name__,
                            exception=type(exc).__name__)
    return CheckCrashed(
        str(exc) or type(exc).__name__, exception=type(exc).__name__
    )


# ---------------------------------------------------------------------------
# retry / backoff
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic seeded jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... starts from the capped
    exponential ``min(backoff_base * backoff_factor**attempt,
    backoff_max)`` and then subtracts a jitter share: the delay is
    multiplied by ``1 - jitter * u`` where ``u`` in ``[0, 1)`` is derived
    by hashing ``(jitter_seed, attempt)``.  The default ``jitter=0``
    reproduces the pure exponential schedule; with jitter enabled the
    schedule stays *fully reproducible* — the same seed and attempt
    always yield the same delay, so journal replays and tests remain
    stable while concurrent restarts (a worker-pool crash storm) are
    decorrelated instead of thundering in lockstep.
    """

    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def validate(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ValueError("max_retries must be a non-negative integer")
        for name in ("backoff_base", "backoff_factor", "backoff_max"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")
        if isinstance(self.jitter, bool) or not isinstance(
            self.jitter, (int, float)
        ):
            raise ValueError(f"jitter must be a number, got {self.jitter!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be within [0, 1], got {self.jitter!r}"
            )
        if isinstance(self.jitter_seed, bool) or not isinstance(
            self.jitter_seed, int
        ):
            raise ValueError(
                f"jitter_seed must be an integer, got {self.jitter_seed!r}"
            )

    def _jitter_fraction(self, attempt: int) -> float:
        """Deterministic ``u`` in ``[0, 1)`` for one ``(seed, attempt)``."""
        import hashlib

        digest = hashlib.sha256(
            f"repro-retry-jitter:{self.jitter_seed}:{attempt}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2 ** 64

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), in seconds."""
        base = min(
            self.backoff_base * self.backoff_factor ** attempt,
            self.backoff_max,
        )
        if self.jitter == 0.0:
            return base
        return base * (1.0 - self.jitter * self._jitter_fraction(attempt))


#: Retries disabled — every failure is reported on first occurrence.
NO_RETRY = RetryPolicy(max_retries=0)

T = TypeVar("T")


def call_with_retry(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy] = None,
    sleep: Callable[[float], None] = None,
) -> T:
    """Run ``fn``, retrying transient :class:`CheckError` failures.

    Permanent failures and exhausted retries propagate the *last* error,
    with ``diagnostics["attempts"]`` recording how many runs were made.
    ``sleep`` is injectable for tests (defaults to :func:`time.sleep`).
    """
    if policy is None:
        policy = NO_RETRY
    policy.validate()
    if sleep is None:
        import time

        sleep = time.sleep
    attempt = 0
    while True:
        try:
            return fn()
        except CheckError as error:
            error.diagnostics.setdefault("attempts", attempt + 1)
            error.diagnostics["attempts"] = attempt + 1
            if not error.transient or attempt >= policy.max_retries:
                raise
            sleep(policy.delay(attempt))
            attempt += 1
