"""Deterministic fault injection for the isolation layer.

Chaos specs describe one concrete misbehaviour a checker can exhibit —
a non-cooperative hard hang (a hot loop that never consults the
cooperative deadline), a memory balloon, a hard crash (fatal signal,
no Python cleanup), or a plain unhandled exception — and
:func:`activate` arms it so the *next* checker invocation triggers it.
The faults are injected at the strategy-dispatch seam inside
:class:`~repro.ec.manager.EquivalenceCheckingManager`, i.e. inside the
checker call, after configuration validation: exactly where a real DD
or ZX blowup would occur.

Everything is deterministic — no randomness, no environment probing —
so the containment tests in ``tests/harness`` are exactly reproducible.
The module holds process-global state on purpose: the sandbox child
arms it after the fork, proving that the *parent* stays unaffected.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Supported fault modes.  ``leak`` and ``exit`` target *long-lived
#: workers* (:mod:`repro.service.pool`): a leak survives the check that
#: triggered it and inflates the worker's RSS until the pool's recycling
#: threshold retires the worker; ``exit`` terminates the process cleanly
#: without reporting, which the supervisor must classify as a lost
#: worker even though no fatal signal was involved.
MODES = ("none", "hang", "memory_balloon", "crash", "exception", "leak", "exit")

#: Retained allocations of every ``leak`` fault fired in this process —
#: deliberately never freed, so a recycled worker demonstrably carries
#: the ballast until it is replaced.
_LEAKS: list = []


@dataclass(frozen=True)
class ChaosSpec:
    """One injected fault.

    Attributes:
        mode: ``"hang"`` (non-cooperative hot loop), ``"memory_balloon"``
            (allocate until the ceiling, then :class:`MemoryError`),
            ``"crash"`` (fatal signal — the process dies without
            reporting), ``"exception"`` (unhandled ``RuntimeError``),
            ``"leak"`` (allocate ``balloon_mb`` and retain it forever —
            the check succeeds but the worker's RSS never comes back
            down), ``"exit"`` (clean ``os._exit(0)`` without reporting)
            or ``"none"``.
        balloon_mb: Allocation ceiling of the balloon/leak, so an
            *unlimited* sandbox still terminates deterministically
            instead of swallowing the host's RAM.
        signal_number: Signal the ``crash`` mode raises on itself.
    """

    mode: str = "none"
    balloon_mb: int = 256
    signal_number: int = signal.SIGSEGV

    def validate(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown chaos mode {self.mode!r}")
        if self.balloon_mb < 1:
            raise ValueError("balloon_mb must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "balloon_mb": self.balloon_mb,
            "signal_number": int(self.signal_number),
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "ChaosSpec":
        return ChaosSpec(
            mode=str(payload.get("mode", "none")),
            balloon_mb=int(payload.get("balloon_mb", 256)),
            signal_number=int(payload.get("signal_number", signal.SIGSEGV)),
        )


#: The armed fault of this process (None = chaos disabled).
_active: Optional[ChaosSpec] = None


def activate(spec: Optional[ChaosSpec]) -> None:
    """Arm ``spec`` for the next checker invocation in this process."""
    global _active
    if spec is not None:
        spec.validate()
    _active = spec if spec is not None and spec.mode != "none" else None


def deactivate() -> None:
    """Disarm any active fault (used by tests running in-process)."""
    activate(None)


def active_spec() -> Optional[ChaosSpec]:
    return _active


def maybe_trigger() -> None:
    """Fire the armed fault, if any.  Called from inside the checker path."""
    if _active is None:
        return
    trigger(_active)


def trigger(spec: ChaosSpec) -> None:
    """Execute one fault.  Does not return for terminal modes."""
    if spec.mode == "none":
        return
    if spec.mode == "hang":
        # A genuinely non-cooperative hot loop: no deadline checks, no
        # sleeps, nothing the cooperative timeout machinery could catch.
        x = 1.0
        while True:
            x = (x * 1.0000001) % 1e9
    if spec.mode == "memory_balloon":
        balloon = []
        # 1 MiB chunks of distinct bytes defeat any allocator sharing.
        for i in range(spec.balloon_mb):
            balloon.append(bytearray(1024 * 1024))
            balloon[-1][0] = i % 256
        # repro: allow(error-taxonomy): fault injection needs a raw MemoryError
        raise MemoryError(
            f"chaos balloon reached its {spec.balloon_mb} MiB ceiling"
        )
    if spec.mode == "crash":
        # Keep the fatal-signal traceback out of the parent's stderr —
        # the point is an *unreported* death, not a diagnostic dump.
        import faulthandler

        faulthandler.disable()
        os.kill(os.getpid(), spec.signal_number)
        # A fatal signal should never return; belt-and-braces for
        # signals a test harness might have blocked:
        os._exit(70)
    if spec.mode == "exception":
        # repro: allow(error-taxonomy): deliberately unclassified exception
        raise RuntimeError("chaos: injected checker exception")
    if spec.mode == "leak":
        # Allocate and *retain*: the check itself proceeds normally, but
        # the process keeps the ballast forever — the signature of a
        # slow native-extension leak that only worker recycling fixes.
        for i in range(spec.balloon_mb):
            chunk = bytearray(1024 * 1024)
            chunk[0] = i % 256
            _LEAKS.append(chunk)
        return
    if spec.mode == "exit":
        # A clean exit without any report: no fatal signal, no payload —
        # the supervisor sees EOF on the pipe and exitcode 0.
        os._exit(0)
    raise ValueError(f"unknown chaos mode {spec.mode!r}")
