"""Fault-isolated execution of equivalence checks.

The harness runs a check in a sandboxed child process with a *hard*
wall-clock timeout (SIGKILL on overrun — independent of the cooperative
``deadline`` checks inside the checkers), an address-space limit, and
structured serialization of the :class:`~repro.ec.results.\
EquivalenceCheckingResult` back to the parent.  Failures surface as the
:mod:`repro.errors` taxonomy; transient ones are retried with bounded
exponential backoff; :func:`run_check` degrades every failure into a
``NO_INFORMATION``/``TIMEOUT`` result so batch drivers (the Table-1
harness) never lose the remaining cells to one bad instance.

:mod:`repro.harness.race` generalizes the one-shot sandbox into a
multi-child racer — the execution substrate of the concurrent strategy
portfolio (:mod:`repro.ec.portfolio`): staggered launches under one
shared deadline, first sound verdict wins, losers SIGKILLed and reaped.

Entry points::

    from repro.harness import run_check, run_check_isolated, ResourceLimits

    result = run_check(c1, c2, configuration)           # never raises
    result = run_check_isolated(c1, c2, configuration)  # raises CheckError

    from repro.harness import RaceEntry, race_checks

    outcome = race_checks(c1, c2, entries, shared_budget=60.0)
"""

from repro.harness.journal import Journal, JournalMismatch
from repro.harness.race import (
    ChildOutcome,
    RaceEntry,
    RaceOutcome,
    race_checks,
)
from repro.harness.sandbox import (
    DEFAULT_GRACE_SECONDS,
    ResourceLimits,
    run_check,
    run_check_isolated,
)

__all__ = [
    "ChildOutcome",
    "DEFAULT_GRACE_SECONDS",
    "Journal",
    "JournalMismatch",
    "RaceEntry",
    "RaceOutcome",
    "ResourceLimits",
    "race_checks",
    "run_check",
    "run_check_isolated",
]
