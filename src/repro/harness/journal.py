"""Resumable JSONL checkpoint journal for batch runs.

The Table-1 harness writes one JSON line per completed cell, flushed and
fsynced immediately, so a killed or crashed run loses at most the cell
that was in flight.  On ``--resume`` the journal is replayed: completed
cells are restored without re-running, and the header's run metadata
(use case, scale, timeout, seed, ...) is compared against the resuming
run so a journal is never silently reused for different parameters.

A torn trailing line — the signature of a mid-write kill — is tolerated
and counted, never fatal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from types import TracebackType
from typing import Dict, Optional, Tuple, Type, Union

_MAGIC = "repro-journal"
_VERSION = 1

#: One replayed cell: a JSON object keyed by statistic name.
Payload = Dict[str, object]


def fsync_directory(directory: Path) -> None:
    """fsync a directory so a just-created/renamed entry is durable.

    An ``os.fsync`` on the file alone makes the *contents* durable; the
    directory entry pointing at the file (after ``open(..., "w")`` of a
    fresh journal or an ``os.replace`` rename) lives in the directory
    inode and needs its own fsync, or a crash can leave a durable file
    that is unreachable by name.  Platforms that refuse ``open`` on a
    directory (some network filesystems, non-POSIX hosts) are tolerated:
    durability degrades, correctness does not.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystem
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


class JournalMismatch(ValueError):
    """A resumed journal's metadata does not match the current run."""


def _load(path: Path) -> Tuple[Dict[str, object], Dict[str, Payload], int]:
    """Replay a journal file: (metadata, key -> payload, corrupt lines)."""
    metadata: Dict[str, object] = {}
    completed: Dict[str, Payload] = {}
    corrupt = 0
    with path.open() as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if not isinstance(record, dict):
                corrupt += 1
                continue
            if index == 0 and record.get("journal") == _MAGIC:
                header = record.get("metadata")
                metadata = header if isinstance(header, dict) else {}
                continue
            key = record.get("key")
            if isinstance(key, str):
                payload = record.get("payload")
                completed[key] = payload if isinstance(payload, dict) else {}
            else:
                corrupt += 1
    return metadata, completed, corrupt


class Journal:
    """Append-only JSONL checkpoint store keyed by cell identifier.

    Args:
        path: Journal file location (created, or appended on resume).
        metadata: Parameters identifying the run; written to the header
            and checked on resume.
        resume: Replay an existing file instead of truncating it.  A
            missing file is not an error — the resume is simply empty.
    """

    def __init__(
        self,
        path: Union[str, os.PathLike],
        metadata: Optional[Dict[str, object]] = None,
        resume: bool = False,
    ) -> None:
        self.path = Path(path)
        self.metadata: Dict[str, object] = dict(metadata or {})
        self.completed: Dict[str, Payload] = {}
        self.corrupt_lines = 0
        if resume and self.path.exists():
            existing, completed, corrupt = _load(self.path)
            if metadata is not None and existing != self.metadata:
                raise JournalMismatch(
                    f"journal {self.path} was written by a run with "
                    f"parameters {existing!r}, which do not match the "
                    f"resuming run's {self.metadata!r}; delete the journal "
                    "or rerun with matching parameters"
                )
            self.completed = completed
            self.corrupt_lines = corrupt
            self._handle = self.path.open("a")
            # A torn trailing line (crash mid-write) must not swallow the
            # next record: terminate the fragment so appends start on a
            # fresh line.  The fragment then stays one isolated corrupt
            # line on every future replay instead of eating a good entry.
            if self._tail_is_torn():
                self._handle.write("\n")
                self._handle.flush()
                os.fsync(self._handle.fileno())
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w")
            self._write_line(
                {
                    "journal": _MAGIC,
                    "version": _VERSION,
                    "metadata": self.metadata,
                }
            )
            # The header fsync above made the *contents* durable; the
            # new directory entry needs the parent directory fsynced too.
            fsync_directory(self.path.parent)

    # ------------------------------------------------------------------
    def _tail_is_torn(self) -> bool:
        """True when the file is non-empty and lacks a final newline."""
        with self.path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() == 0:
                return False
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"

    def _write_line(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, key: str, payload: Payload) -> None:
        """Checkpoint one completed cell (durable before returning)."""
        self._write_line({"key": key, "payload": payload})
        self.completed[key] = dict(payload)

    def get(self, key: str) -> Optional[Payload]:
        return self.completed.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def compact(self) -> int:
        """Atomically rewrite the journal to its live entries only.

        Replays accumulate corrupt (torn) lines and superseded duplicate
        keys; compaction rewrites the header plus one line per completed
        key into a temporary file in the same directory, fsyncs it,
        renames it over the journal with :func:`os.replace` and fsyncs
        the parent directory — so at every instant exactly one complete
        journal exists under the journal's name.  Returns the number of
        live entries written.  The append handle is reopened on the new
        file afterwards.
        """
        if not self._handle.closed:
            self._handle.close()
        temp = self.path.with_name(self.path.name + ".compact.tmp")
        with temp.open("w") as handle:
            handle.write(
                json.dumps(
                    {
                        "journal": _MAGIC,
                        "version": _VERSION,
                        "metadata": self.metadata,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
            for key, payload in self.completed.items():
                handle.write(
                    json.dumps({"key": key, "payload": payload}, sort_keys=True)
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        # The rename is only durable once the directory entry is synced.
        fsync_directory(self.path.parent)
        self.corrupt_lines = 0
        self._handle = self.path.open("a")
        return len(self.completed)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()
