"""Subprocess sandboxing of equivalence checks.

One check runs in one child process.  The parent enforces a *hard*
wall-clock budget: if no structured result arrives in time the child is
SIGKILLed — no cooperation from the checker required, which is what
contains the non-cooperative hot loops, memory balloons and crashes that
purely cooperative ``deadline`` checks cannot (both QCEC-style DD
checking and ``full_reduce`` are known to blow up super-polynomially on
adversarial instances).  The child additionally applies an
address-space ceiling via :func:`resource.setrlimit` so a memory blowup
dies as a clean :class:`~repro.errors.CheckOutOfMemory` instead of
triggering the host's OOM killer.

The :class:`~repro.ec.results.EquivalenceCheckingResult` — verdict,
statistics, perf counters — crosses the process boundary as a
JSON-safe dict (:meth:`EquivalenceCheckingResult.to_dict`), never as an
opaque pickle of live checker state.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.errors import (
    CheckCrashed,
    CheckError,
    CheckOutOfMemory,
    CheckTimeout,
    CheckWorkerLost,
    InvalidInput,
    RetryPolicy,
    call_with_retry,
    classify_exception,
)
from repro.harness.chaos import ChaosSpec

#: Extra wall-clock seconds the hard kill allows beyond the cooperative
#: timeout — covers interpreter startup and result serialization.
DEFAULT_GRACE_SECONDS = 2.0

_MIB = 1024 * 1024


@dataclass(frozen=True)
class ResourceLimits:
    """Hard limits applied to one sandboxed check.

    Attributes:
        wall_time: Hard wall-clock budget in seconds for the child.
            ``None`` derives it from the configuration's cooperative
            ``timeout`` plus ``grace`` (or no hard limit if that is also
            unset).
        memory_mb: Address-space headroom in MiB granted to the check
            *on top of* the interpreter's footprint at startup (measured
            from ``/proc/self/statm`` where available).  ``None`` leaves
            the inherited limits untouched.
        grace: Seconds added to a derived ``wall_time`` budget.
    """

    wall_time: Optional[float] = None
    memory_mb: Optional[int] = None
    grace: float = DEFAULT_GRACE_SECONDS

    def validate(self) -> None:
        for name in ("wall_time", "grace"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value!r}")
        if self.memory_mb is not None and (
            isinstance(self.memory_mb, bool)
            or not isinstance(self.memory_mb, int)
            or self.memory_mb < 1
        ):
            raise ValueError(
                f"memory_mb must be a positive integer, got {self.memory_mb!r}"
            )

    def hard_budget(self, configuration: Configuration) -> Optional[float]:
        """The effective hard wall-clock budget for one check."""
        if self.wall_time is not None:
            return self.wall_time
        if configuration.timeout is not None:
            return configuration.timeout + self.grace
        return None


def _current_address_space_bytes() -> Optional[int]:
    """Virtual size of this process, or None where /proc is unavailable."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[0])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        return None


def _apply_memory_limit(memory_mb: int) -> Dict[str, object]:
    """Ceil this process's address space; returns what was applied."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return {"applied": False, "reason": "resource module unavailable"}
    baseline = _current_address_space_bytes()
    headroom = memory_mb * _MIB
    # The ceiling sits on top of the interpreter's footprint: RLIMIT_AS
    # counts *virtual* address space, and numpy/scipy map hundreds of MiB
    # before the check even starts, so an absolute ceiling would kill the
    # worker during startup rather than during the blowup.
    limit = headroom if baseline is None else baseline + headroom
    applied: Dict[str, object] = {
        "applied": False,
        "limit_bytes": limit,
        "baseline_bytes": baseline,
    }
    try:
        if hasattr(resource, "RLIMIT_CORE"):
            resource.setrlimit(resource.RLIMIT_CORE, (0, 0))
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        applied["applied"] = True
    except (ValueError, OSError) as exc:  # pragma: no cover - exotic rlimits
        applied["reason"] = str(exc)
    return applied


def _child_main(
    conn,
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Configuration,
    memory_mb: Optional[int],
    chaos_payload: Optional[Dict[str, object]],
) -> None:
    """Sandboxed entry point: run one check and report a structured payload."""
    from repro.ec.manager import EquivalenceCheckingManager
    from repro.harness import chaos as chaos_module

    limit_info: Dict[str, object] = {}
    try:
        if memory_mb is not None:
            limit_info = _apply_memory_limit(memory_mb)
        if chaos_payload is not None:
            chaos_module.activate(ChaosSpec.from_dict(chaos_payload))
        # Graceful degradation is the parent's job: raw failures must
        # reach the classifier here so the taxonomy stays precise.
        config = dataclasses.replace(configuration, graceful_degradation=False)
        result = EquivalenceCheckingManager(circuit1, circuit2, config).run()
        conn.send({"ok": True, "result": result.to_dict(), "limit": limit_info})
    except MemoryError:
        # Free the balloon before trying to serialize the report.
        import gc

        gc.collect()
        error = CheckOutOfMemory(
            "check exceeded its address-space limit", memory_limit_mb=memory_mb
        )
        conn.send({"ok": False, "error": error.to_dict(), "limit": limit_info})
    except BaseException as exc:  # noqa: BLE001 - the whole point is containment
        try:
            conn.send(
                {
                    "ok": False,
                    "error": classify_exception(exc).to_dict(),
                    "limit": limit_info,
                }
            )
        except Exception:  # pragma: no cover - reporting itself failed
            os._exit(71)
    finally:
        conn.close()


_FATAL_SIGNALS = {
    int(getattr(signal, name)): name
    for name in ("SIGSEGV", "SIGBUS", "SIGILL", "SIGFPE", "SIGABRT")
    if hasattr(signal, name)
}


def _start_method() -> str:
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def run_check_isolated(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    limits: Optional[ResourceLimits] = None,
    chaos: Optional[ChaosSpec] = None,
) -> EquivalenceCheckingResult:
    """Run one check in a sandboxed child; raise :class:`CheckError` on failure.

    On success the returned result carries an extra
    ``statistics["isolation"]`` block (pid, start method, applied limits,
    parent-measured overhead).
    """
    configuration = configuration or Configuration()
    try:
        configuration.validate()
    except ValueError as exc:
        raise InvalidInput(str(exc)) from exc
    limits = limits or ResourceLimits(
        memory_mb=configuration.memory_limit_mb
    )
    limits.validate()
    budget = limits.hard_budget(configuration)

    start = time.monotonic()
    ctx = multiprocessing.get_context(_start_method())
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    try:
        process = ctx.Process(
            target=_child_main,
            args=(
                child_conn,
                circuit1,
                circuit2,
                configuration,
                limits.memory_mb,
                chaos.to_dict() if chaos is not None else None,
            ),
            daemon=True,
        )
        process.start()
    except BaseException:
        # A failed spawn (fork exhaustion, unpicklable payload) must not
        # strand either pipe end on the parent side.
        parent_conn.close()
        child_conn.close()
        raise
    payload: Optional[Dict[str, Any]] = None
    try:
        # Inside the guarded region: if this close raises, the finally
        # below still reaps the child and releases the parent end.
        child_conn.close()
        deadline = None if budget is None else start + budget
        while payload is None:
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                raise CheckTimeout(
                    "hard wall-clock budget exceeded; child killed",
                    hard=True,
                    budget_seconds=budget,
                    pid=process.pid,
                )
            if not parent_conn.poll(
                None if remaining is None else min(remaining, 0.5)
            ):
                continue
            try:
                payload = parent_conn.recv()
            except EOFError:
                break  # child died before reporting
    finally:
        # The connection must be released even if reaping the child
        # itself raises (kill/join on a pid the OS already recycled).
        try:
            if payload is None:
                process.kill()
            process.join(5.0)
            if process.is_alive():  # pragma: no cover - kill cannot be refused
                process.terminate()
                process.join(1.0)
        finally:
            parent_conn.close()

    if payload is None:
        exitcode = process.exitcode
        if exitcode is not None and exitcode < 0:
            number = -exitcode
            name = _FATAL_SIGNALS.get(number)
            if name is not None:
                raise CheckCrashed(
                    f"worker died on {name}",
                    signal=number,
                    signal_name=name,
                    pid=process.pid,
                )
            raise CheckWorkerLost(
                f"worker killed by signal {number}",
                signal=number,
                pid=process.pid,
            )
        raise CheckWorkerLost(
            "worker exited without reporting a result",
            exitcode=exitcode,
            pid=process.pid,
        )
    if not payload.get("ok"):
        from repro.errors import error_from_dict

        raise error_from_dict(payload["error"])

    result = EquivalenceCheckingResult.from_dict(payload["result"])
    parent_seconds = time.monotonic() - start
    result.statistics["isolation"] = {
        "pid": process.pid,
        "start_method": ctx.get_start_method(),
        "memory_limit_mb": limits.memory_mb,
        "hard_budget_seconds": budget,
        "parent_seconds": round(parent_seconds, 6),
        "overhead_seconds": round(max(0.0, parent_seconds - result.time), 6),
        "limit": payload.get("limit", {}),
    }
    return result


def _failure_result(
    error: CheckError, strategy: str, elapsed: float
) -> EquivalenceCheckingResult:
    """Degrade a structured failure into a reportable result."""
    verdict = (
        Equivalence.TIMEOUT
        if isinstance(error, CheckTimeout)
        else Equivalence.NO_INFORMATION
    )
    return EquivalenceCheckingResult(
        verdict, strategy, elapsed, {"failure": error.to_dict()}
    )


def run_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    *,
    isolate: bool = True,
    limits: Optional[ResourceLimits] = None,
    retry: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosSpec] = None,
    sleep=None,
) -> EquivalenceCheckingResult:
    """Fault-tolerant front door: never raises on a failed check.

    Transient failures (crashed/lost workers) are retried with bounded
    exponential backoff per ``retry`` (default: derived from the
    configuration's ``max_retries`` / ``retry_backoff``); any surviving
    failure degrades into a ``TIMEOUT``/``NO_INFORMATION`` result whose
    ``statistics["failure"]`` holds the taxonomy record.
    """
    configuration = configuration or Configuration()
    if retry is None:
        retry = RetryPolicy(
            max_retries=configuration.max_retries,
            backoff_base=configuration.retry_backoff,
        )

    def attempt() -> EquivalenceCheckingResult:
        if isolate:
            return run_check_isolated(
                circuit1, circuit2, configuration, limits=limits, chaos=chaos
            )
        from repro.ec.manager import EquivalenceCheckingManager
        from repro.harness import chaos as chaos_module

        config = dataclasses.replace(configuration, graceful_degradation=False)
        try:
            config.validate()
        except ValueError as exc:
            raise InvalidInput(str(exc)) from exc
        if chaos is not None:
            chaos_module.activate(chaos)
        try:
            return EquivalenceCheckingManager(circuit1, circuit2, config).run()
        except Exception as exc:  # noqa: BLE001 - degraded below
            raise classify_exception(exc) from exc
        finally:
            if chaos is not None:
                chaos_module.deactivate()

    start = time.monotonic()
    try:
        return call_with_retry(attempt, retry, sleep=sleep)
    except CheckError as error:
        from repro.errors import PortfolioDisagreement

        if isinstance(error, PortfolioDisagreement):
            # Contradictory sound verdicts are a checker bug, not an
            # operational failure — never degrade them into a result.
            raise
        return _failure_result(
            error, configuration.strategy, time.monotonic() - start
        )
