"""Multi-child racing of sandboxed equivalence checks.

Generalizes :func:`repro.harness.sandbox.run_check_isolated` from one
fork-and-wait child into a racer: every entry runs the same circuit pair
under its own configuration (typically one strategy each) in its own
sandboxed child, all children share one wall-clock deadline, and the
race is decided the moment any child reports a *sound* verdict — a
proof of (non-)equivalence, :attr:`EquivalenceCheckingResult.proven`.
Losers are SIGKILLed immediately; probabilistic evidence
(``PROBABLY_EQUIVALENT`` from random stimuli) never terminates the
race early and only wins if nothing sound arrives before the deadline.

Scheduling is a staggered launch plan: each entry carries a ``delay``
relative to the race start (the cost advisor puts the predicted winner
and the cheap simulation falsifier at zero and holds expensive
companions behind a short head start), and whenever a running child
completes *without* deciding the race, the earliest pending entry is
promoted immediately — an idle CPU never waits out a head start.

Containment matches the one-shot sandbox: per-child RLIMIT_AS headroom,
per-child hard wall budgets, and a ``multiprocessing.connection.wait``
(select/poll) result loop in the parent.  Every child is joined before
:func:`race_checks` returns — no zombies — and the per-child
bookkeeping (verdicts of completed losers, kill codes, reap states) is
returned for the portfolio statistics block.

Two children returning contradictory sound verdicts is a checker bug,
surfaced as a hard :class:`~repro.errors.PortfolioDisagreement` — never
swallowed.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.errors import (
    CheckCrashed,
    CheckWorkerLost,
    InvalidInput,
    PortfolioDisagreement,
    error_from_dict,
)
from repro.harness.chaos import ChaosSpec
from repro.harness.sandbox import (
    _FATAL_SIGNALS,
    _child_main,
    _start_method,
    DEFAULT_GRACE_SECONDS,
)

#: Upper bound on one poll-loop sleep, so launch times stay responsive.
_MAX_POLL_SECONDS = 0.05

#: Kill codes recorded per child (``None`` = the child was not killed).
KILL_LOSER = "loser"  # a sound verdict arrived elsewhere
KILL_BUDGET = "budget"  # the child blew its own hard wall budget
KILL_DEADLINE = "deadline"  # the shared race deadline expired


@dataclass(frozen=True)
class RaceEntry:
    """One lane of the race.

    Attributes:
        name: Stable label (the strategy name in portfolio races).
        configuration: Full child configuration — strategy, cooperative
            timeout, seeds.  Validated before any child is forked.
        delay: Seconds after race start before this child launches
            (subject to early promotion when a lane frees up).
        budget: Hard per-child wall budget in seconds from *launch*
            (SIGKILL on overrun), or ``None`` to derive it from the
            configuration's cooperative timeout plus a grace period.
        memory_mb: RLIMIT_AS headroom for this child, in MiB.
        chaos: Deterministic fault injected into this child only.
    """

    name: str
    configuration: Configuration
    delay: float = 0.0
    budget: Optional[float] = None
    memory_mb: Optional[int] = None
    chaos: Optional[ChaosSpec] = None

    def validate(self) -> None:
        try:
            self.configuration.validate()
        except ValueError as exc:
            raise InvalidInput(f"entry {self.name!r}: {exc}") from exc
        if self.delay < 0:
            raise InvalidInput(f"entry {self.name!r}: negative delay")
        if self.budget is not None and self.budget <= 0:
            raise InvalidInput(f"entry {self.name!r}: non-positive budget")

    def hard_budget(self) -> Optional[float]:
        """Per-child SIGKILL budget in seconds from launch."""
        if self.budget is not None:
            return self.budget
        if self.configuration.timeout is not None:
            return self.configuration.timeout + DEFAULT_GRACE_SECONDS
        return None


@dataclass
class ChildOutcome:
    """Bookkeeping of one lane after the race.

    ``status`` is ``"completed"`` (structured payload received),
    ``"failed"`` (the child reported or suffered a structured failure),
    ``"killed"`` (SIGKILLed before reporting) or ``"skipped"`` (never
    launched — the race was decided first).
    """

    name: str
    status: str
    result: Optional[EquivalenceCheckingResult] = None
    error: Optional[Dict[str, object]] = None
    kill_code: Optional[str] = None
    pid: Optional[int] = None
    exitcode: Optional[int] = None
    launched_after: Optional[float] = None
    wall_seconds: Optional[float] = None
    reaped: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "verdict": (
                self.result.equivalence.value
                if self.result is not None
                else None
            ),
            "error": dict(self.error) if self.error is not None else None,
            "kill_code": self.kill_code,
            "pid": self.pid,
            "exitcode": self.exitcode,
            "launched_after": (
                round(self.launched_after, 6)
                if self.launched_after is not None
                else None
            ),
            "wall_seconds": (
                round(self.wall_seconds, 6)
                if self.wall_seconds is not None
                else None
            ),
            "reaped": self.reaped,
        }


@dataclass
class RaceOutcome:
    """Everything the race produced, in entry order."""

    children: List[ChildOutcome] = field(default_factory=list)
    winner: Optional[str] = None  # name of the first sound child
    elapsed: float = 0.0
    deadline_expired: bool = False
    start_method: str = "fork"

    def outcome(self, name: str) -> ChildOutcome:
        for child in self.children:
            if child.name == name:
                return child
        raise KeyError(name)

    @property
    def winner_result(self) -> Optional[EquivalenceCheckingResult]:
        if self.winner is None:
            return None
        return self.outcome(self.winner).result

    def kill_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for child in self.children:
            if child.kill_code is not None:
                counts[child.kill_code] = counts.get(child.kill_code, 0) + 1
        return counts


class _Lane:
    """Mutable parent-side state of one launched child."""

    __slots__ = ("entry", "outcome", "process", "conn", "launched_at",
                 "hard_deadline")

    def __init__(self, entry: RaceEntry, outcome: ChildOutcome) -> None:
        self.entry = entry
        self.outcome = outcome
        self.process = None
        self.conn = None
        self.launched_at: Optional[float] = None
        self.hard_deadline: Optional[float] = None


def _death_error(lane: _Lane) -> Dict[str, object]:
    """Classify a child that died without reporting (after join)."""
    exitcode = lane.process.exitcode
    if exitcode is not None and exitcode < 0:
        number = -exitcode
        name = _FATAL_SIGNALS.get(number)
        if name is not None:
            return CheckCrashed(
                f"racer child died on {name}",
                signal=number,
                signal_name=name,
                pid=lane.process.pid,
            ).to_dict()
        return CheckWorkerLost(
            f"racer child killed by signal {number}",
            signal=number,
            pid=lane.process.pid,
        ).to_dict()
    return CheckWorkerLost(
        "racer child exited without reporting a result",
        exitcode=exitcode,
        pid=lane.process.pid,
    ).to_dict()


def _is_sound(result: Optional[EquivalenceCheckingResult]) -> bool:
    """A verdict that may terminate the race: a proof, not evidence."""
    return result is not None and result.proven


def check_sound_consistency(children: List[ChildOutcome]) -> None:
    """Raise :class:`PortfolioDisagreement` on contradictory sound verdicts.

    A positive proof (``EQUIVALENT`` / up-to-global-phase) next to a
    sound ``NOT_EQUIVALENT`` means one checker is wrong.  Probabilistic
    and no-information verdicts never participate — simulation missing a
    non-equivalence is the expected asymmetry, not a contradiction.
    """
    positives = [
        child
        for child in children
        if _is_sound(child.result)
        and child.result.equivalence is not Equivalence.NOT_EQUIVALENT
    ]
    negatives = [
        child
        for child in children
        if _is_sound(child.result)
        and child.result.equivalence is Equivalence.NOT_EQUIVALENT
    ]
    if positives and negatives:
        raise PortfolioDisagreement(
            "racing checkers returned contradictory sound verdicts",
            positive=positives[0].name,
            negative=negatives[0].name,
            verdicts={
                child.name: child.result.equivalence.value
                for child in children
                if child.result is not None
            },
        )


def race_checks(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    entries: List[RaceEntry],
    shared_budget: Optional[float] = None,
) -> RaceOutcome:
    """Race sandboxed children over one circuit pair; first sound verdict wins.

    Args:
        circuit1, circuit2: The pair every child checks.
        entries: Launch plan, in schedule order.  Entry ``delay`` values
            stagger launches; a pending entry is promoted early whenever
            a running child completes without deciding the race.
        shared_budget: Wall-clock seconds for the whole race, measured
            from the first launch; on expiry every running child is
            SIGKILLed (``deadline`` kill code) and pending entries are
            skipped.  ``None`` = race until decided or all lanes finish.

    Returns:
        A :class:`RaceOutcome` with per-child bookkeeping.  ``winner``
        is the first child whose payload carried a sound verdict, or
        ``None`` when the race drained undecided (callers pick among
        probabilistic/degraded results).

    Raises:
        InvalidInput: An entry failed validation (no child was forked).
        PortfolioDisagreement: Two completed children hold contradictory
            sound verdicts (checked over every payload received, losers
            included).
    """
    if not entries:
        raise InvalidInput("race_checks needs at least one entry")
    names = [entry.name for entry in entries]
    if len(set(names)) != len(names):
        raise InvalidInput(f"duplicate race entry names: {names}")
    for entry in entries:
        entry.validate()

    ctx = multiprocessing.get_context(_start_method())
    start = time.monotonic()
    race_deadline = None if shared_budget is None else start + shared_budget

    lanes = [
        _Lane(entry, ChildOutcome(name=entry.name, status="skipped"))
        for entry in entries
    ]
    pending: List[_Lane] = list(lanes)
    launch_at: Dict[str, float] = {
        lane.entry.name: start + lane.entry.delay for lane in lanes
    }
    running: List[_Lane] = []
    decided = False
    deadline_expired = False

    def launch(lane: _Lane, now: float) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_child_main,
            args=(
                child_conn,
                circuit1,
                circuit2,
                lane.entry.configuration,
                lane.entry.memory_mb,
                lane.entry.chaos.to_dict()
                if lane.entry.chaos is not None
                else None,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        lane.process = process
        lane.conn = parent_conn
        lane.launched_at = now
        budget = lane.entry.hard_budget()
        lane.hard_deadline = None if budget is None else now + budget
        lane.outcome.status = "running"
        lane.outcome.pid = process.pid
        lane.outcome.launched_after = now - start
        running.append(lane)

    def settle(lane: _Lane, now: float) -> None:
        """Receive one lane's payload (or its death) and finalize it."""
        running.remove(lane)
        payload = None
        try:
            if lane.conn.poll(0):
                payload = lane.conn.recv()
        except (EOFError, OSError):
            payload = None
        lane.process.join(5.0)
        if lane.process.is_alive():  # pragma: no cover - kill is final
            lane.process.kill()
            lane.process.join(1.0)
        lane.outcome.exitcode = lane.process.exitcode
        lane.outcome.reaped = lane.process.exitcode is not None
        lane.outcome.wall_seconds = now - lane.launched_at
        lane.conn.close()
        if payload is None:
            lane.outcome.status = "failed"
            lane.outcome.error = _death_error(lane)
        elif payload.get("ok"):
            lane.outcome.status = "completed"
            lane.outcome.result = EquivalenceCheckingResult.from_dict(
                payload["result"]
            )
        else:
            lane.outcome.status = "failed"
            error = payload.get("error")
            lane.outcome.error = (
                dict(error) if isinstance(error, dict) else
                error_from_dict({}).to_dict()
            )

    def kill(lane: _Lane, code: str, now: float) -> None:
        """SIGKILL one running lane, draining a last-instant payload first."""
        # A payload already sitting in the pipe means the child actually
        # finished — record its verdict (a "completed loser") instead of
        # pretending the kill preempted it.
        try:
            has_payload = lane.conn.poll(0)
        except (EOFError, OSError):
            has_payload = False
        if has_payload:
            settle(lane, now)
            return
        lane.process.kill()
        running.remove(lane)
        lane.process.join(5.0)
        lane.outcome.status = "killed"
        lane.outcome.kill_code = code
        lane.outcome.exitcode = lane.process.exitcode
        lane.outcome.reaped = lane.process.exitcode is not None
        lane.outcome.wall_seconds = now - lane.launched_at
        lane.conn.close()

    winner: Optional[str] = None
    try:
        while running or (pending and not decided and not deadline_expired):
            now = time.monotonic()
            # Launch every pending lane whose time has come.
            if not decided and not deadline_expired:
                due = [
                    lane for lane in pending
                    if launch_at[lane.entry.name] <= now
                ]
                for lane in due:
                    pending.remove(lane)
                    launch(lane, now)
            if not running:
                if decided or deadline_expired:
                    break
                # Nothing running yet: sleep until the next launch.
                next_launch = min(
                    launch_at[lane.entry.name] for lane in pending
                )
                time.sleep(
                    min(max(0.0, next_launch - now), _MAX_POLL_SECONDS)
                )
                continue
            # Sleep until something reports, a budget expires, or the
            # next pending launch is due — whichever comes first.
            horizons = [now + _MAX_POLL_SECONDS]
            if race_deadline is not None:
                horizons.append(race_deadline)
            horizons.extend(
                lane.hard_deadline
                for lane in running
                if lane.hard_deadline is not None
            )
            if pending and not decided:
                horizons.append(
                    min(launch_at[lane.entry.name] for lane in pending)
                )
            timeout = max(0.0, min(horizons) - now)
            ready = connection_wait(
                [lane.conn for lane in running], timeout=timeout
            )
            now = time.monotonic()
            finished_without_decision = 0
            for conn in ready:
                lane = next(l for l in running if l.conn is conn)
                settle(lane, now)
                if _is_sound(lane.outcome.result):
                    decided = True
                    if winner is None:
                        winner = lane.entry.name
                else:
                    finished_without_decision += 1
            # Contradictory sound verdicts among everything received so
            # far (the decisive batch may hold several payloads).
            check_sound_consistency([lane.outcome for lane in lanes])
            if decided:
                for lane in list(running):
                    kill(lane, KILL_LOSER, now)
                check_sound_consistency([lane.outcome for lane in lanes])
                pending.clear()
                break
            # Per-child hard budgets.
            for lane in list(running):
                if (
                    lane.hard_deadline is not None
                    and now >= lane.hard_deadline
                ):
                    kill(lane, KILL_BUDGET, now)
                    finished_without_decision += 1
            # Shared race deadline.
            if race_deadline is not None and now >= race_deadline:
                deadline_expired = True
                for lane in list(running):
                    kill(lane, KILL_DEADLINE, now)
                pending.clear()
                break
            # Early promotion: freed lanes pull the next pending launch
            # forward so a head start never idles the machine.
            for _ in range(finished_without_decision):
                waiting = [
                    lane for lane in pending
                    if launch_at[lane.entry.name] > now
                ]
                if not waiting:
                    break
                promoted = min(
                    waiting, key=lambda lane: launch_at[lane.entry.name]
                )
                launch_at[promoted.entry.name] = now
    finally:
        # Belt and braces: no child may outlive the race, whatever path
        # exited the loop (including a PortfolioDisagreement raise).
        now = time.monotonic()
        for lane in list(running):
            kill(lane, KILL_DEADLINE if deadline_expired else KILL_LOSER, now)
        for lane in lanes:
            if lane.process is not None and lane.process.exitcode is None:
                lane.process.join(1.0)  # pragma: no cover - settled above
                lane.outcome.exitcode = lane.process.exitcode
                lane.outcome.reaped = lane.process.exitcode is not None

    return RaceOutcome(
        children=[lane.outcome for lane in lanes],
        winner=winner,
        elapsed=time.monotonic() - start,
        deadline_expired=deadline_expired,
        start_method=ctx.get_start_method(),
    )
