"""Random stimuli generation for simulation-based equivalence checking.

Re-implements the three stimuli families of Burgholzer et al., "Random
stimuli generation for the verification of quantum circuits" (ASP-DAC
2021) — reference [45] of the paper, the machinery behind QCEC's
simulation runs:

* **classical** — random computational basis states.  Cheapest to
  simulate (the state DD starts with one node per level), but blind to
  diagonal-only errors.
* **local quantum** — a random single-qubit stabilizer state on every
  qubit (random choice of the six Pauli eigenstates).  Still product
  states (compact DDs), but sensitive to phase errors.
* **global quantum** — a random stabilizer-like entangling layer: a layer
  of random single-qubit Clifford gates followed by a random tree of
  CNOTs.  The strongest discriminator; one stimulus already detects most
  errors with high probability.

Each generator returns a `QuantumCircuit` preparing the stimulus from
``|0...0>``, so the simulation checker simply prepends it to both circuits
under test.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.circuit.circuit import QuantumCircuit

#: The supported stimuli families.
STIMULI_TYPES = ("classical", "local_quantum", "global_quantum")

#: Preparations of the six single-qubit stabilizer states from |0>.
_LOCAL_STATE_PREPARATIONS = (
    (),  # |0>
    ("x",),  # |1>
    ("h",),  # |+>
    ("x", "h"),  # |->
    ("h", "s"),  # |+i>
    ("x", "h", "s"),  # |-i>
)


def classical_stimulus(
    num_qubits: int, data_qubits: int, rng: random.Random
) -> QuantumCircuit:
    """A random computational basis state on the data qubits."""
    circuit = QuantumCircuit(num_qubits, name="stimulus_classical")
    bits = rng.getrandbits(data_qubits) if data_qubits else 0
    for qubit in range(data_qubits):
        if (bits >> qubit) & 1:
            circuit.x(qubit)
    return circuit


def local_quantum_stimulus(
    num_qubits: int, data_qubits: int, rng: random.Random
) -> QuantumCircuit:
    """A random product of single-qubit stabilizer states."""
    circuit = QuantumCircuit(num_qubits, name="stimulus_local")
    for qubit in range(data_qubits):
        for gate in rng.choice(_LOCAL_STATE_PREPARATIONS):
            circuit.add(gate, [qubit])
    return circuit


def global_quantum_stimulus(
    num_qubits: int, data_qubits: int, rng: random.Random
) -> QuantumCircuit:
    """A random entangled stabilizer state on the data qubits.

    A layer of random local stabilizer preparations followed by a random
    spanning tree of CNOTs — entangled enough to expose errors anywhere in
    the circuit while keeping the decision diagram of the state small
    (tree entanglement).
    """
    circuit = local_quantum_stimulus(num_qubits, data_qubits, rng)
    circuit.name = "stimulus_global"
    connected: List[int] = [0] if data_qubits else []
    remaining = list(range(1, data_qubits))
    rng.shuffle(remaining)
    for qubit in remaining:
        circuit.cx(rng.choice(connected), qubit)
        connected.append(qubit)
    return circuit


_GENERATORS = {
    "classical": classical_stimulus,
    "local_quantum": local_quantum_stimulus,
    "global_quantum": global_quantum_stimulus,
}


def generate_stimulus(
    kind: str,
    num_qubits: int,
    data_qubits: int,
    rng: Optional[random.Random] = None,
) -> QuantumCircuit:
    """Generate one stimulus-preparation circuit of the requested kind."""
    if kind not in _GENERATORS:
        raise ValueError(
            f"unknown stimuli type {kind!r}; pick one of {STIMULI_TYPES}"
        )
    # repro: allow(seeded-rng): explicit opt-in fallback for interactive use; every checker path passes a seeded rng
    return _GENERATORS[kind](num_qubits, data_qubits, rng or random.Random())


def prepare_stimulus_state(
    pkg,
    stimulus: QuantumCircuit,
    num_qubits: int,
    direct: bool = True,
):
    """Run a stimulus-preparation circuit on ``|0...0>`` as a vector DD.

    Uses the fast-path vector kernel by default, so preparing a stimulus
    on a wide compiled register touches only the data-qubit levels.
    ``pkg`` may be either DD engine; the returned edge is whatever type
    that engine produces (``VEdge`` or a packed integer).
    """
    from repro.dd.gates import apply_operation_to_vector

    state = pkg.basis_state(num_qubits)
    for op in stimulus:
        state = apply_operation_to_vector(
            pkg, state, op, num_qubits, direct=direct
        )
    return state


def prepare_stimulus_columns(
    pkg,
    stimuli: Sequence[QuantumCircuit],
    num_qubits: int,
    direct: bool = True,
) -> List:
    """Prepare one column state per stimulus, for batched simulation.

    The columns all live in ``pkg``, so node sharing across stimuli is
    maximal and every later gate pass (see
    :func:`repro.dd.array_gates.apply_operation_columns`) amortizes its
    compute-table fills across the batch width.
    """
    return [
        prepare_stimulus_state(pkg, stimulus, num_qubits, direct=direct)
        for stimulus in stimuli
    ]
