"""Configuration of an equivalence check."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dd.complex_table import DEFAULT_TOLERANCE
from repro.dd.compute_table import DEFAULT_COMPUTE_TABLE_SIZE


@dataclass
class Configuration:
    """Tunable knobs of :class:`repro.ec.EquivalenceCheckingManager`.

    Attributes:
        strategy: ``"construction"``, ``"alternating"``, ``"simulation"``,
            ``"zx"``, ``"combined"`` (the paper's QCEC setup) or
            ``"stabilizer"`` (exact Clifford-only pre-check; a
            reproduction extension), ``"state"`` (equivalence of the
            prepared states from ``|0...0>`` only) or ``"analysis"``
            (static passes only — sound verdicts or
            ``NO_INFORMATION``, see :mod:`repro.analysis`).
        static_analysis: Run the static analysis pre-pass before any
            checker (default).  A sound non-equivalence witness
            short-circuits the check to ``NOT_EQUIVALENT`` and the cost
            model's advice reorders the ``combined`` schedule; disable
            via CLI ``--no-static-analysis`` for A/B measurements.
        oracle: Gate-selection oracle of the alternating scheme —
            ``"naive"`` (strict 1:1 alternation), ``"proportional"``
            (alternation weighted by the gate-count ratio, QCEC's default
            for unknown circuit relations), ``"lookahead"`` (greedily
            pick the side whose application keeps the DD smaller) or
            ``"compilation_flow"`` (per-gate decomposition-cost profile,
            the dedicated oracle for verifying compilation results —
            reference [38] of the paper).
        num_simulations: Random-stimuli runs for the simulation strategy
            (the paper runs "a sequence of 16 simulation runs").
        stimuli_type: Family of random stimuli — ``"classical"`` (basis
            states, QCEC's default), ``"local_quantum"`` (random product
            stabilizer states) or ``"global_quantum"`` (random entangled
            stabilizer states); see :mod:`repro.ec.stimuli` / [45].
        tolerance: Numerical tolerance of the DD package's complex table.
        fidelity_threshold: Deviation of the Hilbert-Schmidt fidelity /
            per-stimulus fidelity below which circuits count as
            non-equivalent.
        timeout: Wall-clock budget in seconds (None = unlimited); mirrors
            the paper's 1 h hard timeout, scaled to reproduction sizes.
        reconstruct_swaps: Re-assemble CNOT triples into SWAPs so they can
            be absorbed into the tracked permutation (Section 4.1).
        elide_permutations: Absorb SWAP gates into the tracked qubit
            permutation instead of multiplying them into the DD.
        trace_sizes: Record the intermediate DD size after every gate
            application (drives the Fig. 4-style experiments).
        seed: Seed for the simulation strategy's random stimuli.
        direct_application: Use the fast-path ``apply_gate_*`` kernels
            that skip untouched upper qubit levels (default).  ``False``
            selects the legacy full-height gate-DD construction plus
            full-depth multiplication — the seed behaviour, kept for A/B
            ablation benchmarks.
        compute_table_size: Slots per DD compute table (rounded up to a
            power of two), or ``None`` for unbounded dict-backed tables.
        incremental_zx: Use the incremental worklist-driven ZX
            simplification engine (:mod:`repro.zx.worklist`, default).
            ``False`` selects the legacy rescan-to-fixpoint drivers in
            :mod:`repro.zx.simplify` — the seed behaviour, kept for A/B
            ablation benchmarks (CLI ``--legacy-zx-simp``).
        array_dd: Use the array-native DD engine
            (:mod:`repro.dd.array_package`: struct-of-arrays node store,
            packed integer edges, id-keyed weight arithmetic) and, for
            the simulation strategy, batch all stimuli as one
            matrix-of-columns pass per gate.  ``False`` selects the
            legacy object engine (:mod:`repro.dd.package`) with
            per-stimulus simulation — kept for A/B ablation benchmarks
            and engine-agreement tests (CLI ``--legacy-dd``).  Note the
            batched simulation always runs every stimulus to completion
            (no early exit mid-batch); the verdict is unchanged.
        graceful_degradation: Catch checker failures inside
            :meth:`EquivalenceCheckingManager.run` and degrade them into
            a ``NO_INFORMATION`` result carrying a structured
            ``statistics["failure"]`` record (default), instead of
            propagating the exception.
        memory_limit_mb: Address-space headroom in MiB for sandboxed
            execution via :mod:`repro.harness` (None = inherit).  Only
            enforced when the check runs isolated.
        max_retries: Bounded retries of *transient* failures (crashed or
            lost workers) in :func:`repro.harness.run_check`.
        retry_backoff: Base of the exponential backoff between retries,
            in seconds (delay = ``retry_backoff * 2**attempt``, capped).
        portfolio: Race all applicable strategies as concurrent
            sandboxed children instead of running the ``combined``
            schedule sequentially; the first *sound* verdict wins and
            the losers are SIGKILLed (see :mod:`repro.ec.portfolio`).
            Only meaningful with ``strategy="combined"``.
        portfolio_head_start: Seconds the predicted winner (and the
            cheap simulation falsifier) race alone before the remaining
            strategies launch.  Staggering matters most on few-core
            machines, where every extra concurrent child slows the
            winner; a lane that finishes undecided promotes the next
            pending launch immediately, so the head start never idles
            the machine.
        num_instantiations: Seeded random valuations drawn by the
            ``parameterized`` strategy's instantiation fallback when the
            symbolic paths stay undecided (mqt-qcec defaults to a
            comparable small count; every instantiation dispatches one
            full concrete check).
        parameterized_symbolic: Try the symbolic phase-polynomial and
            symbolic ZX paths before instantiating (default).  ``False``
            measures the instantiate-only baseline.
        instantiation_isolation: Run each instantiated concrete check in
            a sandboxed child process instead of in-process.  Off by
            default — instantiated ansatz pairs are small and fork
            overhead would dominate.
    """

    strategy: str = "combined"
    static_analysis: bool = True
    oracle: str = "proportional"
    num_simulations: int = 16
    stimuli_type: str = "classical"
    tolerance: float = DEFAULT_TOLERANCE
    fidelity_threshold: float = 1e-8
    timeout: Optional[float] = None
    reconstruct_swaps: bool = True
    elide_permutations: bool = True
    trace_sizes: bool = False
    seed: Optional[int] = None
    direct_application: bool = True
    compute_table_size: Optional[int] = DEFAULT_COMPUTE_TABLE_SIZE
    incremental_zx: bool = True
    array_dd: bool = True
    graceful_degradation: bool = True
    memory_limit_mb: Optional[int] = None
    max_retries: int = 1
    retry_backoff: float = 0.1
    portfolio: bool = False
    portfolio_head_start: float = 0.25
    num_instantiations: int = 8
    parameterized_symbolic: bool = True
    instantiation_isolation: bool = False

    @staticmethod
    def _require_positive_number(name: str, value: object) -> None:
        """A clear error for non-numeric or non-positive knobs."""
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"{name} must be a number, got {type(value).__name__} "
                f"{value!r}"
            )
        if value != value:  # NaN never compares, so check explicitly
            raise ValueError(f"{name} must be a number, got NaN")
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value!r}")

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        strategies = {
            "construction", "alternating", "simulation", "zx", "combined",
            "stabilizer", "state", "analysis", "parameterized",
        }
        if self.strategy not in strategies:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.oracle not in (
            "naive", "proportional", "lookahead", "compilation_flow",
        ):
            raise ValueError(f"unknown oracle {self.oracle!r}")
        if self.num_simulations < 1:
            raise ValueError("num_simulations must be at least 1")
        from repro.ec.stimuli import STIMULI_TYPES

        if self.stimuli_type not in STIMULI_TYPES:
            raise ValueError(f"unknown stimuli type {self.stimuli_type!r}")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if self.timeout is not None:
            self._require_positive_number("timeout", self.timeout)
        if self.compute_table_size is not None and self.compute_table_size < 1:
            raise ValueError("compute_table_size must be positive or None")
        if self.memory_limit_mb is not None:
            self._require_positive_number("memory_limit_mb", self.memory_limit_mb)
            if not isinstance(self.memory_limit_mb, int):
                raise ValueError(
                    "memory_limit_mb must be an integer number of MiB, "
                    f"got {self.memory_limit_mb!r}"
                )
        if isinstance(self.max_retries, bool) or not isinstance(
            self.max_retries, int
        ):
            raise ValueError(
                "max_retries must be an integer, got "
                f"{type(self.max_retries).__name__} {self.max_retries!r}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries!r}"
            )
        self._require_positive_number("retry_backoff", self.retry_backoff)
        if not isinstance(self.array_dd, bool):
            raise ValueError(
                f"array_dd must be a bool, got {self.array_dd!r}"
            )
        if not isinstance(self.portfolio, bool):
            raise ValueError(
                f"portfolio must be a bool, got {self.portfolio!r}"
            )
        if self.portfolio and self.strategy != "combined":
            raise ValueError(
                "portfolio racing replaces the sequential combined "
                f"schedule and requires strategy='combined', not "
                f"{self.strategy!r}"
            )
        if isinstance(self.portfolio_head_start, bool) or not isinstance(
            self.portfolio_head_start, (int, float)
        ):
            raise ValueError(
                "portfolio_head_start must be a number, got "
                f"{self.portfolio_head_start!r}"
            )
        if (
            self.portfolio_head_start != self.portfolio_head_start
            or self.portfolio_head_start < 0
        ):
            raise ValueError(
                "portfolio_head_start must be non-negative, got "
                f"{self.portfolio_head_start!r}"
            )
        if isinstance(self.num_instantiations, bool) or not isinstance(
            self.num_instantiations, int
        ):
            raise ValueError(
                "num_instantiations must be an integer, got "
                f"{self.num_instantiations!r}"
            )
        if self.num_instantiations < 1:
            raise ValueError(
                "num_instantiations must be at least 1, got "
                f"{self.num_instantiations!r}"
            )
        if not isinstance(self.parameterized_symbolic, bool):
            raise ValueError(
                "parameterized_symbolic must be a bool, got "
                f"{self.parameterized_symbolic!r}"
            )
        if not isinstance(self.instantiation_isolation, bool):
            raise ValueError(
                "instantiation_isolation must be a bool, got "
                f"{self.instantiation_isolation!r}"
            )
