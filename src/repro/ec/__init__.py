"""Equivalence checking of quantum circuits — the paper's core subject.

Strategies (Sections 4-5 of the paper):

* ``construction`` — build both circuits' full system-matrix DDs and
  compare canonical root pointers (the naive baseline of Section 4.1),
* ``alternating`` — build the DD of ``G' G†`` from the middle outwards,
  choosing sides with an *oracle* so the intermediate diagram stays close
  to the identity, with qubit-permutation tracking and SWAP reconstruction,
* ``simulation`` — random-stimuli DD simulation runs that prove
  non-equivalence after a few shots,
* ``zx`` — compose one circuit with the other's adjoint as a ZX-diagram
  and ``full_reduce`` towards a bare-wire permutation,
* ``combined`` — QCEC's default: simulations for fast falsification plus
  the alternating scheme for proof (the configuration the case study runs).

Entry point::

    from repro.ec import EquivalenceCheckingManager, Configuration

    result = EquivalenceCheckingManager(circuit1, circuit2).run()
    result.considered_equivalent  # bool
"""

from repro.ec.configuration import Configuration
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.ec.permutations import reconstruct_swaps, to_logical_form
from repro.ec.dd_checker import (
    AlternatingChecker,
    ConstructionChecker,
    alternating_dd_check,
    construction_dd_check,
)
from repro.ec.sim_checker import simulation_check
from repro.ec.stab_checker import stabilizer_check
from repro.ec.state_checker import state_check
from repro.ec.zx_checker import zx_check
from repro.ec.manager import EquivalenceCheckingManager

__all__ = [
    "AlternatingChecker",
    "Configuration",
    "ConstructionChecker",
    "Equivalence",
    "EquivalenceCheckingManager",
    "EquivalenceCheckingResult",
    "alternating_dd_check",
    "construction_dd_check",
    "reconstruct_swaps",
    "simulation_check",
    "stabilizer_check",
    "state_check",
    "to_logical_form",
    "zx_check",
]
