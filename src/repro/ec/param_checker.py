"""The ``parameterized`` strategy: symbolic-first, instantiate-fallback.

Variational workloads (VQE ansätze and friends) carry free rotation
parameters, which none of the concrete checkers can express.  Following
mqt-qcec's ``parameterized.py`` flow and Hong et al.'s symbolic ZX
treatment, the checker runs a ladder of increasingly expensive paths:

1. **Symbolic phase polynomial** — both circuits canonicalized over the
   {CNOT, X, Rz} fragment with exact :class:`~repro.circuit.symbolic.
   ParamExpr` angle accumulation.  An affine-map mismatch or a purely
   numeric relative-phase defect is a *valuation-independent* sound
   ``NOT_EQUIVALENT``; exact symbolic cancellation of every term is a
   sound ``EQUIVALENT_UP_TO_GLOBAL_PHASE`` for **all** valuations.
2. **Symbolic ZX** — the ordinary :func:`repro.ec.zx_checker.zx_check`
   miter with :class:`~repro.zx.phase.SymbolicPhase` spider phases.
   Every rewrite the engine may apply to a symbolic spider holds for
   arbitrary phase values (fusion, identity removal, Hopf/π-copy), and
   the Clifford-specific rules skip symbolic spiders by construction,
   so a reduction to the identity diagram proves equivalence for every
   valuation.  A ``NOT_EQUIVALENT`` from this path (empty diagram or
   residual wire permutation) is likewise valuation-independent.
3. **Random instantiation** — seeded valuations are substituted into
   both circuits and each concrete pair dispatched through the existing
   :func:`repro.harness.run_check` machinery (static analysis, combined
   schedule, sandboxing, retries — everything concrete checks get).
   ``NOT_EQUIVALENT`` at *any* valuation is a sound witness, recorded
   in the statistics; agreement at every valuation yields
   ``PROBABLY_EQUIVALENT`` — evidence, not proof, exactly like the
   simulation strategy's asymmetry in the paper's Section 6.2.

The remaining wall-clock budget is re-split before every instantiation
(``remaining / instantiations_left``, mqt-qcec's ``__adjust_timeout``),
so an early slow valuation cannot starve the rest of the schedule.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.phasepoly import phase_polynomial_check
from repro.circuit.circuit import QuantumCircuit
from repro.circuit.symbolic import circuit_parameters, instantiate_circuit
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import _check_deadline
from repro.ec.permutations import to_logical_form
from repro.ec.results import (
    Equivalence,
    EquivalenceCheckingResult,
)
from repro.ec.zx_checker import zx_check

_TWO_PI = 6.283185307179586

#: The strategy name this checker reports.
STRATEGY = "parameterized"


def draw_valuations(
    variables: Tuple[str, ...],
    count: int,
    seed: Optional[int],
) -> List[Dict[str, float]]:
    """``count`` seeded uniform valuations over ``variables``.

    Angles are drawn from ``[0, 2π)`` — every gate angle is 2π-periodic,
    so this covers the full parameter space.
    """
    rng = random.Random(seed)
    return [
        {name: rng.uniform(0.0, _TWO_PI) for name in variables}
        for _ in range(count)
    ]


def _instantiation_timeout(
    deadline: Optional[float], remaining_checks: int
) -> Optional[float]:
    """Fair share of the remaining budget for the next instantiation."""
    if deadline is None:
        return None
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return 0.001  # force an immediate cooperative timeout downstream
    return max(remaining / max(1, remaining_checks), 0.001)


def check_instantiated_random(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Configuration,
    deadline: Optional[float] = None,
    variables: Optional[Tuple[str, ...]] = None,
) -> Tuple[Equivalence, Dict[str, object]]:
    """Dispatch seeded concrete instantiations through ``run_check``.

    Returns ``(verdict, stats)``; a ``NOT_EQUIVALENT`` at any valuation
    carries the witness valuation in ``stats["witness_valuation"]``.
    """
    from repro.harness import run_check

    if variables is None:
        variables = tuple(
            sorted(
                set(circuit_parameters(circuit1))
                | set(circuit_parameters(circuit2))
            )
        )
    count = configuration.num_instantiations
    valuations = draw_valuations(variables, count, configuration.seed)
    sub_base = dataclasses.replace(
        configuration,
        strategy="combined",
        portfolio=False,
    )
    outcomes: List[str] = []
    stats: Dict[str, object] = {
        "instantiations_requested": count,
        "outcomes": outcomes,
    }
    positives = 0
    undecided = 0
    timeouts = 0
    for index, valuation in enumerate(valuations):
        _check_deadline(deadline)
        inst1 = instantiate_circuit(circuit1, valuation)
        inst2 = instantiate_circuit(circuit2, valuation)
        sub_config = dataclasses.replace(
            sub_base,
            timeout=_instantiation_timeout(deadline, count - index),
        )
        result = run_check(
            inst1,
            inst2,
            sub_config,
            isolate=configuration.instantiation_isolation,
        )
        outcomes.append(result.equivalence.value)
        if result.equivalence is Equivalence.NOT_EQUIVALENT:
            stats["witness_valuation"] = dict(valuation)
            stats["witness_index"] = index
            stats["instantiations_run"] = index + 1
            return Equivalence.NOT_EQUIVALENT, stats
        if result.considered_equivalent:
            positives += 1
        elif result.equivalence is Equivalence.TIMEOUT:
            timeouts += 1
        else:
            undecided += 1
    stats["instantiations_run"] = len(valuations)
    if positives == len(valuations) and valuations:
        # Every valuation agreed — strong evidence, never a proof.
        return Equivalence.PROBABLY_EQUIVALENT, stats
    if timeouts and not positives and not undecided:
        return Equivalence.TIMEOUT, stats
    return Equivalence.NO_INFORMATION, stats


def parameterized_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Check two (symbolically) parameterized circuits for equivalence."""
    config = configuration or Configuration()
    start = time.monotonic()
    variables = tuple(
        sorted(
            set(circuit_parameters(circuit1))
            | set(circuit_parameters(circuit2))
        )
    )
    stats: Dict[str, object] = {"variables": list(variables)}

    def finish(
        equivalence: Equivalence, path: str
    ) -> EquivalenceCheckingResult:
        stats["path"] = path
        return EquivalenceCheckingResult(
            equivalence,
            STRATEGY,
            time.monotonic() - start,
            {"parameterized": stats},
        )

    if config.parameterized_symbolic:
        # Path 1: symbolic phase polynomial over the logical forms.
        _check_deadline(deadline)
        num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
        logical1, _ = to_logical_form(
            circuit1,
            num_qubits,
            config.elide_permutations,
            config.reconstruct_swaps,
        )
        logical2, _ = to_logical_form(
            circuit2,
            num_qubits,
            config.elide_permutations,
            config.reconstruct_swaps,
        )
        verdict, details = phase_polynomial_check(logical1, logical2)
        stats["phase_polynomial"] = details
        if verdict == "not_equivalent":
            # Affine-map mismatch or purely numeric phase defect — both
            # independent of the parameter valuation, so any valuation
            # (all-zeros is the canonical one) witnesses it.
            stats["witness_valuation"] = {name: 0.0 for name in variables}
            return finish(Equivalence.NOT_EQUIVALENT, "phase_polynomial")
        if verdict == "equivalent_up_to_global_phase":
            return finish(
                Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE, "phase_polynomial"
            )

        # Path 2: symbolic ZX reduction of the miter.
        _check_deadline(deadline)
        zx_result = zx_check(circuit1, circuit2, config, deadline)
        stats["zx"] = dict(zx_result.statistics)
        if zx_result.proven:
            if zx_result.equivalence is Equivalence.NOT_EQUIVALENT:
                stats["witness_valuation"] = {
                    name: 0.0 for name in variables
                }
            return finish(zx_result.equivalence, "zx_symbolic")

    # Path 3: seeded random instantiation through the concrete stack.
    equivalence, inst_stats = check_instantiated_random(
        circuit1, circuit2, config, deadline, variables
    )
    stats["instantiation"] = inst_stats
    if "witness_valuation" in inst_stats:
        stats["witness_valuation"] = inst_stats["witness_valuation"]
    return finish(equivalence, "instantiation")
