"""Random-stimuli simulation checking (paper Section 6.1 / [45]).

The paper's QCEC configuration runs the alternating scheme "in parallel
with a sequence of 16 simulation runs. If the simulations manage to prove
non-equivalence of the circuits, the equivalence checking routine is
terminated early."  Each run simulates both circuits on a random classical
basis state using vector decision diagrams and compares the resulting
states' fidelity: any mismatch is a *proof* of non-equivalence, while
agreement on all stimuli yields ``PROBABLY_EQUIVALENT`` — strong evidence,
not proof.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.qasm import circuit_to_qasm
from repro.dd.array_gates import apply_operation_columns
from repro.dd.gates import apply_operation_to_vector
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import _check_deadline, make_package
from repro.ec.permutations import to_logical_form
from repro.ec.results import Equivalence, EquivalenceCheckingResult
from repro.ec.stimuli import (
    generate_stimulus,
    prepare_stimulus_columns,
    prepare_stimulus_state,
)
from repro.perf import PerfCounters, package_statistics


def simulation_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Run random-basis-state simulations of both circuits and compare.

    Stimuli are random bit strings on the *data* qubits (the width of the
    narrower circuit); ancilla wires added by compilation start in
    ``|0>``, matching the hardware assumption.

    Under ``Configuration.array_dd`` (default) all stimuli are batched:
    one column state per stimulus, one pass over each circuit's gates
    applying every gate to all columns, fidelities compared at the end.
    The stimulus sequence (and hence ``stimuli_digest``) is byte-identical
    to the per-stimulus legacy loop, but there is no early exit before
    all stimuli are simulated.
    """
    config = configuration or Configuration()
    start = time.monotonic()
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    data_qubits = min(circuit1.num_qubits, circuit2.num_qubits)
    logical1, _ = to_logical_form(
        circuit1, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    logical2, _ = to_logical_form(
        circuit2, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    rng = random.Random(config.seed)
    pkg = make_package(config)
    direct = config.direct_application
    perf = PerfCounters()
    # Running digest over the serialized stimuli: two runs with the same
    # seed must report byte-identical sequences (reproducibility contract,
    # checkable across process boundaries via this statistic).
    stimuli_digest = hashlib.sha256()

    def statistics(runs: int, fidelity: float) -> dict:
        return {
            "simulations_run": runs,
            "min_fidelity": fidelity,
            "stimuli_digest": stimuli_digest.hexdigest(),
            "complex_table": pkg.complex_table.stats(),
            "perf": {**perf.as_dict(), **package_statistics(pkg)},
        }

    if config.array_dd:
        # Batched path: generate every stimulus up front (identical rng
        # call order and digest updates as the per-stimulus loop below),
        # then propagate all of them as one matrix-of-columns pass per
        # gate.  Every stimulus always runs to completion — no early exit
        # mid-batch — which changes nothing about the verdict.
        with perf.phase("stimulus_preparation"):
            stimuli = []
            for _ in range(config.num_simulations):
                _check_deadline(deadline)
                stimulus = generate_stimulus(
                    config.stimuli_type, num_qubits, data_qubits, rng
                )
                stimuli_digest.update(
                    circuit_to_qasm(stimulus).encode("utf-8")
                )
                stimuli.append(stimulus)
            columns = prepare_stimulus_columns(
                pkg, stimuli, num_qubits, direct=direct
            )
        perf.count("dd.batch_width", len(columns))
        with perf.phase("simulation"):
            states1 = list(columns)
            states2 = list(columns)
            for op in logical1:
                _check_deadline(deadline)
                states1 = apply_operation_columns(
                    pkg, states1, op, num_qubits, direct=direct
                )
                perf.count("dd.batched_gate_applications")
            for op in logical2:
                _check_deadline(deadline)
                states2 = apply_operation_columns(
                    pkg, states2, op, num_qubits, direct=direct
                )
                perf.count("dd.batched_gate_applications")
        min_fidelity = 1.0
        with perf.phase("fidelity"):
            for index, (state1, state2) in enumerate(zip(states1, states2)):
                _check_deadline(deadline)
                fidelity = pkg.fidelity(state1, state2)
                min_fidelity = min(min_fidelity, fidelity)
                if abs(fidelity - 1.0) > config.fidelity_threshold:
                    stats = statistics(config.num_simulations, fidelity)
                    # How many stimuli the per-stimulus loop would have
                    # needed — keeps the paper's "errors show up within a
                    # few simulations" observable under batching.
                    stats["first_mismatch"] = index + 1
                    return EquivalenceCheckingResult(
                        Equivalence.NOT_EQUIVALENT,
                        "simulation",
                        time.monotonic() - start,
                        stats,
                    )
        return EquivalenceCheckingResult(
            Equivalence.PROBABLY_EQUIVALENT,
            "simulation",
            time.monotonic() - start,
            statistics(config.num_simulations, min_fidelity),
        )

    runs = 0
    min_fidelity = 1.0
    for _ in range(config.num_simulations):
        with perf.phase("stimulus_preparation"):
            stimulus = generate_stimulus(
                config.stimuli_type, num_qubits, data_qubits, rng
            )
            stimuli_digest.update(circuit_to_qasm(stimulus).encode("utf-8"))
            prepared = prepare_stimulus_state(
                pkg, stimulus, num_qubits, direct=direct
            )
        state1 = state2 = prepared
        with perf.phase("simulation"):
            for op in logical1:
                _check_deadline(deadline)
                state1 = apply_operation_to_vector(
                    pkg, state1, op, num_qubits, direct=direct
                )
            for op in logical2:
                _check_deadline(deadline)
                state2 = apply_operation_to_vector(
                    pkg, state2, op, num_qubits, direct=direct
                )
        runs += 1
        with perf.phase("fidelity"):
            fidelity = pkg.fidelity(state1, state2)
        min_fidelity = min(min_fidelity, fidelity)
        if abs(fidelity - 1.0) > config.fidelity_threshold:
            return EquivalenceCheckingResult(
                Equivalence.NOT_EQUIVALENT,
                "simulation",
                time.monotonic() - start,
                statistics(runs, fidelity),
            )
    return EquivalenceCheckingResult(
        Equivalence.PROBABLY_EQUIVALENT,
        "simulation",
        time.monotonic() - start,
        statistics(runs, min_fidelity),
    )
