"""Qubit-permutation handling for compiled circuits.

Compiled circuits act on *physical* wires related to the original logical
qubits by an initial layout and an output permutation (paper Section 3).
The machinery here realizes Section 4.1's treatment:

* :func:`reconstruct_swaps` re-assembles SWAPs that the compiler
  decomposed into three CNOTs ("To maximize this potential, deconstructed
  SWAP operations are reconstructed"),
* :func:`to_logical_form` rewrites a circuit onto logical wires by
  *tracking* the physical-to-logical permutation through the circuit,
  absorbing SWAP gates into the tracked permutation instead of emitting
  them, and appending corrective SWAPs only where the tracked permutation
  disagrees with the declared output permutation.

Every equivalence-checking strategy consumes circuits in logical form, so
all of them handle permuted inputs/outputs uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gate import Operation
from repro.dd.gates import permutation_to_transpositions


def reconstruct_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Replace CNOT triples ``cx(a,b) cx(b,a) cx(a,b)`` by ``swap(a,b)``.

    Only list-consecutive triples are matched, which is how compilation
    flows emit them; the pass preserves layout metadata.
    """
    out = QuantumCircuit(
        circuit.num_qubits,
        name=circuit.name,
        initial_layout=circuit.initial_layout,
        output_permutation=circuit.output_permutation,
    )
    ops = list(circuit)
    index = 0
    # repro: allow(deadline-prop): index strictly advances over a fixed list
    while index < len(ops):
        op = ops[index]
        if (
            index + 2 < len(ops)
            and _is_cx(op)
            and _is_cx(ops[index + 1])
            and _is_cx(ops[index + 2])
            and ops[index + 1].controls == op.targets
            and ops[index + 1].targets == op.controls
            and ops[index + 2] == op
        ):
            out.swap(op.controls[0], op.targets[0])
            index += 3
            continue
        out.append(op)
        index += 1
    return out


def _is_cx(op: Operation) -> bool:
    return op.name == "x" and len(op.controls) == 1


def to_logical_form(
    circuit: QuantumCircuit,
    num_qubits: Optional[int] = None,
    elide_permutations: bool = True,
    reconstruct: bool = True,
) -> Tuple[QuantumCircuit, Dict[str, int]]:
    """Rewrite a circuit onto logical wires, erasing its layout metadata.

    Returns the rewritten circuit (with identity layout/output metadata)
    plus statistics: ``swaps_elided`` (absorbed into the tracked
    permutation), ``swaps_reconstructed`` and ``correction_swaps``
    (appended to fix a leftover permutation mismatch).

    The invariant maintained while scanning is: *physical wire ``w`` of
    the input circuit corresponds to logical wire ``perm[w]`` of the
    output circuit*, starting from the initial layout.
    """
    if num_qubits is None:
        num_qubits = circuit.num_qubits
    if num_qubits < circuit.num_qubits:
        raise ValueError("cannot shrink a circuit in to_logical_form")
    statistics = {
        "swaps_elided": 0,
        "swaps_reconstructed": 0,
        "correction_swaps": 0,
    }
    source = reconstruct_swaps(circuit) if reconstruct else circuit
    if reconstruct:
        statistics["swaps_reconstructed"] = sum(
            1 for op in source if op.name == "swap"
        ) - sum(1 for op in circuit if op.name == "swap")

    perm = circuit.resolved_initial_layout()  # physical wire -> logical
    for extra in range(circuit.num_qubits, num_qubits):
        perm.setdefault(extra, extra)
    out = QuantumCircuit(num_qubits, name=f"{circuit.name}_logical")

    for op in source:
        if op.name == "swap" and not op.controls and elide_permutations:
            a, b = op.targets
            perm[a], perm[b] = perm[b], perm[a]
            statistics["swaps_elided"] += 1
            continue
        out.append(op.remapped(perm))

    expected = circuit.resolved_output_permutation()  # physical -> logical
    for extra in range(circuit.num_qubits, num_qubits):
        expected.setdefault(extra, extra)
    # The state sitting on logical wire perm[w] must end up being reported
    # as logical qubit expected[w]: emit SWAPs realizing the wire map
    # perm[w] -> expected[w].
    correction = {perm[w]: expected[w] for w in perm}
    for a, b in permutation_to_transpositions(correction, num_qubits):
        out.swap(a, b)
        statistics["correction_swaps"] += 1
    return out, statistics
