"""Concurrent strategy portfolio: race the checkers, first sound verdict wins.

The source paper's central finding is that no single paradigm dominates
— DD construction, the alternating scheme, random-stimuli simulation
and ZX rewriting each win different Table-1 cells — so running the
``combined`` schedule sequentially makes every pair pay the sum of the
losers before the winner reports.  With ``Configuration.portfolio``
enabled, the manager instead launches every applicable strategy as a
concurrent sandboxed child (via :mod:`repro.harness.race`) under one
shared deadline and SIGKILLs the losers the moment any child returns a
*sound* EQ/NEQ verdict.  ``PROBABLY_EQUIVALENT`` from simulation is
evidence, not proof: it only wins when nothing sound arrives before the
deadline.

The static cost advisor (:func:`repro.analysis.cost.seed_portfolio`)
seeds the race: the predicted winner and the cheap simulation falsifier
launch immediately, the companion strategies stagger in behind a short
head start (crucial on few-core machines, where every concurrent child
slows the others), and a lane finishing undecided promotes the next
pending launch at once.  ``stabilizer`` only joins when the gateset
pass proves both circuits Clifford.

Cross-child verdict disagreement — two children both claiming a proof,
with opposite polarity — is a checker bug and surfaces as a hard
:class:`~repro.errors.PortfolioDisagreement`, bypassing every graceful-
degradation path.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.results import Equivalence, EquivalenceCheckingResult

#: Preference order among non-sound survivors when the race drains
#: undecided: probabilistic evidence beats "I don't know" beats timeout.
_FALLBACK_RANK = {
    Equivalence.PROBABLY_EQUIVALENT: 0,
    Equivalence.NO_INFORMATION: 1,
    Equivalence.TIMEOUT: 2,
}


def plan_portfolio(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Configuration,
    report=None,
):
    """Build the advisor-seeded launch plan for one pair.

    Reuses the static pre-pass report's profiles and cost estimate when
    the manager already computed them; with ``static_analysis`` off the
    gateset profiling and cost model run here directly (they are single
    passes over the operation lists — far cheaper than one fork).
    """
    from repro.analysis import (
        estimate_cost,
        profile_gate_set,
        seed_portfolio,
        to_logical_form,
    )

    if report is not None:
        profiles = report.profiles
        estimate = report.estimate
    else:
        num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
        logical1, _ = to_logical_form(
            circuit1,
            num_qubits,
            elide_permutations=configuration.elide_permutations,
            reconstruct=configuration.reconstruct_swaps,
        )
        logical2, _ = to_logical_form(
            circuit2,
            num_qubits,
            elide_permutations=configuration.elide_permutations,
            reconstruct=configuration.reconstruct_swaps,
        )
        profiles = (profile_gate_set(logical1), profile_gate_set(logical2))
        estimate = estimate_cost((logical1, logical2), profiles)
    return seed_portfolio(
        profiles,
        estimate,
        head_start=configuration.portfolio_head_start,
        timeout=configuration.timeout,
        memory_mb=configuration.memory_limit_mb,
    )


def _child_configuration(
    configuration: Configuration, strategy: str, remaining: Optional[float]
) -> Configuration:
    """One lane's configuration: a single strategy, no nested portfolio.

    The child skips the static pre-pass (the parent already ran it once
    for the whole race) and keeps the parent's seeds and table bounds so
    lane verdicts are bit-identical to the same strategy run alone.
    """
    return dataclasses.replace(
        configuration,
        strategy=strategy,
        portfolio=False,
        static_analysis=False,
        timeout=remaining,
    )


def _select_fallback(outcomes) -> Optional[str]:
    """Pick the best non-sound survivor: rank first, completion order second."""
    best_name: Optional[str] = None
    best_rank: Optional[int] = None
    for child in outcomes:
        if child.result is None:
            continue
        rank = _FALLBACK_RANK.get(child.result.equivalence)
        if rank is None:  # pragma: no cover - sound results win earlier
            continue
        if best_rank is None or rank < best_rank:
            best_name, best_rank = child.name, rank
    return best_name


def run_portfolio(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Configuration,
    start: float,
    deadline: Optional[float],
    report=None,
) -> EquivalenceCheckingResult:
    """Race all applicable strategies; return the winning verdict.

    Args:
        configuration: The manager's configuration (``portfolio=True``,
            ``strategy="combined"``).
        start: The manager's ``time.monotonic()`` reference — the
            returned result's ``time`` covers the whole check including
            the pre-pass, matching the sequential path's accounting.
        deadline: Shared cooperative deadline (monotonic timestamp); the
            racer converts the remainder into the shared hard budget.
        report: The static pre-pass report, when it ran.

    Raises:
        PortfolioDisagreement: Two lanes returned contradictory sound
            verdicts (never swallowed by graceful degradation).
    """
    from repro.harness.race import KILL_LOSER, RaceEntry, race_checks
    from repro.perf import PerfCounters

    counters = PerfCounters()
    counters.count("portfolio.races")
    plan = plan_portfolio(circuit1, circuit2, configuration, report)
    now = time.monotonic()
    remaining = None if deadline is None else max(0.01, deadline - now)
    entries: List[RaceEntry] = []
    for slot in plan.slots:
        lane_budget = slot.time_budget
        if remaining is not None:
            lane_budget = (
                remaining if lane_budget is None
                else min(lane_budget, remaining)
            )
        entries.append(
            RaceEntry(
                name=slot.strategy,
                configuration=_child_configuration(
                    configuration, slot.strategy, lane_budget
                ),
                delay=slot.delay,
                memory_mb=slot.memory_mb
                if slot.memory_mb is not None
                else configuration.memory_limit_mb,
            )
        )
    outcome = race_checks(circuit1, circuit2, entries, shared_budget=remaining)
    counters.count(
        "portfolio.children_launched",
        sum(1 for child in outcome.children if child.status != "skipped"),
    )
    counters.count(
        "portfolio.losers_killed",
        sum(
            1 for child in outcome.children
            if child.kill_code == KILL_LOSER
        ),
    )

    winner = outcome.winner
    sound = winner is not None
    if sound:
        counters.count("portfolio.sound_wins")
    else:
        winner = _select_fallback(outcome.children)
        if winner is not None and (
            outcome.outcome(winner).result.equivalence
            is Equivalence.PROBABLY_EQUIVALENT
        ):
            counters.count("portfolio.probabilistic_wins")

    elapsed = time.monotonic() - start
    if winner is not None:
        winning = outcome.outcome(winner)
        result = winning.result
        assert result is not None
    else:
        # Every lane failed or was killed undecided: degrade like the
        # sequential path would — TIMEOUT when the shared deadline
        # expired, NO_INFORMATION otherwise — keeping the first failure.
        counters.count("portfolio.no_verdict")
        verdict = (
            Equivalence.TIMEOUT
            if outcome.deadline_expired
            else Equivalence.NO_INFORMATION
        )
        failure = next(
            (
                child.error for child in outcome.children
                if child.error is not None
            ),
            None,
        )
        statistics: Dict[str, object] = {}
        if failure is not None:
            statistics["failure"] = failure
        result = EquivalenceCheckingResult(
            verdict, "portfolio", elapsed, statistics
        )

    result.strategy = "portfolio"
    result.time = elapsed
    result.statistics["portfolio"] = {
        "winner": winner,
        "sound": sound,
        "preferred_checker": plan.preferred_checker,
        "rationale": list(plan.rationale),
        "plan": plan.to_dict()["slots"],
        "children": [child.to_dict() for child in outcome.children],
        "kills": outcome.kill_counts(),
        "all_reaped": all(
            child.reaped
            for child in outcome.children
            if child.status != "skipped"
        ),
        "race_elapsed": round(outcome.elapsed, 6),
        "start_method": outcome.start_method,
        "perf": counters.as_dict(),
    }
    return result


def loser_kill_codes(result: EquivalenceCheckingResult) -> Dict[str, str]:
    """Per-lane kill codes of a portfolio result (for journal cells)."""
    block = result.statistics.get("portfolio")
    if not isinstance(block, dict):
        return {}
    codes: Dict[str, str] = {}
    for child in block.get("children", ()):
        if isinstance(child, dict) and child.get("kill_code"):
            codes[str(child.get("name"))] = str(child["kill_code"])
    return codes


def portfolio_winner(result: EquivalenceCheckingResult) -> Optional[str]:
    """The winning lane of a portfolio result, or None."""
    block = result.statistics.get("portfolio")
    if isinstance(block, dict):
        winner = block.get("winner")
        return str(winner) if winner is not None else None
    return None
