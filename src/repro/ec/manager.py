"""The equivalence-checking manager: strategy dispatch, timeout, combination.

Mirrors QCEC's front end: construct a manager from two circuits and a
:class:`~repro.ec.configuration.Configuration`, call :meth:`run`.  The
``combined`` strategy reproduces the paper's QCEC setup — "we run the
equivalence checking routine described in Section 4.1 in parallel with a
sequence of 16 simulation runs.  If the simulations manage to prove
non-equivalence of the circuits, the equivalence checking routine is
terminated early."  CPython's GIL makes thread-parallel DD work pointless,
so the reproduction runs the (cheap, falsifying) simulations first and the
(expensive, proving) alternating scheme second, which preserves the
early-exit behaviour the paper's setup achieves through parallelism.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import AlternatingChecker, ConstructionChecker
from repro.ec.results import (
    Equivalence,
    EquivalenceCheckingResult,
    EquivalenceCheckingTimeout,
)
from repro.ec.sim_checker import simulation_check
from repro.ec.stab_checker import stabilizer_check
from repro.ec.state_checker import state_check
from repro.ec.zx_checker import zx_check


class EquivalenceCheckingManager:
    """Runs one equivalence check between two circuits."""

    def __init__(
        self,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Optional[Configuration] = None,
    ) -> None:
        self.circuit1 = circuit1
        self.circuit2 = circuit2
        self.configuration = configuration or Configuration()
        self.configuration.validate()

    def run(self) -> EquivalenceCheckingResult:
        """Execute the configured strategy and return the result.

        With ``configuration.graceful_degradation`` (the default), a
        failing checker never propagates an exception: the failure is
        classified through :mod:`repro.errors` and degraded into a
        ``NO_INFORMATION`` result whose ``statistics["failure"]`` holds
        the structured record — one bad cell must not take down a batch.
        """
        config = self.configuration
        start = time.monotonic()
        try:
            return self._run_strategy(start)
        except EquivalenceCheckingTimeout:
            return EquivalenceCheckingResult(
                Equivalence.TIMEOUT,
                config.strategy,
                time.monotonic() - start,
            )
        except Exception as exc:
            if not config.graceful_degradation:
                raise
            from repro.errors import classify_exception

            return EquivalenceCheckingResult(
                Equivalence.NO_INFORMATION,
                config.strategy,
                time.monotonic() - start,
                {"failure": classify_exception(exc).to_dict()},
            )

    def run_single(self, strategy: str) -> EquivalenceCheckingResult:
        """Run exactly one named strategy, overriding the configured one.

        The differential fuzzer drives the full strategy matrix through
        this hook: the manager's configuration (timeouts, seeds, table
        bounds) stays authoritative while the strategy choice is swapped
        per call.  Degradation semantics are those of :meth:`run`.
        """
        original = self.configuration
        override = dataclasses.replace(original, strategy=strategy)
        override.validate()
        self.configuration = override
        try:
            return self.run()
        finally:
            self.configuration = original

    def _run_strategy(self, start: float) -> EquivalenceCheckingResult:
        """Dispatch to the configured checker (exceptions propagate)."""
        config = self.configuration
        deadline = (
            start + config.timeout if config.timeout is not None else None
        )
        # Fault-injection seam: repro.harness.chaos arms faults that fire
        # here, inside the checker path, after configuration validation —
        # where a real DD/ZX blowup would occur.  Imported lazily to keep
        # repro.ec free of a load-time dependency on the harness layer.
        from repro.harness import chaos

        chaos.maybe_trigger()
        if config.strategy == "construction":
            return ConstructionChecker(
                self.circuit1, self.circuit2, config
            ).run(deadline)
        if config.strategy == "alternating":
            return AlternatingChecker(
                self.circuit1, self.circuit2, config
            ).run(deadline)
        if config.strategy == "simulation":
            return simulation_check(
                self.circuit1, self.circuit2, config, deadline
            )
        if config.strategy == "zx":
            return zx_check(self.circuit1, self.circuit2, config, deadline)
        if config.strategy == "stabilizer":
            return stabilizer_check(
                self.circuit1, self.circuit2, config, deadline
            )
        if config.strategy == "state":
            return state_check(
                self.circuit1, self.circuit2, config, deadline
            )
        return self._run_combined(start, deadline)

    def _run_combined(
        self, start: float, deadline: Optional[float]
    ) -> EquivalenceCheckingResult:
        """Simulation for fast falsification, then the alternating proof."""
        config = self.configuration
        sim_result = simulation_check(
            self.circuit1, self.circuit2, config, deadline
        )
        if sim_result.equivalence is Equivalence.NOT_EQUIVALENT:
            sim_result.strategy = "combined"
            sim_result.time = time.monotonic() - start
            return sim_result
        alt_result = AlternatingChecker(
            self.circuit1, self.circuit2, config
        ).run(deadline)
        alt_result.strategy = "combined"
        alt_result.statistics["simulations_run"] = sim_result.statistics[
            "simulations_run"
        ]
        alt_result.time = time.monotonic() - start
        return alt_result
