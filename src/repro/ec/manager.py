"""The equivalence-checking manager: strategy dispatch, timeout, combination.

Mirrors QCEC's front end: construct a manager from two circuits and a
:class:`~repro.ec.configuration.Configuration`, call :meth:`run`.  The
``combined`` strategy reproduces the paper's QCEC setup — "we run the
equivalence checking routine described in Section 4.1 in parallel with a
sequence of 16 simulation runs.  If the simulations manage to prove
non-equivalence of the circuits, the equivalence checking routine is
terminated early."  CPython's GIL makes thread-parallel DD work pointless,
so the reproduction runs the (cheap, falsifying) simulations first and the
(expensive, proving) alternating scheme second, which preserves the
early-exit behaviour the paper's setup achieves through parallelism.

With ``configuration.portfolio`` the combined schedule is replaced by
genuine concurrency: every applicable strategy races in its own
sandboxed child process and the first *sound* verdict wins
(:mod:`repro.ec.portfolio`) — process isolation sidesteps the GIL the
same way QCEC's native threads do.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import AlternatingChecker, ConstructionChecker
from repro.ec.results import (
    Equivalence,
    EquivalenceCheckingResult,
    EquivalenceCheckingTimeout,
)
from repro.ec.sim_checker import simulation_check
from repro.ec.stab_checker import stabilizer_check
from repro.ec.state_checker import state_check
from repro.ec.zx_checker import zx_check


class EquivalenceCheckingManager:
    """Runs one equivalence check between two circuits.

    The manager never mutates ``self.configuration``: strategy overrides
    (:meth:`run_single`) are threaded through the dispatch chain as an
    explicit configuration value, so one manager instance is safe to
    drive concurrently — the portfolio racer and the differential fuzz
    oracle both rely on this.
    """

    def __init__(
        self,
        circuit1: QuantumCircuit,
        circuit2: QuantumCircuit,
        configuration: Optional[Configuration] = None,
    ) -> None:
        self.circuit1 = circuit1
        self.circuit2 = circuit2
        self.configuration = configuration or Configuration()
        self.configuration.validate()

    def run(self) -> EquivalenceCheckingResult:
        """Execute the configured strategy and return the result.

        With ``configuration.graceful_degradation`` (the default), a
        failing checker never propagates an exception: the failure is
        classified through :mod:`repro.errors` and degraded into a
        ``NO_INFORMATION`` result whose ``statistics["failure"]`` holds
        the structured record — one bad cell must not take down a batch.
        The single exception is a cross-child
        :class:`~repro.errors.PortfolioDisagreement`: two racing
        checkers contradicting each other with sound verdicts is a
        checker bug and always propagates.
        """
        return self._run(self.configuration)

    def run_single(self, strategy: str) -> EquivalenceCheckingResult:
        """Run exactly one named strategy, overriding the configured one.

        The differential fuzzer drives the full strategy matrix through
        this hook: the manager's configuration (timeouts, seeds, table
        bounds) stays authoritative while the strategy choice is swapped
        per call.  The override is threaded through explicitly —
        ``self.configuration`` is never touched, so concurrent
        ``run_single`` calls on one manager cannot race each other.
        Degradation semantics are those of :meth:`run`.
        """
        override = dataclasses.replace(self.configuration, strategy=strategy)
        if strategy != "combined":
            # Portfolio racing only applies to the combined schedule; a
            # single-strategy override runs that one checker directly.
            override = dataclasses.replace(override, portfolio=False)
        override.validate()
        return self._run(override)

    def _run(self, config: Configuration) -> EquivalenceCheckingResult:
        """Shared driver behind :meth:`run` and :meth:`run_single`."""
        start = time.monotonic()
        try:
            return self._run_strategy(config, start)
        except EquivalenceCheckingTimeout:
            return EquivalenceCheckingResult(
                Equivalence.TIMEOUT,
                config.strategy,
                time.monotonic() - start,
            )
        except Exception as exc:
            from repro.errors import PortfolioDisagreement, classify_exception

            if isinstance(exc, PortfolioDisagreement):
                raise  # a checker bug — never swallowed
            if not config.graceful_degradation:
                raise
            return EquivalenceCheckingResult(
                Equivalence.NO_INFORMATION,
                config.strategy,
                time.monotonic() - start,
                {"failure": classify_exception(exc).to_dict()},
            )

    def _run_strategy(
        self, config: Configuration, start: float
    ) -> EquivalenceCheckingResult:
        """Dispatch to the configured checker (exceptions propagate).

        This is the single dispatch seam: both :meth:`run` and
        :meth:`run_single` land here, so the static pre-pass below is
        exercised identically by users and by the differential fuzzer.
        """
        deadline = (
            start + config.timeout if config.timeout is not None else None
        )
        # Fault-injection seam: repro.harness.chaos arms faults that fire
        # here, inside the checker path, after configuration validation —
        # where a real DD/ZX blowup would occur.  Imported lazily to keep
        # repro.ec free of a load-time dependency on the harness layer.
        from repro.harness import chaos

        chaos.maybe_trigger()
        from repro.circuit.symbolic import is_symbolic_circuit

        symbolic = is_symbolic_circuit(self.circuit1) or is_symbolic_circuit(
            self.circuit2
        )
        if config.strategy == "parameterized":
            if symbolic:
                # The parameterized checker owns its whole ladder
                # (symbolic phase polynomial, symbolic ZX, seeded
                # instantiation); the concrete static pre-pass below
                # cannot run on symbolic circuits, so dispatch directly.
                from repro.ec.param_checker import parameterized_check

                return parameterized_check(
                    self.circuit1, self.circuit2, config, deadline
                )
            # A concrete pair under the parameterized strategy is just a
            # concrete check: fall through to the combined machinery.
            config = dataclasses.replace(config, strategy="combined")
        elif symbolic:
            from repro.errors import InvalidInput

            raise InvalidInput(
                "circuits carry symbolic parameters; only "
                "strategy='parameterized' can check them "
                f"(got strategy={config.strategy!r})"
            )
        if config.strategy == "analysis":
            # The standalone static-analysis strategy (also the fuzz
            # oracle's analyzer participant).  Imported lazily like the
            # chaos seam: repro.analysis depends on repro.ec.
            from repro import analysis

            return analysis.analysis_check(
                self.circuit1, self.circuit2, config, deadline
            )
        advice = None
        report = None
        analysis_block: Optional[dict] = None
        # The pre-pass reasons about full unitary equivalence, which the
        # "state" strategy deliberately weakens (states from |0...0>
        # only) — a sound unitary-level NEQ witness could contradict a
        # correct state-level EQUIVALENT verdict, so "state" opts out.
        if config.static_analysis and config.strategy != "state":
            from repro import analysis

            short_circuit, report = analysis.run_prepass(
                self.circuit1, self.circuit2, config, start, deadline
            )
            if short_circuit is not None:
                return short_circuit
            if report is not None:
                advice = report.advice
                analysis_block = report.to_dict()
        if config.portfolio and config.strategy == "combined":
            # Race every applicable strategy in sandboxed children; the
            # first sound verdict wins (repro.ec.portfolio).
            from repro.ec.portfolio import run_portfolio

            result = run_portfolio(
                self.circuit1, self.circuit2, config, start, deadline, report
            )
        else:
            result = self._dispatch_checker(config, start, deadline, advice)
        if analysis_block is not None:
            result.statistics.setdefault("analysis", analysis_block)
        return result

    def _dispatch_checker(
        self,
        config: Configuration,
        start: float,
        deadline: Optional[float],
        advice=None,
    ) -> EquivalenceCheckingResult:
        """Run the configured checker (the pre-pass has already happened)."""
        strategy = config.strategy
        if strategy == "construction":
            return ConstructionChecker(
                self.circuit1, self.circuit2, config
            ).run(deadline)
        if strategy == "alternating":
            return AlternatingChecker(
                self.circuit1, self.circuit2, config
            ).run(deadline)
        if strategy == "simulation":
            return simulation_check(
                self.circuit1, self.circuit2, config, deadline
            )
        if strategy == "zx":
            return zx_check(self.circuit1, self.circuit2, config, deadline)
        if strategy == "stabilizer":
            return stabilizer_check(
                self.circuit1, self.circuit2, config, deadline
            )
        if strategy == "state":
            return state_check(
                self.circuit1, self.circuit2, config, deadline
            )
        return self._run_combined(config, start, deadline, advice)

    def _run_combined(
        self,
        config: Configuration,
        start: float,
        deadline: Optional[float],
        advice=None,
    ) -> EquivalenceCheckingResult:
        """Run the combined schedule: falsify cheaply, then prove.

        The default schedule is simulation (fast falsification) followed
        by the alternating proof.  When the static pre-pass produced
        advice, its schedule is used instead — the advisor only ever
        *prepends* stages (e.g. ``stabilizer`` for Clifford pairs), so
        the historic worst-case behaviour is preserved.  A stage's
        result is final when it is a proof, or a ``NOT_EQUIVALENT``
        falsification from simulation; otherwise the next stage runs.
        """
        schedule = (
            tuple(advice.schedule)
            if advice is not None
            else ("simulation", "alternating")
        )
        simulations_run: Optional[object] = None
        result: Optional[EquivalenceCheckingResult] = None
        for stage in schedule:
            if stage == "simulation":
                result = simulation_check(
                    self.circuit1, self.circuit2, config, deadline
                )
                simulations_run = result.statistics.get("simulations_run")
                if result.equivalence is Equivalence.NOT_EQUIVALENT:
                    break
            elif stage == "alternating":
                result = AlternatingChecker(
                    self.circuit1, self.circuit2, config
                ).run(deadline)
                if result.proven:
                    break
            elif stage == "stabilizer":
                result = stabilizer_check(
                    self.circuit1, self.circuit2, config, deadline
                )
                if result.proven:
                    break
            else:  # pragma: no cover - advisor emits only known stages
                raise ValueError(f"unknown combined stage {stage!r}")
        assert result is not None  # schedules are never empty
        result.strategy = "combined"
        if simulations_run is not None:
            result.statistics.setdefault("simulations_run", simulations_run)
        result.statistics.setdefault("combined_schedule", list(schedule))
        result.time = time.monotonic() - start
        return result
