"""State-preparation equivalence checking.

Many of the case study's benchmarks (GHZ, graph states, W states) are
*state-preparation* circuits: what matters is not the full unitary but the
state produced from ``|0...0>``.  State equivalence is strictly weaker than
unitary equivalence — circuits may differ arbitrarily on other input
states — and much cheaper to decide: a single DD simulation of each
circuit plus one inner product, ``| <psi1 | psi2> | = 1``.

QCEC exposes the same notion ("check only from |0...0>"); here it is the
``"state"`` strategy of the manager.  Unlike the random-stimuli strategy,
the verdict is a *proof* (up to numerical tolerance) for the
state-preparation semantics.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.circuit.circuit import QuantumCircuit
from repro.dd.gates import apply_operation_to_vector
from repro.ec.configuration import Configuration
from repro.ec.dd_checker import _check_deadline, make_package
from repro.ec.permutations import to_logical_form
from repro.ec.results import Equivalence, EquivalenceCheckingResult


def state_check(
    circuit1: QuantumCircuit,
    circuit2: QuantumCircuit,
    configuration: Optional[Configuration] = None,
    deadline: Optional[float] = None,
) -> EquivalenceCheckingResult:
    """Decide whether both circuits prepare the same state from ``|0...0>``."""
    config = configuration or Configuration()
    start = time.monotonic()
    num_qubits = max(circuit1.num_qubits, circuit2.num_qubits)
    logical1, _ = to_logical_form(
        circuit1, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    logical2, _ = to_logical_form(
        circuit2, num_qubits, config.elide_permutations, config.reconstruct_swaps
    )
    pkg = make_package(config)
    states = []
    max_size = 0
    for logical in (logical1, logical2):
        state = pkg.basis_state(num_qubits)
        for op in logical:
            _check_deadline(deadline)
            state = apply_operation_to_vector(
                pkg, state, op, num_qubits, direct=config.direct_application
            )
        states.append(state)
        max_size = max(max_size, pkg.vector_dd_size(state))
    overlap = pkg.inner_product(states[0], states[1])
    fidelity = abs(overlap) ** 2
    if abs(fidelity - 1.0) <= config.fidelity_threshold:
        if abs(overlap - 1.0) <= 16 * pkg.tolerance:
            verdict = Equivalence.EQUIVALENT
        else:
            verdict = Equivalence.EQUIVALENT_UP_TO_GLOBAL_PHASE
    else:
        verdict = Equivalence.NOT_EQUIVALENT
    return EquivalenceCheckingResult(
        verdict,
        "state",
        time.monotonic() - start,
        {
            "fidelity": fidelity,
            "max_state_dd_size": max_size,
            # canonicity bonus: equal states share the very same node
            # (object identity or handle equality, by engine)
            "same_canonical_node": (
                pkg.edge_node(states[0]) == pkg.edge_node(states[1])
            ),
        },
    )
